"""Tests for internal row remapping and adjacency."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram import RowRemapper

ROWS = 256


class TestRemapperBijectivity:
    @pytest.mark.parametrize("scheme", RowRemapper.SCHEMES)
    def test_roundtrip_all_rows(self, scheme):
        r = RowRemapper(ROWS, scheme)
        physicals = [r.to_physical(i) for i in range(ROWS)]
        assert sorted(physicals) == list(range(ROWS))  # bijection
        for logical in range(ROWS):
            assert r.to_logical(r.to_physical(logical)) == logical

    @given(st.sampled_from(RowRemapper.SCHEMES), st.integers(min_value=0, max_value=ROWS - 1))
    def test_roundtrip_property(self, scheme, row):
        r = RowRemapper(ROWS, scheme)
        assert r.to_logical(r.to_physical(row)) == row
        assert r.to_physical(r.to_logical(row)) == row


class TestAdjacency:
    def test_identity_neighbors(self):
        r = RowRemapper(ROWS, "identity")
        assert r.physical_neighbors(10) == [9, 11]

    def test_edge_rows_have_one_neighbor(self):
        r = RowRemapper(ROWS, "identity")
        assert r.physical_neighbors(0) == [1]
        assert r.physical_neighbors(ROWS - 1) == [ROWS - 2]

    def test_identity_naive_equals_true(self):
        r = RowRemapper(ROWS, "identity")
        for row in (0, 17, 100, ROWS - 1):
            assert set(r.naive_neighbors(row)) == set(r.logical_neighbors_of_logical(row))

    def test_blockswap_naive_guess_wrong_somewhere(self):
        # The motivation for SPD-published adjacency: without it the
        # controller's +/-1 guess refreshes the wrong rows.
        r = RowRemapper(ROWS, "block-swap")
        mismatches = sum(
            1
            for row in range(ROWS)
            if set(r.naive_neighbors(row)) != set(r.logical_neighbors_of_logical(row))
        )
        assert mismatches > 0

    def test_spd_table_covers_all_rows(self):
        r = RowRemapper(ROWS, "xor-msb")
        table = r.spd_table()
        assert len(table) == ROWS
        assert sorted(p for _l, p in table) == list(range(ROWS))

    def test_distance_two_neighbors(self):
        r = RowRemapper(ROWS, "identity")
        assert r.physical_neighbors(10, distance=2) == [8, 12]

    def test_rejects_out_of_range(self):
        r = RowRemapper(ROWS)
        with pytest.raises(IndexError):
            r.to_physical(ROWS)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            RowRemapper(ROWS, "nope")

    def test_rows_power_of_two_required(self):
        with pytest.raises(ValueError):
            RowRemapper(100)
