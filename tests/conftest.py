"""Suite-wide fixtures.

The run ledger defaults to appending under ``~/.cache/repro``; tests
must never touch the developer's real ledger, so the switch is forced
off for every test.  Ledger tests opt back in with ``monkeypatch`` or
by constructing :class:`~repro.telemetry.ledger.RunLedger` on a tmp
path directly.
"""

import pytest


@pytest.fixture(autouse=True)
def _ledger_off(monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "off")
    monkeypatch.delenv("REPRO_LEDGER_PATH", raising=False)
