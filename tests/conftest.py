"""Suite-wide fixtures.

The run ledger defaults to appending under ``~/.cache/repro``; tests
must never touch the developer's real ledger, so the switch is forced
off for every test.  Ledger tests opt back in with ``monkeypatch`` or
by constructing :class:`~repro.telemetry.ledger.RunLedger` on a tmp
path directly.

Failure capture is likewise forced off (a failing test's runner jobs
must not litter ``.repro-failures/``); capture/replay tests opt back in
with ``monkeypatch``.  ``REPRO_SANITIZE`` is deliberately **left
alone** — CI runs the whole tier-1 suite under ``REPRO_SANITIZE=full``
— but the programmatic level is re-synced from the environment after
every test so a test that called ``set_level`` can't leak its level
into the next one.
"""

import pytest

from repro.sanitizer import runtime as sanit


@pytest.fixture(autouse=True)
def _ledger_off(monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "off")
    monkeypatch.delenv("REPRO_LEDGER_PATH", raising=False)


@pytest.fixture(autouse=True)
def _capture_off(monkeypatch):
    monkeypatch.setenv("REPRO_CAPTURE", "off")
    yield
    sanit.sync_from_env(default="off")
