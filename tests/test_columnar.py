"""Columnar engine plumbing: engine selection, state views, the
bounded flip log, weak-cell cache eviction, batched refresh, and
telemetry symmetry between the engines."""

import numpy as np
import pytest

from repro.dram.bank import ENGINES, BankStats, DramBank, default_engine
from repro.dram.columnar import ColumnarDramBank
from repro.dram.disturbance import (
    BLOCK_ROWS,
    DisturbanceModel,
    VulnerabilityProfile,
)
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.stream import CommandStream
from repro.sanitizer import runtime as sanit
from repro.telemetry import MetricsRegistry, SpanProfiler, TraceRecorder
from repro.telemetry import runtime as telem

GEOMETRY = DramGeometry(banks=2, rows=256, row_bytes=64)

PROFILE = VulnerabilityProfile(
    weak_cell_density=0.05, hc_first_median=4_000.0,
    hc_first_min=800.0, hc_first_sigma=0.5, distance2_weight=0.1)


def make_bank(engine=None, pattern="solid1", seed=0):
    model = DisturbanceModel(GEOMETRY, PROFILE, seed)
    return DramBank(GEOMETRY, model, 0, default_pattern=pattern,
                    engine=engine)


def hammer_stream(victims=6, count=5000, first=10, stride=3):
    stream = CommandStream()
    for i in range(victims):
        v = first + stride * i
        stream.act(v - 1, count).act(v + 1, count)
    return stream.ref_all(100.0)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    prev_registry = telem.swap_registry(MetricsRegistry())
    prev_tracer = telem.swap_tracer(TraceRecorder())
    prev_profiler = telem.swap_profiler(SpanProfiler())
    telem.disable_all()
    yield
    telem.disable_all()
    telem.swap_registry(prev_registry)
    telem.swap_tracer(prev_tracer)
    telem.swap_profiler(prev_profiler)


class TestEngineSelection:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_DRAM_ENGINE", raising=False)
        assert default_engine() == "columnar"
        assert isinstance(make_bank(), ColumnarDramBank)

    def test_env_switches_to_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_ENGINE", "reference")
        bank = make_bank()
        assert bank.engine == "reference"
        assert not isinstance(bank, ColumnarDramBank)

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_ENGINE", "reference")
        assert isinstance(make_bank(engine="columnar"), ColumnarDramBank)
        monkeypatch.setenv("REPRO_DRAM_ENGINE", "columnar")
        assert make_bank(engine="reference").engine == "reference"

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown DRAM engine"):
            make_bank(engine="quantum")
        monkeypatch.setenv("REPRO_DRAM_ENGINE", "quantum")
        with pytest.raises(ValueError):
            default_engine()

    def test_module_exposes_engine(self):
        module = DramModule(geometry=GEOMETRY, profile=PROFILE,
                            engine="reference")
        assert module.engine == "reference"
        assert all(b.engine == "reference" for b in module.banks)
        assert DramModule(geometry=GEOMETRY, profile=PROFILE,
                          engine="columnar").engine == "columnar"

    def test_engines_registry(self):
        assert set(ENGINES) == {"columnar", "reference"}


class TestColumnarViews:
    """The dict-like views must behave like the reference dicts, so
    sanitizer checkers and chaos injectors poke both engines alike."""

    def test_charge_views_track_touch_order(self):
        bank = make_bank(engine="columnar")
        bank.bulk_activate(20, 100)
        bank.bulk_activate(10, 100)
        order = list(bank._pressure)
        # Reference key order: row, row-1, row+1, row-2, row+2 per ACT.
        assert order == [20, 19, 21, 18, 22, 10, 9, 11, 8, 12]
        assert len(bank._peak) == len(order)
        assert 19 in bank._pressure
        assert 50 not in bank._pressure
        assert bank._pressure.get(50, -1.0) == -1.0
        assert bank._pressure[19] == pytest.approx(100.0)
        with pytest.raises(KeyError):
            bank._pressure[50]

    def test_charge_view_write_through(self):
        bank = make_bank(engine="columnar")
        bank._pressure[7] = 123.0
        assert bank.pressure(7) == pytest.approx(123.0)
        assert list(bank._pressure) == [7]

    def test_last_aggressor_view(self):
        bank = make_bank(engine="columnar")
        assert bank._last_aggressor.get(11) is None
        bank.bulk_activate(10, 50)
        assert bank._last_aggressor[11] == 10
        assert bank._last_aggressor.get(9) == 10
        assert 13 not in bank._last_aggressor

    def test_data_view_materializes_on_read(self):
        bank = make_bank(engine="columnar", pattern="rowstripe")
        assert 5 not in bank._data
        bits = bank.row_bits(5)  # odd row of rowstripe = 0x00
        assert 5 in bank._data
        assert not bits.any()
        assert bank.row_bits(4).all()

    def test_raw_array_poke_is_authoritative(self):
        # The chaos injector's corruption style: mutate the row array
        # in place, then read it back through the public API.
        bank = make_bank(engine="columnar")
        bank.row_bits(9)
        bank._data[9][3] ^= 1
        assert bank.row_bits(9)[3] == 0  # solid1 background is all ones

    def test_data_view_iteration_and_len(self):
        bank = make_bank(engine="columnar")
        assert len(bank._data) == 0 and not bank._data
        bank.row_bits(3)
        bank.row_bits(1)
        assert set(bank._data) == {1, 3}
        assert len(bank._data) == 2 and bank._data


class TestFlipLogCap:
    def test_env_cap_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIP_LOG_CAP", "5")
        stats = BankStats()
        assert stats.flip_log_cap == 5
        stats.record_flips(1, np.arange(8), 2.0)
        assert len(stats.flip_log) == 5
        assert stats.flips_dropped == 3
        assert stats.flips_materialized == 8
        stats.record_flips(2, np.arange(4), 3.0)
        assert len(stats.flip_log) == 5
        assert stats.flips_dropped == 7
        assert stats.flips_materialized == 12

    def test_env_cap_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIP_LOG_CAP", "off")
        stats = BankStats()
        assert stats.flip_log_cap is None
        stats.record_flips(1, np.arange(1000), 0.0)
        assert len(stats.flip_log) == 1000

    def test_batch_matches_sequential_records(self):
        a, b = BankStats(flip_log_cap=10), BankStats(flip_log_cap=10)
        events = [(3, np.array([1, 5, 9]), 1.0),
                  (7, np.array([0, 2]), 2.0),
                  (9, np.array([4, 6, 8, 10]), 3.0),
                  (2, np.array([11]), 4.0)]
        for row, bits, t in events:
            a.record_flips(row, bits, t)
        rows = np.repeat([e[0] for e in events],
                         [len(e[1]) for e in events])
        times = np.repeat([e[2] for e in events],
                          [len(e[1]) for e in events])
        b.record_flips_batch(rows, np.concatenate([e[1] for e in events]),
                             times)
        assert a.flip_log == b.flip_log
        assert a.flips_dropped == b.flips_dropped
        assert a.flips_materialized == b.flips_materialized

    def test_engine_logs_identical_under_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIP_LOG_CAP", "7")
        logs = {}
        for engine in ENGINES:
            bank = make_bank(engine=engine, pattern="rowstripe")
            bank.execute(hammer_stream())
            assert bank.stats.flip_log_cap == 7
            logs[engine] = (list(bank.stats.flip_log),
                            bank.stats.flips_dropped,
                            bank.stats.flips_materialized)
        assert logs["columnar"] == logs["reference"]
        assert logs["columnar"][1] > 0


class TestWeakCellCacheEviction:
    def test_cache_bounded_and_oldest_evicted(self):
        model = DisturbanceModel(GEOMETRY, PROFILE, seed=1)
        model.cache_limit = 2
        block0 = model.weak_cells_block(0, 0)
        model.weak_cells_block(0, BLOCK_ROWS)
        assert len(model._cache) == 2
        # A third block evicts the oldest-inserted (bank 0, start 0).
        model.weak_cells_block(1, 0)
        assert len(model._cache) == 2
        assert (0, 0) not in model._cache
        assert (0, BLOCK_ROWS) in model._cache and (1, 0) in model._cache
        # A hit refreshes nothing (insertion order, not LRU) but the
        # regenerated block must be bit-identical — the map is pure.
        again = model.weak_cells_block(0, 0)
        assert again is not block0
        np.testing.assert_array_equal(again.bits, block0.bits)
        np.testing.assert_array_equal(again.hc_first, block0.hc_first)

    def test_limit_one_never_overfills(self):
        model = DisturbanceModel(GEOMETRY, PROFILE, seed=1)
        model.cache_limit = 1
        for start in (0, BLOCK_ROWS, 0, BLOCK_ROWS):
            model.weak_cells_block(0, start)
            assert len(model._cache) == 1


class TestBatchedRefresh:
    def test_refresh_rows_matches_per_row_loop(self):
        results = {}
        for engine in ENGINES:
            bank = make_bank(engine=engine, pattern="rowstripe")
            for i in range(4):
                v = 30 + 4 * i
                bank.bulk_activate(v - 1, 5000)
                bank.bulk_activate(v + 1, 5000)
            rows = [30, 34, 38, 42, 30, 99]  # repeat + untouched row
            flips = bank.refresh_rows(rows, 50.0)
            results[engine] = (flips, list(bank.stats.flip_log),
                               bank.stats.refreshes,
                               bank.pressure(30), bank.pressure(34))
        assert results["columnar"] == results["reference"]
        assert results["columnar"][0] > 0

    def test_refresh_rows_rejects_out_of_range(self):
        bank = make_bank(engine="columnar")
        with pytest.raises(IndexError):
            bank.refresh_rows([0, GEOMETRY.rows], 0.0)

    def test_materialize_paths_agree_under_sanitizer(self, monkeypatch):
        # Sanitize-full forces the sequential reference-exact branch of
        # the batched materializer; the vectorized branch must produce
        # the same flips (same stream, sanitizer off).
        bank_fast = make_bank(engine="columnar", pattern="rowstripe")
        bank_fast.execute(hammer_stream())
        monkeypatch.setenv("REPRO_SANITIZE", "full")
        sanit.sync_from_env()
        bank_slow = make_bank(engine="columnar", pattern="rowstripe")
        bank_slow.execute(hammer_stream())
        assert bank_fast.stats.flip_log == bank_slow.stats.flip_log
        assert (bank_fast.stats.flips_materialized
                == bank_slow.stats.flips_materialized)
        assert bank_fast.stats.flips_materialized > 0


class TestFillCache:
    def test_periodic_pattern_shares_fill_buffers(self):
        bank = make_bank(engine="columnar", pattern="rowstripe")
        assert bank._fill_bytes(4) is bank._fill_bytes(10)
        assert bank._fill_bytes(5) is bank._fill_bytes(11)
        assert len(bank._cs.fill_cache) == 2

    def test_aperiodic_pattern_caches_per_row(self):
        bank = make_bank(engine="columnar", pattern="random")
        a, b = bank._fill_bytes(4), bank._fill_bytes(10)
        assert a is not b
        assert not np.array_equal(a, b)

    def test_set_default_pattern_invalidates_cache(self):
        bank = make_bank(engine="columnar", pattern="solid1")
        assert bank._fill_bytes(3).all()
        bank.set_default_pattern("solid0")
        assert not bank._fill_bytes(3).any()
        assert not bank.row_bits(3).any()


class TestSpanSymmetry:
    def test_bulk_activate_span_recorded_by_both_engines(self):
        telem.enable_profiling(fresh=True)
        for engine in ENGINES:
            bank = make_bank(engine=engine)
            bank.bulk_activate(10, 100)
        profile = telem.get_profiler().profile()
        count = profile.get("dram.bulk_activate")[0]
        assert count == 2

    def test_execute_span_recorded_by_columnar(self):
        telem.enable_profiling(fresh=True)
        bank = make_bank(engine="columnar")
        bank.execute(CommandStream().act(10, 5).settle())
        profile = telem.get_profiler().profile()
        assert profile.get("dram.execute")[0] == 1

    def test_no_spans_when_profiling_off(self):
        bank = make_bank(engine="columnar")
        bank.bulk_activate(10, 100)
        bank.execute(CommandStream().act(11, 5).settle())
        assert len(telem.get_profiler()) == 0


class TestMetricsSymmetry:
    def test_counters_agree_across_engines(self):
        values = {}
        for engine in ENGINES:
            registry = telem.swap_registry(MetricsRegistry())
            telem.enable_metrics()
            bank = make_bank(engine=engine, pattern="rowstripe")
            bank.execute(hammer_stream())
            own = telem.swap_registry(registry)
            values[engine] = {
                "acts": own.value("dram_activations_total", bank=0),
                "refreshes": own.value("dram_refreshes_total", bank=0),
                "flips": own.total("dram_bit_flips_total"),
            }
            telem.disable_all()
        assert values["columnar"] == values["reference"]
        assert values["columnar"]["flips"] > 0
