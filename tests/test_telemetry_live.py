"""Live telemetry: run/job correlation IDs, worker→parent streaming,
the Prometheus exposition renderer + HTTP exporter, sweep progress, the
``--live`` renderer, and the cross-artifact join contract.

The subprocess test at the bottom doubles as the CI smoke: it launches
a real ``repro sweep --serve-metrics 0`` and scrapes ``/metrics`` while
the sweep runs, asserting the progress gauges are present and monotone.
"""

import io
import multiprocessing
import os
import queue
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner, Job, registry
from repro.experiments.checkpoint import SweepCheckpoint, job_key
from repro.experiments.runner import derive_seed
from repro.telemetry import MetricsRegistry, RunLedger
from repro.telemetry import events as stream_events
from repro.telemetry import export, ids
from repro.telemetry import runtime as telem
from repro.telemetry.events import StreamConsumer, SweepProgress, WorkerStream
from repro.telemetry.live import LiveRenderer, format_progress_lines

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool streaming tests rely on fork inheriting the registry",
)


@pytest.fixture(autouse=True)
def _clean_stream(monkeypatch):
    """Pristine streaming/telemetry globals around every test."""
    monkeypatch.delenv(ids.ENV_RUN_ID, raising=False)
    stream_events.disarm()
    prev = telem.swap_registry(MetricsRegistry())
    telem.disable_all()
    yield
    stream_events.disarm()
    telem.disable_all()
    telem.swap_registry(prev)
    ids.clear_run_id()


# ----------------------------------------------------------------------
# IDs
# ----------------------------------------------------------------------
class TestIds:
    def test_job_id_is_deterministic_key_prefix(self):
        name = registry.resolve("sidedness_ablation")
        key = job_key(name, {}, 7)
        jid = ids.job_id_from_key(key)
        assert jid == key[:12] and len(jid) == 12
        # same (name, params, seed) → same ID across processes/sessions
        assert jid == ids.job_id_from_key(job_key(name, {}, 7))
        assert jid != ids.job_id_from_key(job_key(name, {}, 8))

    def test_run_id_format_and_uniqueness(self):
        a, b = ids.new_run_id(), ids.new_run_id()
        assert re.fullmatch(r"r\d{8}-\d{6}-[0-9a-f]{6}", a)
        assert a != b

    def test_run_scope_sets_global_and_env_then_restores(self):
        assert ids.current_run_id() is None
        with ids.run_scope("r20990101-000000-abcdef") as rid:
            assert ids.current_run_id() == rid
            assert os.environ[ids.ENV_RUN_ID] == rid
            with ids.run_scope("r20990101-000000-bbbbbb"):
                assert ids.current_run_id() == "r20990101-000000-bbbbbb"
            assert ids.current_run_id() == rid
        assert ids.current_run_id() is None
        assert ids.ENV_RUN_ID not in os.environ

    def test_workers_inherit_run_id_through_env(self, monkeypatch):
        monkeypatch.setenv(ids.ENV_RUN_ID, "r20990101-000000-cccccc")
        assert ids.current_run_id() == "r20990101-000000-cccccc"

    def test_environment_fingerprint_fields(self):
        import platform

        fp = ids.environment_fingerprint()
        assert set(fp) == {"git_sha", "python", "numpy", "hostname",
                           "dram_engine"}
        assert fp["python"] == platform.python_version()
        assert fp["dram_engine"]  # defaults to the active engine name


# ----------------------------------------------------------------------
# Exposition-format compliance (shared by `stats` and the exporter)
# ----------------------------------------------------------------------
class TestExposition:
    def test_metric_name_sanitization(self):
        assert export.sanitize_metric_name("dram.acts/s") == "dram_acts_s"
        assert export.sanitize_metric_name("9lives") == "_9lives"
        assert export.sanitize_metric_name("ns:metric_ok") == "ns:metric_ok"

    def test_label_name_sanitization_rejects_colons(self):
        assert export.sanitize_label_name("le:gt") == "le_gt"
        assert export.sanitize_label_name("0bad") == "_0bad"

    def test_label_value_escaping(self):
        assert (export.escape_label_value('a\\b"c\nd')
                == 'a\\\\b\\"c\\nd')

    def test_counters_get_total_suffix_exactly_once(self):
        assert export.exposition_name("jobs", "counter") == "jobs_total"
        assert (export.exposition_name("dram_activations_total", "counter")
                == "dram_activations_total")
        # non-counters keep their base name (histograms grow _bucket etc.)
        assert export.exposition_name("lat", "histogram") == "lat"
        assert export.exposition_name("depth", "gauge") == "depth"

    def test_help_and_type_lines_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("jobs", outcome="ok").inc(2)
        reg.counter("jobs", outcome='we"ird\nvalue').inc(1)
        text = export.render_exposition(reg)
        assert text.count("# HELP jobs_total ") == 1
        assert text.count("# TYPE jobs_total counter") == 1
        assert 'jobs_total{outcome="ok"} 2' in text
        assert 'jobs_total{outcome="we\\"ird\\nvalue"} 1' in text

    def test_histogram_families_keep_base_name(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", edges=(1, 2))
        hist.observe(0.5)
        hist.observe(5.0)
        text = export.render_exposition(reg)
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum" in text and "lat_count 2" in text
        assert "lat_total" not in text

    def test_registry_render_prometheus_delegates_to_exposition(self):
        reg = MetricsRegistry()
        reg.counter("dram_activations_total", bank="0").inc(82747392)
        assert reg.render_prometheus() == export.render_exposition(reg)

    def test_progress_registry_gauges(self):
        now = time.monotonic()
        progress = SweepProgress(run_id="r1")
        for i, jid in enumerate(("aaa", "bbb", "ccc", "ddd", "eee")):
            progress.add_job(jid, "exp", i)
        progress.mark_running("aaa", pid=123)
        progress.mark_done("bbb", "ok", duration_s=1.0)
        progress.mark_done("ccc", "error", duration_s=1.0)
        progress.mark_done("ddd", "ok", cache_hit=True)
        progress.beat("aaa", 123, now_mono=now)
        reg = export.progress_registry(progress, workers=2, now_mono=now + 0.5)

        def jobs(state):
            return reg.value("repro_sweep_jobs", state=state, run_id="r1")

        assert jobs("total") == 5
        assert jobs("done") == 1 and jobs("running") == 1
        assert jobs("errored") == 1 and jobs("cached") == 1
        assert jobs("pending") == 1
        age = reg.value("repro_worker_heartbeat_age_seconds",
                        pid=123, run_id="r1")
        assert age == pytest.approx(0.5, abs=0.01)
        assert reg.value("repro_sweep_eta_seconds", run_id="r1") > 0
        text = export.render_exposition(reg)
        assert "# TYPE repro_sweep_jobs gauge" in text
        assert 'run_id="r1"' in text

    def test_http_server_serves_live_exposition(self):
        calls = []

        def collect():
            calls.append(1)
            return "# TYPE x counter\nx_total 1\n"

        with export.MetricsHTTPServer(collect, port=0) as server:
            assert server.port != 0
            body = urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5).read().decode()
            assert body == "# TYPE x counter\nx_total 1\n"
            health = urllib.request.urlopen(
                f"{server.url}/healthz", timeout=5).read()
            assert health == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
        assert calls


# ----------------------------------------------------------------------
# Worker-side streaming
# ----------------------------------------------------------------------
class TestWorkerStream:
    def _heartbeat_counters(self, events):
        out = {}
        for event in events:
            if event["kind"] != "heartbeat":
                continue
            for entry in (event.get("metrics") or {}).get("counters", ()):
                out[entry["name"]] = out.get(entry["name"], 0) + entry["value"]
        return out

    def test_counter_deltas_and_reset_clamp(self):
        events = []
        ws = WorkerStream(events.append, interval_s=0.0)
        reg = telem.get_registry()
        ws.on_job_start("j1", "exp", 0)
        reg.counter("c").inc(5)
        ws.tick(force=True)
        reg.counter("c").inc(3)
        ws.tick(force=True)
        # registry swap (new job) resets the counter: the clamp must
        # send the full new value, not a negative delta
        telem.swap_registry(MetricsRegistry())
        telem.get_registry().counter("c").inc(2)
        ws.tick(force=True)
        assert self._heartbeat_counters(events) == {"c": 10}

    def test_gauges_sent_on_change_only(self):
        events = []
        ws = WorkerStream(events.append, interval_s=0.0)
        reg = telem.get_registry()
        ws.on_job_start("j1", "exp", 0)
        reg.gauge("depth").set(7)
        ws.tick(force=True)
        ws.tick(force=True)  # unchanged: no gauge entry in this beat
        reg.gauge("depth").set(9)
        ws.tick(force=True)
        sent = [entry["value"] for event in events
                if event["kind"] == "heartbeat"
                for entry in (event.get("metrics") or {}).get("gauges", ())]
        assert sent == [7, 9]

    def test_histogram_delta_counts(self):
        events = []
        ws = WorkerStream(events.append, interval_s=0.0)
        hist = telem.get_registry().histogram("lat", edges=(1, 2))
        ws.on_job_start("j1", "exp", 0)
        hist.observe(0.5)
        ws.tick(force=True)
        hist.observe(5.0)
        ws.tick(force=True)
        deltas = [entry for event in events if event["kind"] == "heartbeat"
                  for entry in (event.get("metrics") or {}).get("histograms", ())]
        assert [d["count"] for d in deltas] == [1, 1]
        assert deltas[0]["counts"] == [1, 0, 0]
        assert deltas[1]["counts"] == [0, 0, 1]  # 5.0 lands in the overflow
        assert deltas[1]["sum"] == pytest.approx(5.0)

    def test_events_stamped_with_pid_job_and_run_ids(self):
        events = []
        ids.set_run_id("r20990101-000000-dddddd")
        ws = WorkerStream(events.append, interval_s=0.0)
        ws.on_job_start("jX", "exp", 3)
        ws.on_job_end("jX", "ok", duration_s=0.5)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "job_start" and kinds[-1] == "job_end"
        for event in events:
            assert event["pid"] == os.getpid()
            assert event["job_id"] == "jX"
            assert event["run_id"] == "r20990101-000000-dddddd"
        assert events[-1]["outcome"] == "ok"

    def test_dead_queue_never_raises(self):
        def put(_event):
            raise OSError("queue is gone")

        ws = WorkerStream(put, interval_s=0.0)
        ws.on_job_start("j", "exp", 0)  # must not raise
        ws.on_job_end("j", "ok")

    def test_streaming_registry_ticks_the_sink(self):
        events = []
        stream_events.arm_local(events.append, interval_s=0.0)
        stream_events.sink().on_job_start("j", "exp", 0)
        reg = stream_events.job_registry()
        assert isinstance(reg, stream_events.StreamingRegistry)
        prev = telem.swap_registry(reg)
        try:
            reg.counter("c").inc()  # instrument touch → rate-limited flush
        finally:
            telem.swap_registry(prev)
        assert any(e["kind"] == "heartbeat" for e in events)

    def test_job_registry_plain_when_disarmed(self):
        reg = stream_events.job_registry()
        assert type(reg) is MetricsRegistry


# ----------------------------------------------------------------------
# Parent-side consumer
# ----------------------------------------------------------------------
class TestStreamConsumer:
    def _delta(self, value):
        return {"counters": [{"name": "c", "labels": {}, "value": value}],
                "gauges": [], "histograms": []}

    def test_fold_and_no_double_count_after_job_end(self):
        consumer = StreamConsumer(SweepProgress("r"))
        consumer.progress.add_job("j", "exp", 0)
        consumer.handle({"kind": "job_start", "job_id": "j", "pid": 1,
                         "name": "exp", "seed": 0})
        consumer.handle({"kind": "heartbeat", "job_id": "j", "pid": 1,
                         "metrics": self._delta(3)})
        assert consumer.live_registry().value("c") == 3
        # job_end drops the in-flight deltas; the final snapshot then
        # merges parent-side — the live view must not count both
        consumer.handle({"kind": "job_end", "job_id": "j", "pid": 1,
                         "outcome": "ok"})
        base = MetricsRegistry()
        base.counter("c").inc(5)
        assert consumer.live_registry(base).value("c") == 5

    def test_job_start_marks_running_and_beats_track_workers(self):
        consumer = StreamConsumer(SweepProgress("r"))
        consumer.progress.add_job("j", "exp", 0)
        consumer.handle({"kind": "job_start", "job_id": "j", "pid": 42,
                         "name": "exp", "seed": 0})
        job = consumer.progress.jobs["j"]
        assert job["state"] == "running" and job["pid"] == 42
        assert consumer.progress.workers[42]["job_id"] == "j"
        assert consumer.progress.heartbeat_ages()[42] < 1.0

    def test_check_stale_flags_each_job_once(self):
        consumer = StreamConsumer(SweepProgress("r"))
        consumer.progress.add_job("j", "exp", 0)
        now = time.monotonic()
        consumer.handle({"kind": "job_start", "job_id": "j", "pid": 1,
                         "name": "exp", "seed": 0})
        newly = consumer.check_stale(0.5, now_mono=now + 1.0)
        assert [e["job_id"] for e in newly] == ["j"]
        assert newly[0]["age_s"] >= 0.5
        assert consumer.check_stale(0.5, now_mono=now + 2.0) == []
        assert len(consumer.progress.stale_events) == 1

    def test_finished_jobs_never_go_stale(self):
        consumer = StreamConsumer(SweepProgress("r"))
        consumer.progress.add_job("j", "exp", 0)
        consumer.progress.mark_running("j", pid=1)
        consumer.progress.mark_done("j", "ok", duration_s=0.1)
        assert consumer.check_stale(0.0, time.monotonic() + 99) == []

    def test_drain_consumes_queue_and_skips_garbage(self):
        consumer = StreamConsumer(SweepProgress("r"))
        consumer.progress.add_job("j", "exp", 0)
        q = queue.SimpleQueue()
        q.put({"kind": "job_start", "job_id": "j", "pid": 1,
               "name": "exp", "seed": 0})
        q.put("not-an-event")
        q.put({"kind": "heartbeat", "job_id": "j", "pid": 1,
               "metrics": self._delta(2)})
        assert consumer.drain(q) == 3
        assert consumer.events_seen == 2
        assert consumer.live_registry().value("c") == 2

    def test_eta_estimate_from_completed_durations(self):
        progress = SweepProgress("r")
        for jid in ("a", "b", "c", "d"):
            progress.add_job(jid, "exp", 0)
        assert progress.eta_s() is None  # nothing completed yet
        progress.mark_running("a")
        progress.mark_done("a", "ok", duration_s=2.0)
        # 3 outstanding × 2 s mean / 2 workers = 3 s
        assert progress.eta_s(workers=2) == pytest.approx(3.0, abs=0.1)


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
class TestRunnerStreaming:
    def test_serial_stream_correlates_results_and_progress(self):
        runner = ExperimentRunner(cache_dir=None, max_workers=1, ledger=False,
                                  stream=True, heartbeat_s=0.01)
        name = registry.resolve("sidedness_ablation")
        jobs = [Job(name, {}, derive_seed(0, i)) for i in range(2)]
        results = runner.run(jobs)
        assert all(r.ok for r in results)
        for result in results:
            assert result.run_id == runner.run_id
            assert result.job_id == ids.job_id_from_key(
                job_key(name, {}, result.seed))
        counts = runner.progress.counts()
        assert counts["total"] == 2 and counts["done"] == 2
        assert runner.stream.consumer.events_seen >= 4  # start+end per job
        assert runner.summary(results)["run_id"] == runner.run_id
        assert stream_events.stream_on is False  # disarmed after the batch

    def test_live_exposition_carries_progress_gauges(self):
        runner = ExperimentRunner(cache_dir=None, max_workers=1, ledger=False,
                                  stream=True)
        runner.run([Job(registry.resolve("sidedness_ablation"), {}, 0)])
        text = runner.live_exposition()
        assert "# TYPE repro_sweep_jobs gauge" in text
        assert f'run_id="{runner.run_id}"' in text
        assert "runner_jobs_total" in text

    @fork_only
    def test_pool_stream_merges_without_double_count(self):
        runner = ExperimentRunner(cache_dir=None, max_workers=2, ledger=False,
                                  stream=True, heartbeat_s=0.02)
        jobs = [Job("rowhammer_basic", {"victims": 64}, derive_seed(0, i))
                for i in range(4)]
        results = runner.run(jobs)
        assert sum(r.ok for r in results) == 4
        assert runner.progress.finished() == 4
        assert runner.progress.workers  # worker pids were seen
        # streamed in-flight deltas were dropped at job_end: the live
        # view equals the finalized merge exactly
        live = runner.live_metrics()
        assert (live.total("dram_activations_total")
                == runner.metrics.total("dram_activations_total"))
        assert live.total("dram_activations_total") > 0


class TestArtifactJoin:
    def test_job_id_joins_ledger_checkpoint_trace_and_bundle(
            self, tmp_path, monkeypatch):
        """Acceptance: one job_id recovers the same job from the ledger
        line, the checkpoint record, the trace events, and (for the
        failed job) the capture bundle."""
        from repro import chaos
        from repro.sanitizer.bundle import load_bundle

        name = registry.resolve("sidedness_ablation")
        ok_seed, bad_seed = derive_seed(0, 0), derive_seed(0, 1)
        monkeypatch.setenv("REPRO_CHAOS", f"exc:seed={bad_seed}")
        monkeypatch.setenv("REPRO_CHAOS_STATE", str(tmp_path / "chaos-state"))
        monkeypatch.setenv("REPRO_CAPTURE", str(tmp_path / "bundles"))
        chaos.reset()
        recorder = telem.enable_tracing(capacity=65536, fresh=True)
        try:
            runner = ExperimentRunner(
                cache_dir=None, max_workers=1,
                ledger=RunLedger(tmp_path / "ledger.jsonl"),
                checkpoint=tmp_path / "checkpoint.jsonl",
                collect_metrics=True)
            results = runner.run([Job(name, {}, ok_seed),
                                  Job(name, {}, bad_seed)])
        finally:
            telem.disable_tracing()
            chaos.reset()
        ok_id = ids.job_id_from_key(job_key(name, {}, ok_seed))
        bad_id = ids.job_id_from_key(job_key(name, {}, bad_seed))
        run_id = runner.run_id
        by_seed = {r.seed: r for r in results}
        assert by_seed[ok_seed].ok and not by_seed[bad_seed].ok

        # result metadata
        assert by_seed[ok_seed].job_id == ok_id
        assert by_seed[bad_seed].job_id == bad_id
        assert {r.run_id for r in results} == {run_id}

        # ledger lines
        records = RunLedger(tmp_path / "ledger.jsonl").records()
        assert {r["job_id"] for r in records} == {ok_id, bad_id}
        assert {r["run_id"] for r in records} == {run_id}

        # checkpoint records (only the successful job is checkpointed)
        checkpoint = SweepCheckpoint(tmp_path / "checkpoint.jsonl").load()
        (cp_record,) = checkpoint.values()
        assert cp_record["job_id"] == ok_id
        assert cp_record["run_id"] == run_id

        # trace events carry the context stamp
        traced = [e.to_json_dict() for e in recorder.events()
                  if e.fields.get("job_id") == ok_id]
        kinds = {e["kind"] for e in traced}
        assert {"job_start", "job_end"} <= kinds
        assert all(e["run_id"] == run_id for e in traced)

        # the failed job's capture bundle
        (bundle_path,) = sorted((tmp_path / "bundles").glob("*.json"))
        bundle = load_bundle(bundle_path)
        assert bundle["job_id"] == bad_id
        assert bundle["run_id"] == run_id
        assert bundle["job_key"].startswith(bad_id)

    def test_result_round_trips_ids_through_json(self):
        runner = ExperimentRunner(cache_dir=None, max_workers=1, ledger=False)
        (result,) = runner.run([Job(registry.resolve("sidedness_ablation"),
                                    {}, 0)])
        from repro.experiments import ExperimentResult

        clone = ExperimentResult.from_json_dict(result.to_json_dict())
        assert clone.run_id == result.run_id == runner.run_id
        assert clone.job_id == result.job_id


# ----------------------------------------------------------------------
# Live renderer
# ----------------------------------------------------------------------
class TestLiveRenderer:
    def _progress(self):
        progress = SweepProgress(run_id="rtest")
        progress.add_job("aaa", "exp", 1)
        progress.add_job("bbb", "exp", 2)
        progress.mark_running("aaa", pid=77)
        progress.mark_done("bbb", "ok", duration_s=0.5)
        progress.beat("aaa", 77)
        return progress

    def test_format_lines_show_bar_counts_and_workers(self):
        lines = format_progress_lines(self._progress(), workers=2)
        assert "rtest" in lines[0]
        assert "1/2" in lines[0] and "ok=1" in lines[0] and "run=1" in lines[0]
        worker_lines = [l for l in lines if "worker 77" in l]
        assert worker_lines and "exp[seed=1] (aaa)" in worker_lines[0]

    def test_stale_jobs_are_flagged_in_the_view(self):
        progress = self._progress()
        progress.jobs["aaa"]["stale_warned"] = True
        progress.stale_events.append({"job_id": "aaa"})
        lines = format_progress_lines(progress, workers=2)
        assert "stale=1" in lines[0]
        assert any("! stale heartbeat" in l for l in lines)

    def test_non_tty_renderer_writes_single_status_lines(self):
        out = io.StringIO()  # not a TTY
        renderer = LiveRenderer(out=out, interval_s=0.0, plain_interval_s=0.0)

        class FakeRunner:
            progress = self._progress()
            max_workers = 2

        renderer.update(FakeRunner)
        renderer.finish(FakeRunner)
        text = out.getvalue()
        assert "\x1b[" not in text  # no ANSI control on a pipe
        assert text.count("rtest") == 2  # one line per paint, no repaint


# ----------------------------------------------------------------------
# End-to-end: the CLI exporter scraped mid-sweep (the CI smoke)
# ----------------------------------------------------------------------
class TestServeMetricsEndToEnd:
    def test_mid_sweep_scrape_progress_monotone(self, tmp_path):
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, REPRO_LEDGER="off", REPRO_CAPTURE="off")
        env["PYTHONPATH"] = str(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env.pop(ids.ENV_RUN_ID, None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", "retention_study",
             "--seeds", "6", "--parallel", "2", "--no-cache",
             "--no-checkpoint", "--serve-metrics", "0"],
            cwd=tmp_path, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        done_series, saw_running, saw_beat = [], False, False
        last_body = ""
        try:
            banner = proc.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:\d+/metrics", banner)
            assert match, f"no exporter URL announced: {banner!r}"
            url = match.group(0)
            deadline = time.monotonic() + 120
            while proc.poll() is None and time.monotonic() < deadline:
                try:
                    body = urllib.request.urlopen(url, timeout=2).read().decode()
                except OSError:
                    time.sleep(0.05)
                    continue
                last_body = body
                done = re.search(
                    r'repro_sweep_jobs\{[^}]*state="done"[^}]*\} (\d+)', body)
                if done:
                    done_series.append(int(done.group(1)))
                if re.search(r'state="running"[^}]*\} [1-9]', body):
                    saw_running = True
                if "repro_worker_heartbeat_age_seconds{" in body:
                    saw_beat = True
                time.sleep(0.1)
            _out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert done_series, "never scraped the exporter while the sweep ran"
        assert done_series == sorted(done_series), (
            f"done gauge went backwards: {done_series}")
        assert 'state="total"' in last_body and "repro_sweep_jobs{" in last_body
        assert saw_running, "no scrape ever observed a running job"
        assert saw_beat, "no scrape ever carried worker heartbeat ages"
