"""The run ledger: record building, the JSONL book, environment
configuration, runner integration, and the ``repro ledger`` CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments import ExperimentRunner, execute_job, execute_job_safe
from repro.telemetry import RunLedger, build_record, default_ledger
from repro.telemetry import ledger as ledger_mod

CHEAP = {"victims": 8}


class TestEnvironmentConfig:
    def test_off_switch_values(self, monkeypatch):
        for value in ("off", "0", "false", "no", "disabled", " OFF "):
            monkeypatch.setenv("REPRO_LEDGER", value)
            assert not ledger_mod.ledger_enabled()
            assert default_ledger() is None

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert ledger_mod.ledger_enabled()

    def test_path_env_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "book.jsonl"))
        book = default_ledger()
        assert book is not None
        assert book.path == tmp_path / "book.jsonl"


class TestBuildRecord:
    def test_record_fields(self):
        result = execute_job("rowhammer_basic", params=CHEAP, seed=3,
                             collect_metrics=True)
        record = build_record(result, command="test")
        assert record["schema"] == ledger_mod.LEDGER_SCHEMA
        assert record["name"] == "rowhammer_basic"
        assert record["seed"] == 3
        assert record["params"] == CHEAP
        assert record["command"] == "test"
        assert record["ok"] is True and record["error"] is None
        assert record["duration_s"] > 0
        assert len(record["payload_digest"]) == 16
        assert len(record["metrics_digest"]) == 16
        assert record["metrics_totals"]["dram_activations_total"] > 0
        assert len(record["id"]) == 12
        json.dumps(record)  # JSON-safe

    def test_identical_payloads_share_digest(self):
        a = build_record(execute_job("rowhammer_basic", params=CHEAP, seed=5))
        b = build_record(execute_job("rowhammer_basic", params=CHEAP, seed=5))
        assert a["payload_digest"] == b["payload_digest"]
        c = build_record(execute_job("rowhammer_basic", params=CHEAP, seed=6))
        assert c["payload_digest"] != a["payload_digest"]

    def test_errored_result_records_error(self):
        from repro.experiments import experiment, registry

        @experiment("_ledger_probe", "raises", section="II", tags=("test",))
        def _ledger_probe(seed: int = 0):
            raise RuntimeError("boom")

        try:
            result = execute_job_safe("_ledger_probe", seed=0)
        finally:
            registry.unregister("_ledger_probe")
        record = build_record(result)
        assert record["ok"] is False
        assert "RuntimeError: boom" in record["error"]
        assert record["payload_digest"] == ""


class TestRunLedger:
    def _append_n(self, book, n):
        for i in range(n):
            result = execute_job("rowhammer_basic", params=CHEAP, seed=i)
            book.record(result)

    def test_append_and_read_back(self, tmp_path):
        book = RunLedger(tmp_path / "sub" / "book.jsonl")  # parent dirs created
        self._append_n(book, 2)
        records = book.records()
        assert [r["seed"] for r in records] == [0, 1]

    def test_torn_lines_are_skipped(self, tmp_path):
        book = RunLedger(tmp_path / "book.jsonl")
        self._append_n(book, 2)
        with open(book.path, "a") as handle:
            handle.write('{"torn": ')
        assert len(book.records()) == 2

    def test_corrupt_lines_are_counted(self, tmp_path):
        book = RunLedger(tmp_path / "book.jsonl")
        self._append_n(book, 2)
        with open(book.path, "a") as handle:
            handle.write('{"torn": \n')
            handle.write('"a bare string, not a record"\n')
        assert len(book.scan()) == 2
        assert book.corrupt_lines == 2
        # A clean re-scan resets the tally.
        clean = RunLedger(tmp_path / "book.jsonl")
        clean.path.write_text("")
        assert clean.scan() == [] and clean.corrupt_lines == 0

    def test_append_is_a_single_whole_line(self, tmp_path):
        # Race safety: one append is one O_APPEND write ending in \n, so
        # concurrent writers interleave whole records, never fragments.
        book = RunLedger(tmp_path / "book.jsonl")
        self._append_n(book, 3)
        raw = book.path.read_bytes()
        assert raw.endswith(b"\n")
        assert len(raw.splitlines()) == 3
        assert all(json.loads(line) for line in raw.splitlines())

    def test_injected_ledger_fault_drops_one_append(self, tmp_path, monkeypatch):
        from repro import chaos

        book = RunLedger(tmp_path / "book.jsonl")
        monkeypatch.setenv(chaos.ENV_CHAOS, "ledger")
        chaos.reset()
        try:
            self._append_n(book, 3)
        finally:
            chaos.reset()
        assert len(book.records()) == 2  # exactly one append dropped

    def test_find_by_index_and_id_prefix(self, tmp_path):
        book = RunLedger(tmp_path / "book.jsonl")
        self._append_n(book, 3)
        records = book.records()
        assert book.find("1") == records[0]
        assert book.find("-1") == records[-1]
        assert book.find(records[1]["id"][:6]) == records[1]
        assert book.find("0") is None
        assert book.find("99") is None
        assert book.find("zzzzzz") is None

    def test_append_is_best_effort(self, tmp_path):
        # An unwritable destination must not raise.
        target = tmp_path / "dir-as-file"
        target.mkdir()
        book = RunLedger(target)  # path is a directory: open() fails
        assert book.append({"x": 1}) is False

    def test_empty_ledger(self, tmp_path):
        book = RunLedger(tmp_path / "missing.jsonl")
        assert book.records() == []
        assert book.find("1") is None


class TestRunnerIntegration:
    def test_runner_appends_every_job(self, tmp_path):
        book = RunLedger(tmp_path / "book.jsonl")
        runner = ExperimentRunner(ledger=book)
        runner.run_one("rowhammer_basic", params=CHEAP, seed=0)
        runner.run_one("rowhammer_basic", params=CHEAP, seed=1)
        assert [r["seed"] for r in book.records()] == [0, 1]

    def test_cache_hits_are_recorded_as_such(self, tmp_path):
        book = RunLedger(tmp_path / "book.jsonl")
        runner = ExperimentRunner(cache_dir=tmp_path / "cache", ledger=book)
        runner.run_one("rowhammer_basic", params=CHEAP, seed=0)
        runner.run_one("rowhammer_basic", params=CHEAP, seed=0)
        records = book.records()
        assert [r["cache_hit"] for r in records] == [False, True]

    def test_ledger_false_disables(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "book.jsonl"))
        runner = ExperimentRunner(ledger=False)
        assert runner.ledger is None
        runner.run_one("rowhammer_basic", params=CHEAP, seed=0)
        assert not (tmp_path / "book.jsonl").exists()

    def test_env_switch_disables_default_ledger(self):
        # conftest forces REPRO_LEDGER=off for every test.
        assert ExperimentRunner().ledger is None

    def test_env_path_feeds_default_ledger(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "book.jsonl"))
        runner = ExperimentRunner()
        runner.run_one("rowhammer_basic", params=CHEAP, seed=0)
        assert len(RunLedger(tmp_path / "book.jsonl").records()) == 1


class TestLedgerCli:
    @pytest.fixture()
    def book(self, tmp_path):
        book = RunLedger(tmp_path / "book.jsonl")
        for seed in (0, 1):
            book.record(execute_job("rowhammer_basic", params=CHEAP, seed=seed))
        return book

    def test_list(self, book, capsys):
        assert main(["ledger", "--path", str(book.path), "list"]) == 0
        out = capsys.readouterr().out
        assert "2 records" in out
        assert "rowhammer_basic" in out and "seed 1" in out

    def test_list_empty(self, tmp_path, capsys):
        assert main(["ledger", "--path", str(tmp_path / "none.jsonl"), "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_list_name_filter(self, book, capsys):
        assert main(["ledger", "--path", str(book.path), "list",
                     "--name", "nonexistent"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show_by_index_and_prefix(self, book, capsys):
        assert main(["ledger", "--path", str(book.path), "show", "2"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["seed"] == 1
        assert main(["ledger", "--path", str(book.path),
                     "show", record["id"][:6]]) == 0
        assert json.loads(capsys.readouterr().out)["id"] == record["id"]

    def test_show_missing_ref_errors(self, book, capsys):
        assert main(["ledger", "--path", str(book.path), "show", "99"]) == 2
        assert "no ledger record" in capsys.readouterr().err

    def test_diff(self, book, capsys):
        assert main(["ledger", "--path", str(book.path), "diff", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "! seed: 0 -> 1" in out
        assert "DIFFERENT" in out  # different seeds, different payloads
        assert "metrics" in out or "duration_s" in out

    def test_diff_missing_ref_errors(self, book, capsys):
        assert main(["ledger", "--path", str(book.path), "diff", "1", "99"]) == 2

    def test_show_and_diff_warn_on_corrupt_lines(self, book, capsys):
        with open(book.path, "a") as handle:
            handle.write('{"torn": \n')
        assert main(["ledger", "--path", str(book.path), "show", "1"]) == 0
        assert "skipped 1 corrupt" in capsys.readouterr().err
        assert main(["ledger", "--path", str(book.path), "diff", "1", "2"]) == 0
        assert "skipped 1 corrupt" in capsys.readouterr().err
        assert main(["ledger", "--path", str(book.path), "list"]) == 0
        captured = capsys.readouterr()
        assert "2 records" in captured.out
        assert "skipped 1 corrupt" in captured.err
