"""Tests for error injection campaigns and plain-text figures."""

import numpy as np
import pytest

from repro.analysis import ascii_bars, ascii_log_scatter
from repro.ecc import SECDED_72_64, campaign, inject_clustered, inject_uniform, inject_weak_cell_map
from repro.ecc.accounting import flips_per_word
from repro.utils.rng import derive_rng


class TestInjectors:
    def test_uniform_count_and_bounds(self):
        rng = derive_rng(0, "t")
        flips = inject_uniform(100, 10_000, rng)
        assert len(flips) == 100
        assert len(set(flips)) == 100
        assert all(0 <= b < 10_000 for b in flips)

    def test_uniform_zero(self):
        assert inject_uniform(0, 100, derive_rng(0, "t")) == []

    def test_clustered_count(self):
        rng = derive_rng(1, "t")
        flips = inject_clustered(100, 100_000, rng)
        assert len(flips) == 100
        assert flips == sorted(flips)

    def test_clustered_more_multibit_words_than_uniform(self):
        total_bits = 1 << 20
        n = 2000
        uni = flips_per_word(inject_uniform(n, total_bits, derive_rng(2, "u")))
        clu = flips_per_word(inject_clustered(n, total_bits, derive_rng(2, "c")))
        multi_uni = sum(v for k, v in uni.items() if k >= 2)
        multi_clu = sum(v for k, v in clu.items() if k >= 2)
        assert multi_clu > 3 * max(multi_uni, 1)

    def test_weak_cell_map_firing_fraction(self):
        rng = derive_rng(3, "t")
        flips = inject_weak_cell_map(1 << 20, weak_density=1e-3, firing_probability=0.5, rng=rng)
        expected = (1 << 20) * 1e-3 * 0.5
        assert 0.7 * expected < len(flips) < 1.3 * expected

    def test_campaign_clustered_defeats_secded_more(self):
        results = campaign(SECDED_72_64, n_flips=3000, total_bits=1 << 20, seed=4)
        assert results["clustered"].uncorrected_words > results["uniform"].uncorrected_words

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            inject_uniform(1, 0, derive_rng(0, "t"))
        with pytest.raises(ValueError):
            inject_weak_cell_map(100, 2.0, 0.5, derive_rng(0, "t"))


class TestFigures:
    def test_scatter_places_points(self):
        out = ascii_log_scatter(
            [(2012, 1e5, "A"), (2012, 1e5, "B"), (2013, 10, "C")],
            x_buckets=range(2010, 2015),
            decades=range(6, -1, -1),
        )
        assert "AB" in out
        assert "10^5" in out and "10^1" in out

    def test_scatter_drops_nonpositive(self):
        out = ascii_log_scatter([(2012, 0.0, "A")], range(2010, 2015), range(6, -1, -1))
        assert "A" not in out.replace("10^", "")

    def test_bars_scale(self):
        out = ascii_bars({"x": 10.0, "y": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bars_log_mode(self):
        out = ascii_bars({"a": 1e6, "b": 1e3}, width=12, log=True)
        lines = out.splitlines()
        assert lines[0].count("#") == 12
        assert lines[1].count("#") == 6

    def test_bars_empty(self):
        assert ascii_bars({}) == "(empty)"
