"""Tests for physical-address <-> DRAM-coordinate mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram import AddressMapping, DramCoordinate, DramGeometry

GEO = DramGeometry(banks=4, rows=256, row_bytes=256)


class TestAddressMappingBasics:
    def test_decode_zero(self):
        m = AddressMapping(GEO)
        c = m.decode(0)
        assert (c.channel, c.rank, c.bank, c.row, c.column) == (0, 0, 0, 0, 0)

    def test_row_interleaved_bank_rotates_after_row(self):
        m = AddressMapping(GEO, "row-interleaved")
        c = m.decode(GEO.row_bytes)  # first byte after one full row
        assert c.bank == 1 and c.row == 0

    def test_bank_interleaved_row_rotates_first(self):
        m = AddressMapping(GEO, "bank-interleaved")
        c = m.decode(GEO.row_bytes)
        assert c.row == 1 and c.bank == 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(GEO, "bogus")

    def test_out_of_range_address(self):
        m = AddressMapping(GEO)
        with pytest.raises(IndexError):
            m.decode(GEO.capacity_bytes)

    def test_encode_validates_coordinates(self):
        m = AddressMapping(GEO)
        with pytest.raises(IndexError):
            m.encode(DramCoordinate(channel=0, rank=0, bank=9, row=0, column=0))

    def test_row_address(self):
        m = AddressMapping(GEO)
        addr = m.row_address(bank=2, row=5)
        c = m.decode(addr)
        assert c.bank == 2 and c.row == 5 and c.column == 0


class TestMappingBijectivity:
    @given(st.integers(min_value=0, max_value=GEO.capacity_bytes - 1))
    def test_row_interleaved_roundtrip(self, address):
        m = AddressMapping(GEO, "row-interleaved")
        assert m.encode(m.decode(address)) == address

    @given(st.integers(min_value=0, max_value=GEO.capacity_bytes - 1))
    def test_bank_interleaved_roundtrip(self, address):
        m = AddressMapping(GEO, "bank-interleaved")
        assert m.encode(m.decode(address)) == address

    def test_adjacent_pages_map_to_adjacent_rows(self):
        # The security-relevant fact: an attacker's page and a victim's
        # page can occupy physically adjacent rows in the same bank.
        m = AddressMapping(GEO, "row-interleaved")
        a = m.decode(m.row_address(bank=0, row=10))
        b = m.decode(m.row_address(bank=0, row=11))
        assert abs(a.row - b.row) == 1 and a.bank == b.bank
