"""Tests for the adaptive-latency margin model."""

import pytest

from repro.dram.latency import (
    SPEC_TRCD_NS,
    LatencyMarginModel,
    LatencyMarginParams,
    aldram_study,
)


class TestLatencyMarginModel:
    def test_spec_timing_is_safe(self):
        model = LatencyMarginModel(seed=1)
        assert model.error_rate_at(SPEC_TRCD_NS) == 0.0

    def test_error_rate_monotone_in_trcd(self):
        model = LatencyMarginModel(seed=2)
        assert model.error_rate_at(7.0) >= model.error_rate_at(9.0) >= model.error_rate_at(12.0)

    def test_aggressive_timing_fails_cells(self):
        model = LatencyMarginModel(seed=3)
        assert model.error_rate_at(7.5) > 0.0

    def test_safe_trcd_below_spec(self):
        # The AL-DRAM observation: profiled modules run faster than spec.
        model = LatencyMarginModel(seed=4)
        assert model.safe_trcd() < SPEC_TRCD_NS

    def test_safe_trcd_actually_safe(self):
        model = LatencyMarginModel(seed=5)
        assert model.error_rate_at(model.safe_trcd()) == 0.0

    def test_relaxed_target_allows_faster(self):
        model = LatencyMarginModel(seed=6)
        strict = model.safe_trcd(0.0)
        relaxed = model.safe_trcd(1e-3)
        assert relaxed <= strict

    def test_modules_differ(self):
        safes = {LatencyMarginModel(seed=s).safe_trcd() for s in range(6)}
        assert len(safes) > 1

    def test_validation(self):
        model = LatencyMarginModel(seed=0)
        with pytest.raises(ValueError):
            model.error_rate_at(0)
        with pytest.raises(ValueError):
            model.safe_trcd(target_error_rate=2.0)


class TestAldramStudy:
    def test_study_shape(self):
        rows = aldram_study(n_modules=8, seed=0)
        assert len(rows) == 8
        for row in rows:
            assert row["error_rate_at_spec"] == 0.0
            assert 0.0 <= row["speedup_fraction"] < 0.5

    def test_mean_speedup_meaningful(self):
        rows = aldram_study(n_modules=12, seed=1)
        mean_speedup = sum(r["speedup_fraction"] for r in rows) / len(rows)
        # AL-DRAM-class result: double-digit percentage latency headroom.
        assert mean_speedup > 0.10
