"""Tests for the command scheduler (performance model)."""

import pytest

from repro.controller import CommandScheduler, EnergyAccount, MemRequest
from repro.dram.timing import DDR3_1333
from repro.workloads import random_access, sequential_stream


class TestScheduler:
    def test_row_hits_faster_than_misses(self):
        hits = CommandScheduler(banks=4, timing=DDR3_1333)
        same_row = [MemRequest(arrival_ns=i * 50.0, bank=0, row=7) for i in range(50)]
        hit_stats = hits.execute(same_row)
        misses = CommandScheduler(banks=4, timing=DDR3_1333)
        alt_rows = [MemRequest(arrival_ns=i * 50.0, bank=0, row=i % 2 * 40) for i in range(50)]
        miss_stats = misses.execute(alt_rows)
        assert hit_stats.avg_latency_ns < miss_stats.avg_latency_ns
        assert hit_stats.hit_rate > miss_stats.hit_rate

    def test_higher_refresh_rate_hurts_latency(self):
        trace = sequential_stream(3000, banks=4, rows=1024, request_interval_ns=15.0)
        base = CommandScheduler(banks=4, timing=DDR3_1333, refresh_multiplier=1.0).execute(trace)
        trace2 = sequential_stream(3000, banks=4, rows=1024, request_interval_ns=15.0)
        heavy = CommandScheduler(banks=4, timing=DDR3_1333, refresh_multiplier=8.0).execute(trace2)
        assert heavy.avg_latency_ns > base.avg_latency_ns
        assert heavy.refresh_stall_ns > base.refresh_stall_ns

    def test_all_requests_completed_in_order_time(self):
        sched = CommandScheduler(banks=2, timing=DDR3_1333)
        trace = random_access(200, banks=2, rows=64, seed=3)
        stats = sched.execute(trace)
        assert stats.requests == 200
        assert all(r.completed_ns >= r.arrival_ns for r in trace)

    def test_bank_parallelism_beats_single_bank(self):
        n = 400
        multi = [MemRequest(arrival_ns=i * 5.0, bank=i % 4, row=i) for i in range(n)]
        single = [MemRequest(arrival_ns=i * 5.0, bank=0, row=i) for i in range(n)]
        multi_stats = CommandScheduler(banks=4, timing=DDR3_1333).execute(multi)
        single_stats = CommandScheduler(banks=4, timing=DDR3_1333).execute(single)
        assert multi_stats.finish_ns < single_stats.finish_ns

    def test_energy_charged(self):
        acct = EnergyAccount()
        sched = CommandScheduler(banks=2, timing=DDR3_1333, energy=acct)
        sched.execute(random_access(100, banks=2, rows=64, seed=1))
        assert acct.dynamic_nj > 0
        assert acct.counts["act"] > 0

    def test_bank_bounds(self):
        sched = CommandScheduler(banks=2, timing=DDR3_1333)
        with pytest.raises(IndexError):
            sched.execute([MemRequest(arrival_ns=0.0, bank=5, row=0)])

    def test_throughput_positive(self):
        sched = CommandScheduler(banks=2, timing=DDR3_1333)
        stats = sched.execute(random_access(50, banks=2, rows=64, seed=2))
        assert stats.throughput_rps > 0
