"""The declarative experiment registry: lookup, aliases, signature
introspection, and the seed-dispatch regression (the old ``except
TypeError`` retry must be structurally gone)."""

import pytest

from repro import experiments as E
from repro.experiments import registry


class TestRegistryContents:
    def test_all_experiments_registered(self):
        assert len(registry.names()) == 27

    def test_every_legacy_cli_name_resolves(self):
        # The full pre-refactor CLI name set keeps working as aliases.
        legacy = ("f1", "c2", "c3", "c4", "c5", "c5-sim", "c6", "c7", "c8",
                  "c9", "c9-fcr", "c10-c11", "c12", "c12-lifetime", "c13",
                  "c14", "sidedness", "trr-bypass", "userlevel",
                  "raidr-interaction", "codesign", "dpd", "emerging",
                  "multibank", "vref", "fleet")
        for name in legacy:
            assert registry.get(name).fn is not None

    def test_alias_and_canonical_name_reach_same_spec(self):
        assert registry.get("f1") is registry.get("fig1_error_rates")

    def test_unknown_name_raises(self):
        with pytest.raises(E.UnknownExperimentError):
            registry.get("nonexistent")

    def test_specs_carry_claim_section_tags(self):
        for spec in registry.all_specs():
            assert spec.claim
            assert spec.section
            assert spec.tags

    def test_tag_filter(self):
        flash = registry.all_specs(tag="flash")
        assert {s.name for s in flash} >= {"flash_error_sweep", "fcr_study"}

    def test_render_index_covers_all(self):
        index = registry.render_index(fmt="markdown")
        for name in registry.names():
            assert f"`{name}`" in index


class TestSignatureIntrospection:
    def test_seed_detected_from_signature(self):
        assert registry.get("fig1_error_rates").accepts_seed
        assert not registry.get("para_reliability").accepts_seed

    def test_seed_excluded_from_params(self):
        spec = registry.get("isolation_violations")
        assert "seed" not in spec.params
        assert spec.params["reads"].default == 2_600_000

    def test_bind_drops_seed_for_seedless_experiment(self):
        assert registry.get("para_reliability").bind(seed=7) == {}

    def test_bind_rejects_unknown_param(self):
        with pytest.raises(ValueError, match="no parameter"):
            registry.get("fig1_error_rates").bind(params={"bogus": 1})

    def test_bind_rejects_seed_in_params(self):
        with pytest.raises(ValueError, match="seed"):
            registry.get("fig1_error_rates").bind(params={"seed": 1})

    def test_params_schema_validated_against_signature(self):
        with pytest.raises(ValueError, match="does not take"):
            @E.experiment("_bad_schema", "x", section="II",
                          tags=("test",), params_schema={"nope": "ghost param"})
            def _bad_schema(seed: int = 0):
                return {}

    def test_duplicate_name_rejected(self):
        with pytest.raises(E.DuplicateExperimentError):
            @E.experiment("fig1_error_rates", "imposter", section="II", tags=("test",))
            def _imposter(seed: int = 0):
                return {}


class TestSeedDispatchRegression:
    """The old CLI did ``try: fn(seed=seed) except TypeError: fn()`` —
    any TypeError raised *inside* an experiment silently re-ran it
    without a seed.  The registry dispatches on the signature, so an
    inner TypeError must now propagate unchanged."""

    def test_inner_typeerror_propagates(self):
        calls = []

        @E.experiment("_typeerror_probe", "raises inside", section="II", tags=("test",))
        def _typeerror_probe(seed: int = 0):
            calls.append(seed)
            raise TypeError("raised inside the experiment body")

        try:
            with pytest.raises(TypeError, match="inside the experiment body"):
                E.execute_job("_typeerror_probe", seed=11)
            # Exactly one call: no silent seedless retry.
            assert calls == [11]
        finally:
            registry.unregister("_typeerror_probe")

    def test_seedless_experiment_never_called_with_seed(self):
        result = E.execute_job("para_reliability", seed=123)
        assert result.seed is None  # signature says no seed; none forced in


class TestCoreExperimentShim:
    def test_shim_reexports_every_experiment(self):
        from repro.core import experiment as shim

        for name in registry.names():
            assert getattr(shim, name) is registry.get(name).fn

    def test_shim_exposes_framework(self):
        from repro.core import experiment as shim

        assert shim.ExperimentRunner is E.ExperimentRunner
        assert shim.ExperimentResult is E.ExperimentResult
