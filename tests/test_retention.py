"""Tests for the retention subsystem: population, VRT, profiling, RAIDR, AVATAR."""

import numpy as np
import pytest

from repro.retention import (
    CellPopulation,
    RetentionParams,
    VrtProcess,
    assign_bins,
    field_escapes,
    profile_population,
    runtime_escape_cells,
    simulate_avatar,
)
from repro.utils.rng import derive_rng

PARAMS = RetentionParams(
    tail_fraction=5e-3,
    vrt_fraction=5e-3,
    dpd_fraction=0.5,
)


def make_population(rows=128, cells=64, params=PARAMS, seed=0):
    return CellPopulation(rows, cells, params, seed=seed)


class TestVrtProcess:
    def test_stationary_occupancy(self):
        rng = derive_rng(0, "t")
        proc = VrtProcess(n_cells=5000, mean_dwell_s=100.0, low_occupancy=0.2, rng=rng)
        # Advance far beyond the mixing time and check the occupancy.
        proc.advance(10_000.0)
        occupancy = proc.low_mask().mean()
        assert 0.15 < occupancy < 0.25

    def test_states_toggle_over_time(self):
        rng = derive_rng(1, "t")
        proc = VrtProcess(n_cells=200, mean_dwell_s=10.0, low_occupancy=0.3, rng=rng)
        before = proc.low_mask()
        proc.advance(1000.0)
        assert not np.array_equal(before, proc.low_mask())

    def test_ever_low_superset_of_instant(self):
        rng = derive_rng(2, "t")
        proc = VrtProcess(n_cells=500, mean_dwell_s=5.0, low_occupancy=0.2, rng=rng)
        ever = proc.ever_low_during(100.0)
        assert ever.sum() >= proc.low_mask().sum() * 0  # ever includes transitions
        assert ever.sum() > 0

    def test_zero_cells(self):
        proc = VrtProcess(0, 10.0, 0.2, derive_rng(0, "e"))
        proc.advance(5.0)
        assert proc.ever_low_during(5.0).size == 0

    def test_negative_dt_rejected(self):
        proc = VrtProcess(1, 10.0, 0.2, derive_rng(0, "e"))
        with pytest.raises(ValueError):
            proc.advance(-1.0)


class TestCellPopulation:
    def test_shape(self):
        pop = make_population()
        assert pop.n_cells == 128 * 64
        assert pop.nominal_s.shape == (pop.n_cells,)

    def test_most_cells_retain_long(self):
        pop = make_population()
        assert np.median(pop.nominal_s) > 1.0

    def test_tail_exists(self):
        pop = make_population()
        assert (pop.nominal_s < PARAMS.tail_max_s).sum() > 0

    def test_dpd_reduces_retention(self):
        pop = make_population()
        worst = pop.retention_s(worst_case_pattern=True)
        best = pop.retention_s(worst_case_pattern=False)
        assert np.all(worst <= best + 1e-12)
        assert (worst < best).sum() > 0

    def test_vrt_low_reduces_retention(self):
        pop = make_population()
        if len(pop.vrt_indices) == 0:
            pytest.skip("no VRT cells drawn")
        all_low = np.ones(len(pop.vrt_indices), dtype=bool)
        lowered = pop.retention_s(vrt_low_mask=all_low)
        none_low = pop.retention_s(vrt_low_mask=~all_low)
        assert lowered[pop.vrt_indices].max() < none_low[pop.vrt_indices].max()

    def test_failing_cells_threshold(self):
        pop = make_population()
        weak = pop.failing_cells(refresh_interval_s=1.0)
        weaker = pop.failing_cells(refresh_interval_s=10.0)
        assert len(weak) <= len(weaker)

    def test_row_min_retention_shape(self):
        pop = make_population()
        assert pop.row_min_retention().shape == (128,)

    def test_deterministic(self):
        a = make_population(seed=5).nominal_s
        b = make_population(seed=5).nominal_s
        assert np.array_equal(a, b)


class TestProfiling:
    def test_more_rounds_discover_more(self):
        pop1 = make_population(seed=3)
        few = profile_population(pop1, test_interval_s=0.5, rounds=1, seed=3)
        pop2 = make_population(seed=3)
        many = profile_population(pop2, test_interval_s=0.5, rounds=10, seed=3)
        assert len(many.discovered) >= len(few.discovered)

    def test_escapes_exist_with_vrt_and_dpd(self):
        pop = make_population(seed=4)
        result = profile_population(pop, test_interval_s=0.5, rounds=4, pattern_coverage=0.4, seed=4)
        escapes = field_escapes(pop, result, field_refresh_interval_s=0.5, observation_s=3600.0)
        assert len(escapes) > 0

    def test_perfect_coverage_catches_dpd(self):
        params = RetentionParams(tail_fraction=5e-3, vrt_fraction=0.0, dpd_fraction=0.5)
        pop = make_population(params=params, seed=5)
        result = profile_population(pop, test_interval_s=0.5, rounds=3, pattern_coverage=1.0, seed=5)
        escapes = field_escapes(pop, result, field_refresh_interval_s=0.5, observation_s=3600.0)
        assert len(escapes) == 0

    def test_observed_retention_bounded_by_nominal(self):
        pop = make_population(seed=6)
        result = profile_population(pop, test_interval_s=0.5, rounds=4, seed=6)
        assert np.all(result.observed_retention_s <= pop.nominal_s + 1e-12)


class TestRaidr:
    def test_savings_positive(self):
        pop = make_population(seed=7)
        result = profile_population(pop, test_interval_s=0.6, rounds=6, seed=7)
        assignment = assign_bins(pop, result.observed_retention_s)
        assert assignment.savings_fraction() > 0.3
        assert sum(assignment.bin_counts()) == pop.rows

    def test_guardband_shifts_bins_conservative(self):
        pop = make_population(seed=7)
        result = profile_population(pop, test_interval_s=0.6, rounds=6, seed=7)
        loose = assign_bins(pop, result.observed_retention_s, guardband=1.0)
        tight = assign_bins(pop, result.observed_retention_s, guardband=8.0)
        assert tight.savings_fraction() <= loose.savings_fraction()

    def test_runtime_escapes_under_assignment(self):
        pop = make_population(seed=8)
        result = profile_population(pop, test_interval_s=0.6, rounds=4, pattern_coverage=0.3, seed=8)
        assignment = assign_bins(pop, result.observed_retention_s, guardband=1.0)
        escapes = runtime_escape_cells(pop, assignment, observation_s=3600.0)
        assert len(escapes) >= 0  # exercises the path; VRT makes it stochastic

    def test_bins_must_ascend(self):
        pop = make_population()
        with pytest.raises(ValueError):
            assign_bins(pop, pop.nominal_s, bins_s=(0.256, 0.064))


class TestAvatar:
    def test_escape_rate_decays(self):
        pop = make_population(rows=256, cells=64, seed=9)
        result = profile_population(pop, test_interval_s=0.6, rounds=4, pattern_coverage=0.3, seed=9)
        assignment = assign_bins(pop, result.observed_retention_s, guardband=1.0)
        avatar = simulate_avatar(pop, assignment, days=4, seed=9)
        # The headline AVATAR behavior: day-1 escapes dominate; later
        # days approach zero as scrubbing upgrades rows.
        assert avatar.daily_escapes[0] >= avatar.daily_escapes[-1]
        assert sum(avatar.daily_escapes[2:]) <= avatar.daily_escapes[0] + 5

    def test_upgrades_increase_refresh_cost(self):
        pop = make_population(rows=256, cells=64, seed=10)
        result = profile_population(pop, test_interval_s=0.6, rounds=4, pattern_coverage=0.3, seed=10)
        assignment = assign_bins(pop, result.observed_retention_s, guardband=1.0)
        avatar = simulate_avatar(pop, assignment, days=3, seed=10)
        assert avatar.refreshes_per_second_final >= assignment.refreshes_per_second()
