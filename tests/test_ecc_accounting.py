"""Tests for ECC accounting: histograms and Monte-Carlo evaluation."""

import numpy as np
import pytest

from repro.ecc import (
    DecodeStatus,
    EccEvaluation,
    ParityCode,
    SECDED_72_64,
    evaluate_code_against_histogram,
    flips_per_word,
)
from repro.ecc.bitops import bits_to_int, flip_bits, hamming_distance, int_to_bits, parity


class TestBitops:
    def test_int_bits_roundtrip(self):
        for value in (0, 1, 0xDEADBEEF, 2**63):
            assert bits_to_int(int_to_bits(value, 64)) == value

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_parity(self):
        assert parity(np.array([1, 1, 0], dtype=np.uint8)) == 0
        assert parity(np.array([1, 0, 0], dtype=np.uint8)) == 1

    def test_flip_bits(self):
        bits = np.zeros(8, dtype=np.uint8)
        out = flip_bits(bits, [1, 3])
        assert list(out) == [0, 1, 0, 1, 0, 0, 0, 0]
        assert np.all(bits == 0)  # original untouched

    def test_hamming_distance(self):
        a = np.array([1, 0, 1], dtype=np.uint8)
        b = np.array([0, 0, 1], dtype=np.uint8)
        assert hamming_distance(a, b) == 1


class TestFlipsPerWord:
    def test_empty(self):
        assert flips_per_word([]) == {}

    def test_single_word_groups(self):
        # bits 0, 5, 63 live in word 0; bit 64 in word 1.
        assert flips_per_word([0, 5, 63, 64]) == {1: 1, 3: 1}

    def test_word_size_respected(self):
        assert flips_per_word([0, 100], word_bits=128) == {2: 1}

    def test_rejects_bad_word_bits(self):
        with pytest.raises(ValueError):
            flips_per_word([0], word_bits=0)


class TestEvaluation:
    def test_secded_corrects_single_flip_class(self):
        rng = np.random.default_rng(0)
        ev = evaluate_code_against_histogram(SECDED_72_64, {1: 50}, rng)
        assert ev.outcomes.get(DecodeStatus.CORRECTED, 0) == 50
        assert ev.uncorrected_words == 0

    def test_secded_fails_double_flip_class(self):
        rng = np.random.default_rng(0)
        ev = evaluate_code_against_histogram(SECDED_72_64, {2: 50}, rng)
        assert ev.uncorrected_words == 50

    def test_parity_detects_odd_misses_even(self):
        rng = np.random.default_rng(0)
        code = ParityCode(64)
        odd = evaluate_code_against_histogram(code, {1: 30}, rng)
        assert odd.outcomes.get(DecodeStatus.DETECTED_UNCORRECTABLE, 0) == 30
        even = evaluate_code_against_histogram(code, {2: 30}, rng)
        # Even flips pass the parity check -> silent corruption.
        assert even.silent_corruptions == 30

    def test_scaling_to_population(self):
        rng = np.random.default_rng(1)
        ev = evaluate_code_against_histogram(SECDED_72_64, {1: 10_000}, rng, trials_per_class=50)
        assert ev.words_total == pytest.approx(10_000, rel=0.01)

    def test_rates(self):
        ev = EccEvaluation()
        ev.add(DecodeStatus.CLEAN, 3)
        ev.add(DecodeStatus.MISCORRECTED, 1)
        assert ev.rate(DecodeStatus.CLEAN) == pytest.approx(0.75)
        assert ev.silent_corruptions == 1
