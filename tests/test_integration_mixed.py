"""Integration tests: attacker embedded in benign traffic.

ANVIL's real detection problem is distinguishing a hammer loop from
legitimately hot rows inside normal traffic.  These tests drive the
mixed workload through the full controller with each detector
installed and check both halves: the attacker is stopped, and benign
hot rows are not flooded with victim refreshes.
"""

import pytest

from repro.controller import MemoryController
from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333
from repro.mitigations import AnvilMitigation, CounterBasedMitigation
from repro.workloads import mixed_with_attacker, sequential_stream

GEO = DramGeometry(banks=2, rows=512, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800)


def run_mixed(mitigation, seed=12, attacker_share=4.0):
    module = DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=seed)
    ctrl = MemoryController(module, mitigation=mitigation)
    benign = sequential_stream(800, banks=GEO.banks, rows=GEO.rows)
    trace = mixed_with_attacker(benign, bank=0, aggressors=[99, 101],
                                attacker_share=0.8, seed=seed)
    # Repeat the mixed block to accumulate attack pressure.
    for _ in range(4):
        ctrl.run_trace(trace)
    ctrl.finish()
    return ctrl, module


class TestMixedTrafficDetection:
    def test_attacker_in_mixed_traffic_flips_without_detector(self):
        ctrl, module = run_mixed(None)
        assert module.total_flips() > 0

    def test_anvil_catches_attacker_in_mixed_traffic(self):
        mitigation = AnvilMitigation(sample_interval_ns=50_000.0, rate_threshold=200)
        ctrl, module = run_mixed(mitigation)
        assert mitigation.detections > 0
        assert module.total_flips() == 0

    def test_anvil_quiet_on_pure_benign(self):
        mitigation = AnvilMitigation(sample_interval_ns=50_000.0, rate_threshold=200)
        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=3)
        ctrl = MemoryController(module, mitigation=mitigation)
        benign = sequential_stream(3_000, banks=GEO.banks, rows=GEO.rows)
        ctrl.run_trace([(r.bank, r.row, r.is_write) for r in benign])
        ctrl.finish()
        assert mitigation.detections == 0
        assert module.total_flips() == 0

    def test_cra_catches_attacker_in_mixed_traffic(self):
        mitigation = CounterBasedMitigation(threshold=200)
        ctrl, module = run_mixed(mitigation)
        assert mitigation.detections > 0
        assert module.total_flips() == 0

    def test_benign_rows_not_flooded_with_victim_refreshes(self):
        mitigation = CounterBasedMitigation(threshold=200)
        ctrl, module = run_mixed(mitigation)
        # Victim refreshes should be a tiny fraction of total commands:
        # only the aggressors' neighbors, not the whole benign footprint.
        assert ctrl.stats.mitigation_refreshes < ctrl.stats.activations * 0.05
