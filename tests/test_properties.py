"""Cross-cutting property-based tests on core invariants.

These pin down the semantic contracts the experiments rely on:
linearity of disturbance accounting, agreement between the bank's
lazy accounting and the fault model's direct prediction, refresh
equivalence, and the retention/VRT orderings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    DisturbanceModel,
    DramBank,
    DramGeometry,
    VulnerabilityProfile,
)
from repro.retention import CellPopulation, RetentionParams

GEO = DramGeometry(banks=2, rows=128, row_bytes=128)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.05,
    hc_first_median=5_000,
    hc_first_min=1_000,
    hc_first_sigma=0.5,
    aggressor_sensitive_fraction=0.0,  # keep flips independent of fills
    distance2_weight=0.0,
)


def make_bank(seed):
    return DramBank(GEO, DisturbanceModel(GEO, PROFILE, seed), 0)


class TestDisturbanceLinearity:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(st.integers(min_value=1, max_value=3_000), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_equals_single_bulk(self, seed, chunks):
        """N activations in arbitrary chunks == one bulk of N (no refresh)."""
        chunked = make_bank(seed)
        for chunk in chunks:
            chunked.bulk_activate(60, chunk)
        single = make_bank(seed)
        single.bulk_activate(60, sum(chunks))
        assert np.array_equal(chunked.refresh_row(61), single.refresh_row(61))

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=200_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_flips_match_model_prediction(self, seed, count):
        """The bank's lazy accounting agrees with the fault model's
        direct threshold evaluation for a fresh single-aggressor run."""
        bank = make_bank(seed)
        bank.bulk_activate(60, count)
        flipped = bank.refresh_row(61)
        model = bank.model
        cells = model.weak_cells(0, 61)
        charged = model.charged_values(cells)
        # Victim holds the solid1 default: bit value 1 everywhere.
        expected = cells.bits[(cells.hc_first <= count) & (charged == 1)]
        assert np.array_equal(np.sort(flipped), np.sort(expected))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_refresh_is_idempotent(self, seed):
        bank = make_bank(seed)
        bank.bulk_activate(60, 50_000)
        first = bank.refresh_row(61)
        second = bank.refresh_row(61)
        assert len(second) == 0
        assert len(first) >= 0

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_interposed_refresh_never_increases_flips(self, seed, pieces):
        """Splitting a fixed hammer budget with refreshes in between can
        only reduce (never increase) the victim's flips."""
        total = 60_000
        uninterrupted = make_bank(seed)
        uninterrupted.bulk_activate(60, total)
        flips_a = len(uninterrupted.refresh_row(61))
        refreshed = make_bank(seed)
        per_piece = total // pieces
        for _ in range(pieces):
            refreshed.bulk_activate(60, per_piece)
            refreshed.refresh_row(61)
        flips_b = refreshed.stats.flips_materialized
        assert flips_b <= flips_a


class TestRetentionOrderings:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_worst_case_pattern_never_helps(self, seed):
        pop = CellPopulation(32, 64, RetentionParams(dpd_fraction=0.7), seed=seed)
        worst = pop.retention_s(worst_case_pattern=True)
        best = pop.retention_s(worst_case_pattern=False)
        assert np.all(worst <= best + 1e-12)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_failing_cells_monotone_in_interval(self, seed, interval, factor):
        pop = CellPopulation(32, 64, RetentionParams(tail_fraction=1e-3), seed=seed)
        few = pop.failing_cells(interval)
        more = pop.failing_cells(interval * factor)
        assert set(few.tolist()) <= set(more.tolist())


class TestFlashOrderings:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=30_000),
        st.floats(min_value=0.0, max_value=400.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_rber_monotone_in_retention_age(self, seed, pe, days):
        from repro.flash import FlashBlock, program_block_shadow

        block = FlashBlock(wordlines=4, cells=512, seed=seed)
        block.set_pe_cycles(pe)
        program_block_shadow(block, seed=seed)
        before = block.rber()
        block.age_retention(days)
        # Allow a few-bit decrease: retention can re-center a cell that
        # program noise had pushed just past a reference.
        slack = 4 / (4 * 512 * 2)
        assert block.rber() >= before - slack
