"""Tests for the field study: population and campaign (Figure 1 claims)."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.fieldstudy import (
    build_population,
    instantiate,
    population_size,
    run_campaign,
    scan_module_rows,
    victim_pressure,
    whole_module_errors,
)

SMALL_GEO = DramGeometry(banks=2, rows=1024, row_bytes=1024)


class TestPopulation:
    def test_129_modules(self):
        assert population_size() == 129
        assert len(build_population()) == 129

    def test_serials_unique(self):
        specs = build_population()
        assert len({s.serial for s in specs}) == 129

    def test_dates_span_2008_2014(self):
        specs = build_population()
        years = {s.year for s in specs}
        assert years == set(range(2008, 2015))

    def test_manufacturer_counts(self):
        specs = build_population()
        counts = {m: sum(1 for s in specs if s.manufacturer == m) for m in "ABC"}
        assert sum(counts.values()) == 129
        assert counts["B"] > counts["A"] > counts["C"]

    def test_instantiate(self):
        spec = build_population()[0]
        module = instantiate(spec, geometry=SMALL_GEO)
        assert module.serial == spec.serial


class TestWholeModuleScan:
    def test_invulnerable_zero_errors(self):
        spec = next(s for s in build_population() if s.date < 2009)
        module = instantiate(spec, geometry=SMALL_GEO)
        assert whole_module_errors(module).errors == 0

    def test_2013_module_errors(self):
        spec = next(s for s in build_population() if 2013.0 <= s.date < 2013.5 and s.manufacturer == "B")
        module = instantiate(spec, geometry=SMALL_GEO)
        result = whole_module_errors(module)
        assert result.errors > 0
        assert result.errors_per_billion > 1e3

    def test_refresh_multiplier_reduces_errors(self):
        spec = next(s for s in build_population() if s.date >= 2013.0 and s.manufacturer == "B")
        module = instantiate(spec, geometry=SMALL_GEO)
        base = whole_module_errors(module, refresh_multiplier=1.0).errors
        scaled = whole_module_errors(module, refresh_multiplier=4.0).errors
        assert scaled < base

    def test_solid_pattern_fewer_errors_than_rowstripe(self):
        spec = next(s for s in build_population() if s.date >= 2013.0 and s.manufacturer == "B")
        module = instantiate(spec, geometry=SMALL_GEO)
        stripe = whole_module_errors(module, pattern="rowstripe").errors
        solid = whole_module_errors(module, pattern="solid1").errors
        assert solid < stripe

    def test_unsupported_pattern(self):
        spec = build_population()[0]
        module = instantiate(spec, geometry=SMALL_GEO)
        with pytest.raises(ValueError):
            whole_module_errors(module, pattern="checkered")

    def test_device_scan_consistent_with_vectorized(self):
        # The two scan paths sample the same stochastic model; their
        # per-cell error rates must agree within sampling noise.  The
        # device path needs two polarity passes (pattern + inverse) to
        # exercise every weak cell, like the vectorized path assumes;
        # aggressor sensitivity is disabled so fills don't matter.
        from dataclasses import replace

        from repro.dram import DramModule
        from repro.dram.timing import DDR3_1066
        from repro.dram.vintage import profile_for

        profile = replace(profile_for("B", 2013.2), aggressor_sensitive_fraction=0.0)

        def fresh(pattern):
            return DramModule(
                geometry=SMALL_GEO, timing=DDR3_1066, profile=profile,
                serial="consistency", seed=3, default_pattern=pattern,
            )

        budget = victim_pressure(fresh("solid1"))
        victims = range(16, 996)
        pass1 = scan_module_rows(fresh("solid1"), 0, victims=victims, budget=budget)
        pass0 = scan_module_rows(fresh("solid0"), 0, victims=victims, budget=budget)
        device_errors = pass1.errors + pass0.errors
        rate_device = device_errors * 1e9 / pass1.cells
        vector = whole_module_errors(fresh("solid1"), budget=budget, pattern="rowstripe")
        rate_vector = vector.errors_per_billion
        assert device_errors > 0
        assert 0.6 < rate_device / rate_vector < 1.8


class TestCampaign:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_campaign(seed=0)

    def test_110_of_129_vulnerable(self, summary):
        assert summary.modules_tested == 129
        assert summary.modules_vulnerable == 110

    def test_earliest_vulnerable_is_2010(self, summary):
        assert 2010.0 <= summary.earliest_vulnerable_date < 2011.0

    def test_all_2012_2013_vulnerable(self, summary):
        assert summary.all_vulnerable_between(2012.0, 2014.0)

    def test_no_pre_2010_vulnerable(self, summary):
        assert all(not r.vulnerable for r in summary.results if r.date < 2010.0)

    def test_manufacturer_peak_ordering(self, summary):
        assert (
            summary.peak_errors_per_billion("B")
            > summary.peak_errors_per_billion("A")
            > summary.peak_errors_per_billion("C")
        )

    def test_peak_rates_in_figure_range(self, summary):
        # Figure 1's y-axis tops out around 10^5-10^6 errors/10^9 cells.
        assert 1e5 < summary.peak_errors_per_billion("B") < 5e6
        assert 1e4 < summary.peak_errors_per_billion("A") < 1e6

    def test_rates_rise_through_2013(self, summary):
        for mfr in "AB":
            rates = summary.yearly_mean_rate(mfr)
            assert rates[2011] < rates[2012] < rates[2013]

    def test_2014_decline(self, summary):
        for mfr in "ABC":
            rates = summary.yearly_mean_rate(mfr)
            assert rates[2014] < rates[2013] * 1.5


class TestFleetExposure:
    def test_exposure_shape(self):
        from repro.fieldstudy import fleet_exposure

        exposure = fleet_exposure(servers=600, seed=1)
        assert exposure.servers == 600
        assert 0 < exposure.vulnerable_servers <= 600
        assert exposure.compromised_servers <= exposure.vulnerable_servers
        assert sum(exposure.by_year.values()) == exposure.vulnerable_servers

    def test_old_fleet_less_exposed(self):
        from repro.fieldstudy import fleet_exposure

        old = fleet_exposure(
            servers=600, vintage_weights={2008: 0.5, 2009: 0.5}, seed=2
        )
        new = fleet_exposure(
            servers=600, vintage_weights={2013: 1.0}, seed=2
        )
        assert old.vulnerable_fraction < 0.05
        assert new.vulnerable_fraction > 0.9

    def test_patch_rollout_trend(self):
        from repro.fieldstudy import patch_rollout_study

        rows = patch_rollout_study(multipliers=(1.0, 8.0), servers=600, seed=3)
        assert rows[1]["vulnerable_fraction"] < rows[0]["vulnerable_fraction"] / 2

    def test_prevalence_bounds(self):
        from repro.fieldstudy import fleet_exposure

        with pytest.raises(ValueError):
            fleet_exposure(servers=10, attack_prevalence=1.5)
