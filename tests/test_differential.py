"""The differential oracle: the columnar engine must be observationally
identical to the per-command reference on randomized command streams.

This suite is the equivalence contract's enforcement point: 100+ seeded
streams (cycling vulnerability profiles and data patterns), explicit
corner geometries/profiles, and a sanitize-full section that makes the
shadow-digest machinery part of the comparison.
"""

import numpy as np
import pytest

from repro.dram.bank import DramBank
from repro.dram.differential import (
    DEFAULT_GEOMETRY,
    DEFAULT_PROFILES,
    diff_observations,
    random_stream,
    replay_stream,
    run_differential,
)
from repro.dram.disturbance import DisturbanceModel, VulnerabilityProfile
from repro.dram.geometry import DramGeometry
from repro.dram.stream import CommandStream
from repro.sanitizer import runtime as sanit


class TestOracleSeedSweep:
    """The headline property: engines agree on randomized streams."""

    @pytest.mark.parametrize("seed", range(100))
    def test_engines_agree(self, seed):
        result = run_differential(seed=seed)
        assert result["ok"], "\n".join(result["mismatches"])

    def test_sweep_exercises_flips(self):
        # The suite proves nothing if the streams never flip a bit.
        flips = sum(run_differential(seed=s)["flips"] for s in range(12))
        assert flips > 0

    def test_rounds_are_deterministic(self):
        a = random_stream(7)
        b = random_stream(7)
        assert list(a) == list(b)
        assert list(a) != list(random_stream(8))


class TestOracleCorners:
    """Deliberate corner shapes on top of the random sweep."""

    def _agree(self, stream, geometry=DEFAULT_GEOMETRY,
               profile=DEFAULT_PROFILES[0], pattern="rowstripe", seed=0):
        reference = replay_stream(stream, "reference", geometry, profile,
                                  seed, pattern)
        candidate = replay_stream(stream, "columnar", geometry, profile,
                                  seed, pattern)
        problems = diff_observations(reference, candidate)
        assert not problems, "\n".join(problems)
        return reference

    def test_empty_stream(self):
        self._agree(CommandStream())

    def test_edge_rows_and_repeats(self):
        rows = DEFAULT_GEOMETRY.rows
        stream = (CommandStream()
                  .act(0, 4000).act(rows - 1, 4000)
                  .act(1, 4000).act(1, 4000)
                  .ref_row(0).ref_row(0).ref_all().settle())
        self._agree(stream)

    def test_aggressors_that_are_also_victims(self):
        # Adjacent hammered rows: each row is both an aggressor and a
        # bumped victim, which forces the cascade (dirty-recompute) path
        # through the batched materializer.
        stream = CommandStream()
        for row in range(10, 16):
            stream.act(row, 5000)
        stream.ref_all(10.0)
        self._agree(stream)

    def test_sub_threshold_pressure_still_instantiates(self):
        # Peaks below hc_first_min can never flip, but the reference
        # still instantiates the rows it evaluates — the columnar floor
        # precheck must preserve that.
        stream = CommandStream().act(50, 3).act(52, 3).ref_all(5.0)
        reference = self._agree(stream)
        assert reference.stats["flips_materialized"] == 0
        assert reference.touched_rows

    def test_invulnerable_profile(self):
        self._agree(random_stream(3), profile=DEFAULT_PROFILES[3])

    def test_distance2_heavy_profile(self):
        self._agree(random_stream(5), profile=DEFAULT_PROFILES[1])

    def test_dpd_relief_below_one(self):
        # relief < 1 lowers thresholds for relieved cells, exercising
        # the relief_floor handling in the batched candidate filter.
        profile = VulnerabilityProfile(
            weak_cell_density=0.06, hc_first_median=4_000.0,
            hc_first_min=900.0, aggressor_sensitive_fraction=0.8,
            dpd_relief=0.5)
        for seed in range(4):
            self._agree(random_stream(seed), profile=profile, seed=seed)

    def test_multi_block_geometry(self):
        geometry = DramGeometry(banks=1, rows=512, row_bytes=64)
        for seed in range(4):
            stream = random_stream(seed, geometry)
            self._agree(stream, geometry=geometry, seed=seed)

    def test_aperiodic_random_pattern(self):
        for seed in range(4):
            self._agree(random_stream(seed), pattern="random", seed=seed)

    def test_capped_flip_log_agrees(self):
        profile = DEFAULT_PROFILES[1]
        stream = random_stream(2)
        observations = []
        for engine in ("reference", "columnar"):
            model = DisturbanceModel(DEFAULT_GEOMETRY, profile, 2)
            bank = DramBank(DEFAULT_GEOMETRY, model, 0,
                            default_pattern="rowstripe", engine=engine)
            bank.stats.flip_log_cap = 16
            returned = bank.execute(stream)
            observations.append((engine, returned, list(bank.stats.flip_log),
                                 bank.stats.flips_dropped,
                                 bank.stats.flips_materialized))
        ref, col = observations
        assert ref[1:] == col[1:]
        assert ref[3] > 0  # the cap actually bit
        assert len(ref[2]) == 16


class TestOracleDetectsDivergence:
    """Negative control: the comparator must not be vacuous."""

    def test_tampered_flip_log_is_caught(self):
        stream = random_stream(1)
        a = replay_stream(stream, "reference", seed=1, pattern="rowstripe",
                          profile=DEFAULT_PROFILES[1])
        b = replay_stream(stream, "columnar", seed=1, pattern="rowstripe",
                          profile=DEFAULT_PROFILES[1])
        assert not diff_observations(a, b)
        assert b.flip_log, "stream must flip for this control to bite"
        b.flip_log[0] = (b.flip_log[0][0], b.flip_log[0][1] ^ 1,
                         b.flip_log[0][2])
        b.stats["reads"] += 1
        problems = diff_observations(a, b)
        assert any("flip_log" in p for p in problems)
        assert any("stats" in p for p in problems)

    def test_tampered_row_data_is_caught(self):
        stream = random_stream(1)
        a = replay_stream(stream, "reference", seed=1)
        b = replay_stream(stream, "columnar", seed=1)
        row = next(iter(b.row_data))
        b.row_data[row] = b.row_data[row].copy()
        b.row_data[row][0] ^= 1
        assert any("row_data" in p for p in diff_observations(a, b))


class TestProvenance:
    """The oracle compares flip *provenance*, not just flip positions:
    tampering with any provenance field of one engine's log must be
    caught, while float-rounding-sized hammer differences must not."""

    def _pair(self):
        stream = random_stream(1)
        a = replay_stream(stream, "reference", seed=1, pattern="rowstripe",
                          profile=DEFAULT_PROFILES[1])
        b = replay_stream(stream, "columnar", seed=1, pattern="rowstripe",
                          profile=DEFAULT_PROFILES[1])
        assert not diff_observations(a, b)
        assert b.flip_log, "stream must flip for these controls to bite"
        return a, b

    @staticmethod
    def _with_field(entry, index, value):
        fields = list(entry)
        fields[index] = value
        return tuple(fields)

    def test_log_carries_full_provenance(self):
        _, b = self._pair()
        row, bit, time, aggressor, hammer, pattern, epoch = b.flip_log[0]
        assert pattern == "rowstripe"
        assert epoch >= 0
        assert hammer > 0.0
        assert any(entry[3] >= 0 for entry in b.flip_log), \
            "hammered victims must name a dominant aggressor"

    def test_tampered_aggressor_is_caught(self):
        a, b = self._pair()
        b.flip_log[0] = self._with_field(b.flip_log[0], 3,
                                         b.flip_log[0][3] + 1)
        assert any("flip_log" in p for p in diff_observations(a, b))

    def test_tampered_pattern_is_caught(self):
        a, b = self._pair()
        b.flip_log[0] = self._with_field(b.flip_log[0], 5, "solid1")
        assert any("flip_log" in p for p in diff_observations(a, b))

    def test_tampered_epoch_is_caught(self):
        a, b = self._pair()
        b.flip_log[0] = self._with_field(b.flip_log[0], 6,
                                         b.flip_log[0][6] + 1)
        assert any("flip_log" in p for p in diff_observations(a, b))

    def test_hammer_beyond_tolerance_is_caught(self):
        a, b = self._pair()
        b.flip_log[0] = self._with_field(b.flip_log[0], 4,
                                         b.flip_log[0][4] * 1.01)
        assert any("flip_log" in p for p in diff_observations(a, b))

    def test_hammer_within_tolerance_passes(self):
        # Columnar reassociates float sums, so hammer pressure is
        # compared with the same isclose tolerance as the pressure
        # observations — an ulp-sized wiggle must not fail the oracle.
        a, b = self._pair()
        hammer = b.flip_log[0][4]
        b.flip_log[0] = self._with_field(b.flip_log[0], 4,
                                         hammer * (1.0 + 1e-12))
        assert not diff_observations(a, b)


class TestOracleUnderSanitizer:
    """The contract holds with the sanitizer shadow machinery live —
    digests are then part of the compared observation."""

    @pytest.fixture(autouse=True)
    def _sanitize_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "full")
        sanit.sync_from_env()
        yield
        # conftest re-syncs the level after every test.

    @pytest.mark.parametrize("seed", range(12))
    def test_engines_agree_sanitized(self, seed):
        assert sanit.sanitize_on
        result = run_differential(seed=seed)
        assert result["ok"], "\n".join(result["mismatches"])

    def test_digests_populated(self):
        stream = random_stream(2)
        reference = replay_stream(stream, "reference", seed=2,
                                  profile=DEFAULT_PROFILES[1])
        candidate = replay_stream(stream, "columnar", seed=2,
                                  profile=DEFAULT_PROFILES[1])
        assert reference.digests, "sanitize-full must record shadow digests"
        assert reference.digests == candidate.digests


def test_row_data_not_polluted_by_observation():
    # observe() reads every touched row; reading must not change what a
    # second observation sees (materialization is content-preserving).
    stream = random_stream(9)
    first = replay_stream(stream, "columnar", seed=9)
    second = replay_stream(stream, "columnar", seed=9)
    assert sorted(first.row_data) == sorted(second.row_data)
    for row, bits in first.row_data.items():
        assert np.array_equal(bits, second.row_data[row])
