"""Randomized round-trip properties of the ECC codecs.

Each codec makes a guarantee stated in terms of injected error count
(§II-C outcome classes): parity detects odd flip counts and is blind to
even ones, SECDED corrects one flip and detects two, the GF(256) symbol
code corrects any damage confined to one symbol.  These tests exercise
encode → inject k errors → decode across a seeded sweep, checking the
guarantee class-by-class, and pin the Monte-Carlo accounting in
:mod:`repro.ecc.accounting` to exact per-word decodes when sampling
covers every word.
"""

import numpy as np
import pytest

from repro.ecc import (
    SECDED_72_64,
    SYMBOL_72_64,
    DecodeStatus,
    EccEvaluation,
    HammingSecded,
    ParityCode,
    SingleSymbolCorrectingCode,
    classify_against_truth,
    evaluate_code_against_histogram,
    flips_per_word,
    interleave_position,
    interleaved_flips_per_word,
)

SEEDS = range(12)


def roundtrip(code, seed, k):
    """Encode a random word, flip k distinct codeword bits, decode.

    Returns (true data, decode result, ground-truth status).
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
    codeword = code.encode(data)
    if k:
        positions = rng.choice(code.code_bits, size=k, replace=False)
        codeword[positions] ^= 1
    result = code.decode(codeword)
    return data, result, classify_against_truth(result, data)


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------
class TestParityProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_odd_flip_counts_detected(self, seed, k):
        _data, result, _truth = roundtrip(ParityCode(64), seed, k)
        assert result.status == DecodeStatus.DETECTED_UNCORRECTABLE

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", [2, 4])
    def test_even_flip_counts_pass_silently(self, seed, k):
        """The defining weakness: an even number of flips rebalances the
        parity bit, so the decoder reports CLEAN over damaged data."""
        data, result, truth = roundtrip(ParityCode(64), seed, k)
        assert result.status == DecodeStatus.CLEAN
        # Ground truth exposes the lie whenever a data bit was hit.
        if not np.array_equal(result.data, data):
            assert truth == DecodeStatus.MISCORRECTED

    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_roundtrip(self, seed):
        data, result, _truth = roundtrip(ParityCode(64), seed, 0)
        assert result.status == DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)


# ----------------------------------------------------------------------
# SECDED Hamming
# ----------------------------------------------------------------------
class TestSecdedProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("width", [16, 64])
    def test_single_error_corrected_to_original(self, seed, width):
        code = HammingSecded(width)
        data, result, truth = roundtrip(code, seed, 1)
        assert result.status == DecodeStatus.CORRECTED
        assert truth == DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_error_detected_not_miscorrected(self, seed):
        _data, result, truth = roundtrip(SECDED_72_64, seed, 2)
        assert result.status == DecodeStatus.DETECTED_UNCORRECTABLE
        assert truth == DecodeStatus.DETECTED_UNCORRECTABLE

    @pytest.mark.parametrize("seed", SEEDS)
    def test_triple_error_never_silently_clean(self, seed):
        """3 flips may be miscorrected (the §II-C hazard) or detected —
        but SECDED must never report them CLEAN."""
        _data, result, _truth = roundtrip(SECDED_72_64, seed, 3)
        assert result.status != DecodeStatus.CLEAN


# ----------------------------------------------------------------------
# Single-symbol-correcting GF(256) code
# ----------------------------------------------------------------------
class TestSymbolProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("burst", [1, 3, 8])
    def test_any_burst_within_one_symbol_corrected(self, seed, burst):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=SYMBOL_72_64.data_bits).astype(np.uint8)
        codeword = SYMBOL_72_64.encode(data)
        symbol = int(rng.integers(0, SYMBOL_72_64.code_bits // 8))
        offsets = rng.choice(8, size=burst, replace=False)
        codeword[symbol * 8 + offsets] ^= 1
        result = SYMBOL_72_64.decode(codeword)
        assert result.status == DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_roundtrip(self, seed):
        data, result, _truth = roundtrip(SYMBOL_72_64, seed, 0)
        assert result.status == DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)

    def test_small_instance_roundtrip(self):
        code = SingleSymbolCorrectingCode(data_symbols=4)
        data, result, _truth = roundtrip(code, 7, 0)
        assert np.array_equal(result.data, data)


# ----------------------------------------------------------------------
# Interleaving layout
# ----------------------------------------------------------------------
class TestInterleaveProperties:
    @pytest.mark.parametrize("degree", [2, 4, 8])
    def test_position_map_is_bijective(self, degree):
        word_bits = 16
        span = 3 * degree * word_bits  # three full interleave groups
        seen = set()
        for bit in range(span):
            word, offset = interleave_position(bit, degree, word_bits)
            assert 0 <= offset < word_bits
            seen.add((word, offset))
        assert len(seen) == span

    @pytest.mark.parametrize("degree", [2, 4])
    def test_adjacent_cluster_spreads_across_words(self, degree):
        cluster = list(range(degree))  # physically adjacent bits
        histogram = interleaved_flips_per_word(cluster, degree, word_bits=16)
        assert histogram == {1: degree}

    def test_degree_one_matches_plain_layout(self):
        flips = [0, 1, 17, 40, 41, 42]
        assert interleaved_flips_per_word(flips, 1, word_bits=16) == \
            flips_per_word(flips, word_bits=16)


# ----------------------------------------------------------------------
# Accounting consistency
# ----------------------------------------------------------------------
class TestAccountingConsistency:
    def test_exact_when_sampling_covers_every_word(self):
        """With word counts <= trials_per_class the Monte-Carlo scaling
        is the identity, so outcome totals follow the codec guarantees
        exactly: 1-flip words corrected, 2-flip words detected."""
        histogram = {1: 5, 2: 3}
        evaluation = evaluate_code_against_histogram(
            SECDED_72_64, histogram, np.random.default_rng(11),
            trials_per_class=16,
        )
        assert evaluation.words_total == 8
        assert evaluation.outcomes[DecodeStatus.CORRECTED] == 5
        assert evaluation.outcomes[DecodeStatus.DETECTED_UNCORRECTABLE] == 3
        assert evaluation.uncorrected_words == 3
        assert evaluation.silent_corruptions == 0

    def test_scaled_totals_preserve_word_count(self):
        histogram = {1: 1000}
        evaluation = evaluate_code_against_histogram(
            SECDED_72_64, histogram, np.random.default_rng(3),
            trials_per_class=10,
        )
        assert evaluation.words_total == 1000
        assert evaluation.outcomes[DecodeStatus.CORRECTED] == 1000

    def test_rates_sum_to_one(self):
        evaluation = EccEvaluation()
        evaluation.add(DecodeStatus.CORRECTED, 3)
        evaluation.add(DecodeStatus.MISCORRECTED, 1)
        total = sum(evaluation.rate(status) for status in DecodeStatus)
        assert total == pytest.approx(1.0)
