"""Tests for the flash Vth model and bit mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashParams, MLC_1XNM, MLC_2XNM
from repro.flash.vth import (
    bits_of_states,
    classify,
    optimal_read_refs,
    read_lsb,
    read_lsb_partial,
    read_msb,
    state_from_bits,
)


class TestBitMapping:
    def test_gray_code_adjacent_states_differ_by_one_bit(self):
        lsb, msb = bits_of_states(np.arange(4))
        for s in range(3):
            diff = (lsb[s] != lsb[s + 1]) + (msb[s] != msb[s + 1])
            assert diff == 1

    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=1))
    @settings(max_examples=8)
    def test_state_from_bits_roundtrip(self, l, m):
        state = state_from_bits(np.array([l]), np.array([m]))[0]
        lsb, msb = bits_of_states(np.array([state]))
        assert (lsb[0], msb[0]) == (l, m)

    def test_reads_match_mapping_at_state_means(self):
        params = MLC_2XNM
        vth = np.asarray(params.state_means)
        states = classify(vth, params.read_refs)
        assert list(states) == [0, 1, 2, 3]
        lsb, msb = bits_of_states(states)
        assert np.array_equal(read_lsb(vth, params.read_refs), lsb)
        assert np.array_equal(read_msb(vth, params.read_refs), msb)

    def test_partial_read_separates_er_lm(self):
        params = MLC_2XNM
        vth = np.array([params.state_means[0], params.lm_mean])
        partial = read_lsb_partial(vth, params.lm_read_ref)
        assert list(partial) == [1, 0]


class TestClassify:
    def test_boundaries(self):
        refs = (-0.5, 1.6, 2.8)
        vth = np.array([-2.0, -0.5, 1.6, 2.8, 5.0])
        assert list(classify(vth, refs)) == [0, 1, 2, 3, 3]


class TestOptimalReadRefs:
    def test_recovers_errors_after_shift(self):
        params = MLC_2XNM
        rng = np.random.default_rng(0)
        states = rng.integers(0, 4, size=8000)
        vth = np.asarray(params.state_means)[states] + rng.normal(0, 0.15, size=8000)
        vth = vth - 0.35 * (states > 0)  # uniform retention-like downshift
        errors_factory = int(np.count_nonzero(classify(vth, params.read_refs) != states))
        tuned = optimal_read_refs(vth, states, params)
        errors_tuned = int(np.count_nonzero(classify(vth, tuned) != states))
        assert errors_tuned < errors_factory

    def test_refs_stay_ordered(self):
        params = MLC_2XNM
        rng = np.random.default_rng(1)
        states = rng.integers(0, 4, size=2000)
        vth = np.asarray(params.state_means)[states] + rng.normal(0, 0.1, size=2000)
        tuned = optimal_read_refs(vth, states, params)
        assert list(tuned) == sorted(tuned)


class TestParams:
    def test_sigma_widens_with_wear(self):
        assert MLC_2XNM.program_sigma_at(10_000) > MLC_2XNM.program_sigma_at(0)

    def test_retention_factor_grows(self):
        assert MLC_2XNM.retention_factor(20_000) > MLC_2XNM.retention_factor(0)

    def test_1xnm_denser_window(self):
        span_1x = MLC_1XNM.state_means[3] - MLC_1XNM.state_means[0]
        span_2x = MLC_2XNM.state_means[3] - MLC_2XNM.state_means[0]
        assert span_1x < span_2x

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashParams(state_means=(0.0, -1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            FlashParams(read_refs=(1.0, 0.5, 2.0))
