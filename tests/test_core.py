"""Tests for the core layer: scenarios and the MemorySystem facade."""

import pytest

from repro import MITIGATIONS, MemorySystem, full_scale_scenario, scaled_scenario


class TestScenarios:
    def test_full_scale_budget(self):
        scenario = full_scale_scenario("B", 2013.0)
        assert 1_200_000 < scenario.attack_budget < 1_400_000

    def test_scaled_preserves_ratio(self):
        full = full_scale_scenario("B", 2013.0)
        scaled = scaled_scenario(scale=20.0)
        ratio_full = full.attack_budget / full.profile.hc_first_min
        ratio_scaled = scaled.attack_budget / scaled.profile.hc_first_min
        assert ratio_scaled == pytest.approx(ratio_full, rel=0.01)

    def test_scaled_is_cheaper(self):
        assert scaled_scenario(20.0).attack_budget < full_scale_scenario().attack_budget / 10

    def test_make_module(self):
        module = scaled_scenario().make_module(serial="t", seed=1)
        assert module.serial == "t"

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            scaled_scenario(scale=0)


class TestMemorySystem:
    def test_registry_names(self):
        assert set(MITIGATIONS) == {"none", "para", "cra", "anvil", "trr"}

    def test_unknown_mitigation(self):
        module = scaled_scenario().make_module()
        with pytest.raises(KeyError):
            MemorySystem(module, mitigation="bogus")

    def test_bare_system_flips(self):
        system = MemorySystem.build(scaled=True, seed=2)
        budget = scaled_scenario().attack_budget
        flips = system.hammer_double_sided(victim=1000, iterations=budget // 2)
        assert flips > 0
        report = system.report()
        assert report.flips == flips
        assert report.activations == budget // 2 * 2
        assert report.time_ns > 0
        assert report.dynamic_energy_nj > 0

    def test_para_system_protects(self):
        budget = scaled_scenario().attack_budget
        system = MemorySystem.build(
            scaled=True, seed=2, mitigation="para", mitigation_kwargs={"p": 0.05}
        )
        flips = system.hammer_double_sided(victim=1000, iterations=budget // 2)
        assert flips == 0
        assert system.report().mitigation_refreshes > 0

    def test_single_sided_driver(self):
        system = MemorySystem.build(scaled=True, seed=3)
        flips = system.hammer_single_sided(aggressor=500, iterations=40_000)
        assert flips >= 0
        assert system.report().activations == 40_000

    def test_run_trace(self):
        system = MemorySystem.build(scaled=True, seed=4)
        system.run_trace([(0, 1, False), (0, 2, True)])
        assert system.report().activations >= 2
