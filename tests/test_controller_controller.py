"""Tests for the mitigation-aware MemoryController."""

import pytest

from repro.controller import MemoryController, NullMitigation
from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333

GEO = DramGeometry(banks=2, rows=256, row_bytes=256)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800
)


def make_controller(**kwargs):
    module = DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=4,
                        remap_scheme=kwargs.pop("remap_scheme", "identity"))
    return MemoryController(module, **kwargs)


class TestControllerBasics:
    def test_time_advances_with_activations(self):
        ctrl = make_controller()
        ctrl.activate(0, 10)
        ctrl.activate(0, 12)
        assert ctrl.time_ns >= 2 * ctrl.module.timing.tRC

    def test_activations_counted(self):
        ctrl = make_controller()
        for _ in range(5):
            ctrl.activate(0, 10)
        assert ctrl.stats.activations == 5
        assert ctrl.module.total_activations() == 5

    def test_hammering_produces_flips(self):
        ctrl = make_controller()
        ctrl.run_activation_pattern(0, [99, 101], 3_000)
        flips = ctrl.finish()
        assert flips > 0

    def test_auto_refresh_fires(self):
        ctrl = make_controller()
        # Enough activations to pass several tREFI intervals.
        ctrl.run_activation_pattern(0, [10, 200], 200)
        assert ctrl.refresh_engine.stats.ref_commands > 0

    def test_refresh_neighbors_spd(self):
        ctrl = make_controller(remap_scheme="block-swap", spd_adjacency=True)
        ctrl.module.bank(0).bulk_activate(12, 10_000)  # physical aggressor
        # Logical row whose physical is 12: to_logical(12)=8.
        count = ctrl.refresh_neighbors(0, 8)
        assert count == 2
        # SPD-aware: refreshed the true physical neighbors (11, 13).
        assert ctrl.stats.mitigation_refreshes == 2

    def test_refresh_neighbors_costs_time_and_energy(self):
        ctrl = make_controller()
        t0, e0 = ctrl.time_ns, ctrl.energy.counts["refresh_row"]
        ctrl.refresh_neighbors(0, 100)
        assert ctrl.time_ns > t0
        assert ctrl.energy.counts["refresh_row"] == e0 + 2

    def test_read_write_roundtrip(self):
        ctrl = make_controller()
        bits = ctrl.read(0, 42)
        ctrl.write(0, 42, bits)
        again = ctrl.read(0, 42)
        assert (bits == again).all()

    def test_null_mitigation_default(self):
        ctrl = make_controller()
        assert isinstance(ctrl.mitigation, NullMitigation)
        assert ctrl.mitigation.extra_refresh_ops() == 0

    def test_trace_replay(self):
        ctrl = make_controller()
        ctrl.run_trace([(0, 5, False), (1, 9, True), (0, 5, False)])
        assert ctrl.stats.activations >= 3

    def test_higher_multiplier_reduces_flips(self):
        slow = make_controller(refresh_multiplier=1.0)
        slow.run_activation_pattern(0, [99, 101], 2_000)
        base_flips = slow.finish()
        fast = make_controller(refresh_multiplier=16.0)
        fast.run_activation_pattern(0, [99, 101], 2_000)
        fast_flips = fast.finish()
        assert fast_flips <= base_flips
