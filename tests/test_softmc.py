"""Tests for the SoftMC-style test-program substrate."""

import numpy as np
import pytest

from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333
from repro.softmc import (
    Opcode,
    SoftMcInterpreter,
    DramProgram,
    hammer_program,
    retention_program,
)

GEO = DramGeometry(banks=2, rows=256, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800)


def make_interpreter(seed=20, profile=PROFILE):
    module = DramModule(geometry=GEO, timing=DDR3_1333, profile=profile, seed=seed)
    return SoftMcInterpreter(module)


class TestProgramBuilder:
    def test_fluent_chain(self):
        program = DramProgram().act(0, 5).pre(0).rd(0, 5)
        assert len(program) == 3
        assert program.instructions[0].opcode == Opcode.ACT

    def test_loop_balance_validated(self):
        program = DramProgram().loop(3).act(0, 5)
        with pytest.raises(ValueError):
            program.validate()

    def test_end_without_loop(self):
        with pytest.raises(ValueError):
            DramProgram().end_loop()

    def test_nested_loops_validate(self):
        program = DramProgram().loop(2).loop(3).act(0, 1).pre(0).end_loop().end_loop()
        program.validate()

    def test_wait_positive(self):
        with pytest.raises(ValueError):
            DramProgram().wait(0)


class TestInterpreter:
    def test_write_read_roundtrip(self):
        interp = make_interpreter()
        program = DramProgram().wr(0, 10, "colstripe").rd(0, 10)
        result = interp.run(program)
        assert len(result.reads) == 1
        assert result.mismatches == {}

    def test_loop_multiplies_commands(self):
        interp = make_interpreter()
        program = DramProgram().loop(5).act(0, 3).pre(0).end_loop()
        result = interp.run(program)
        assert result.commands["act"] == 5
        assert result.commands["pre"] == 5

    def test_nested_loop_counts(self):
        interp = make_interpreter()
        program = DramProgram().loop(3).loop(4).act(0, 3).pre(0).end_loop().end_loop()
        result = interp.run(program)
        assert result.commands["act"] == 12

    def test_timing_advances(self):
        interp = make_interpreter()
        result = interp.run(DramProgram().act(0, 3).pre(0))
        timing = interp.module.timing
        assert result.cycles_ns == pytest.approx(timing.tRAS + timing.tRP)

    def test_wait_advances_time_only(self):
        interp = make_interpreter()
        result = interp.run(DramProgram().wait(1e6))
        assert result.cycles_ns == 1e6
        assert interp.module.total_activations() == 0

    def test_ref_refreshes_rows(self):
        interp = make_interpreter()
        interp.module.bank(0).bulk_activate(50, 500)  # below thresholds
        result = interp.run(DramProgram().loop(300).ref().end_loop())
        assert result.commands["ref"] == 300
        # A full refresh pass reset the victims' accumulated pressure.
        assert interp.module.bank(0).pressure(51) == 0.0


class TestCannedPrograms:
    def test_hammer_program_finds_flips(self):
        interp = make_interpreter()
        program = hammer_program(
            bank=0, aggressors=[99, 101], iterations=3_000, victims_to_init=[100]
        )
        result = interp.run(program)
        assert (0, 100) in result.mismatches
        assert result.total_flips > 0

    def test_hammer_on_invulnerable_module_clean(self):
        from repro.dram import INVULNERABLE

        interp = make_interpreter(profile=INVULNERABLE)
        program = hammer_program(0, [99, 101], 3_000, victims_to_init=[100])
        result = interp.run(program)
        assert result.total_flips == 0

    def test_hammer_interrupted_by_ref_is_weaker(self):
        # Splitting the hammering into REF-separated halves resets the
        # victim and prevents flips that the uninterrupted run causes.
        interp_a = make_interpreter(seed=33)
        uninterrupted = hammer_program(0, [99, 101], 1_000, victims_to_init=[100])
        flips_a = interp_a.run(uninterrupted).total_flips

        interp_b = make_interpreter(seed=33)
        program = DramProgram().wr(0, 100, "rowstripe")
        program.loop(500).act(0, 99).pre(0).act(0, 101).pre(0).end_loop()
        # A full pass of REF commands (covers all rows), then continue.
        refs_needed = GEO.rows  # rows_per_ref >= 1 per REF
        program.loop(refs_needed).ref().end_loop()
        program.loop(500).act(0, 99).pre(0).act(0, 101).pre(0).end_loop()
        program.rd(0, 100)
        flips_b = interp_b.run(program).total_flips
        assert flips_b <= flips_a

    def test_retention_program_structure(self):
        program = retention_program(0, [5, 6], wait_ns=1e9)
        opcodes = [i.opcode for i in program.instructions]
        assert opcodes.count(Opcode.WR) == 2
        assert opcodes.count(Opcode.WAIT) == 1
        assert opcodes.count(Opcode.RD) == 2


class TestRetentionExecution:
    def _interpreter(self, seed=40):
        from repro.dram import INVULNERABLE, DramModule
        from repro.retention.params import RetentionParams

        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=INVULNERABLE, seed=seed)
        params = RetentionParams(tail_fraction=2e-3)
        return SoftMcInterpreter(module, retention_params=params)

    def test_long_wait_reveals_retention_failures(self):
        interp = self._interpreter()
        # 2 seconds without refresh: tail cells (48 ms - 2 s) fail.
        program = retention_program(0, list(range(10, 26)), wait_ns=2e9)
        result = interp.run(program)
        assert result.total_flips > 0

    def test_short_wait_clean(self):
        interp = self._interpreter()
        # 1 ms without refresh: far below every cell's retention.
        program = retention_program(0, list(range(10, 26)), wait_ns=1e6)
        result = interp.run(program)
        assert result.total_flips == 0

    def test_failures_deterministic_across_runs(self):
        a = self._interpreter().run(retention_program(0, list(range(10, 26)), wait_ns=2e9))
        b = self._interpreter().run(retention_program(0, list(range(10, 26)), wait_ns=2e9))
        assert a.mismatches == b.mismatches

    def test_longer_wait_strictly_more_failures(self):
        short = self._interpreter().run(retention_program(0, list(range(10, 42)), wait_ns=1e8))
        long = self._interpreter().run(retention_program(0, list(range(10, 42)), wait_ns=6e9))
        assert long.total_flips >= short.total_flips
        assert long.total_flips > 0

    def test_without_retention_params_wait_is_inert(self):
        from repro.dram import INVULNERABLE, DramModule

        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=INVULNERABLE, seed=40)
        interp = SoftMcInterpreter(module)
        result = interp.run(retention_program(0, list(range(10, 26)), wait_ns=5e9))
        assert result.total_flips == 0
