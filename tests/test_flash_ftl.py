"""Tests for the page-mapped FTL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.ftl import PageMappedFtl
from repro.utils.rng import derive_rng


def fill_and_churn(ftl, writes, seed=0, zipf=None):
    rng = derive_rng(seed, "churn")
    for _ in range(writes):
        if zipf is None:
            lpn = int(rng.integers(0, ftl.logical_pages))
        else:
            lpn = int((rng.zipf(zipf) - 1) % ftl.logical_pages)
        ftl.write(lpn)


class TestFtlBasics:
    def test_write_then_lookup(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16)
        ftl.write(5)
        assert ftl.lookup(5) is not None
        assert ftl.lookup(6) is None

    def test_overwrite_moves_page(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16)
        ftl.write(5)
        first = ftl.lookup(5)
        ftl.write(5)
        assert ftl.lookup(5) != first
        assert ftl.valid_page_count() == 1

    def test_lpn_bounds(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16)
        with pytest.raises(IndexError):
            ftl.write(ftl.logical_pages)
        with pytest.raises(IndexError):
            ftl.lookup(-1)

    def test_overprovision_hides_capacity(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.25)
        assert ftl.logical_pages == int(8 * 16 * 0.75)

    def test_gc_policy_validated(self):
        with pytest.raises(ValueError):
            PageMappedFtl(gc_policy="random")


class TestGarbageCollection:
    def test_sustained_churn_triggers_gc(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.25)
        fill_and_churn(ftl, 2_000, seed=1)
        assert ftl.stats.erases > 0
        assert ftl.stats.gc_relocations > 0

    def test_write_amplification_above_one_under_churn(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.125)
        fill_and_churn(ftl, 3_000, seed=2)
        assert ftl.stats.write_amplification > 1.0

    def test_more_overprovisioning_less_amplification(self):
        tight = PageMappedFtl(n_blocks=16, pages_per_block=16, op_fraction=0.06)
        roomy = PageMappedFtl(n_blocks=16, pages_per_block=16, op_fraction=0.4)
        fill_and_churn(tight, 6_000, seed=3)
        fill_and_churn(roomy, 6_000, seed=3)
        assert roomy.stats.write_amplification < tight.stats.write_amplification

    def test_mapping_stays_consistent_under_churn(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.25)
        fill_and_churn(ftl, 2_500, seed=4)
        # Every mapped lpn's physical slot must claim it back.
        for lpn in range(ftl.logical_pages):
            loc = ftl.lookup(lpn)
            if loc is not None:
                block, page = loc
                assert ftl._owner[block][page] == lpn
                assert ftl._valid[block][page]

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=100, max_value=1500))
    @settings(max_examples=15, deadline=None)
    def test_no_two_lpns_share_a_slot(self, seed, writes):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.25)
        fill_and_churn(ftl, writes, seed=seed)
        locations = [ftl.lookup(l) for l in range(ftl.logical_pages)]
        taken = [loc for loc in locations if loc is not None]
        assert len(taken) == len(set(taken))

    def test_wear_aware_policy_more_even(self):
        greedy = PageMappedFtl(n_blocks=16, pages_per_block=16, op_fraction=0.125, gc_policy="greedy")
        aware = PageMappedFtl(n_blocks=16, pages_per_block=16, op_fraction=0.125, gc_policy="wear-aware")
        # Skewed traffic concentrates invalidations.
        fill_and_churn(greedy, 12_000, seed=5, zipf=1.3)
        fill_and_churn(aware, 12_000, seed=5, zipf=1.3)
        assert aware.wear_evenness() <= greedy.wear_evenness() * 1.2


class TestRefreshPass:
    def test_refresh_relocates_all_valid(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.25)
        for lpn in range(20):
            ftl.write(lpn)
        before = {lpn: ftl.lookup(lpn) for lpn in range(20)}
        moved = ftl.refresh_all_valid()
        assert moved == 20
        for lpn in range(20):
            assert ftl.lookup(lpn) is not None
            assert ftl.lookup(lpn) != before[lpn]

    def test_refresh_costs_flash_writes(self):
        ftl = PageMappedFtl(n_blocks=8, pages_per_block=16, op_fraction=0.25)
        for lpn in range(20):
            ftl.write(lpn)
        writes_before = ftl.stats.flash_writes
        ftl.refresh_all_valid()
        assert ftl.stats.flash_writes == writes_before + 20

    def test_fcr_refresh_amplification(self):
        # The FCR trade-off made concrete: frequent refresh passes add
        # flash writes that count against the endurance budget.
        ftl = PageMappedFtl(n_blocks=16, pages_per_block=16, op_fraction=0.25)
        for lpn in range(100):
            ftl.write(lpn)
        host = ftl.stats.host_writes
        for _ in range(5):
            ftl.refresh_all_valid()
        assert ftl.stats.flash_writes >= host + 5 * 100
