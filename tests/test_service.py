"""The experiment service: submission model, journal, HTTP daemon,
client, concurrent fair scheduling, and the acceptance chaos scenarios
(SIGKILL-and-resume, SIGTERM drain under load)."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.chaos import harness
from repro.service import (
    ExperimentService,
    JobJournal,
    JobSpec,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.client import retry_delay_s
from repro.service.daemon import read_endpoint
from repro.telemetry import RunLedger

PROBE = "sidedness_ablation"


# ----------------------------------------------------------------------
# JobSpec: validation + idempotent IDs
# ----------------------------------------------------------------------

class TestJobSpec:
    def test_sid_is_stable_and_process_independent(self):
        a = JobSpec.from_payload({"name": PROBE, "seed": 7})
        b = JobSpec.from_payload({"name": PROBE, "seed": 7})
        assert a.sid == b.sid
        assert len(a.sid) == 12

    def test_sid_distinguishes_seed_and_params(self):
        base = JobSpec.from_payload({"name": PROBE, "seed": 7})
        other_seed = JobSpec.from_payload({"name": PROBE, "seed": 8})
        assert base.sid != other_seed.sid

    def test_sweep_sid_never_collides_with_member_job(self):
        """A sweep folds its shape into the key, so the sweep's sid and
        any member job's sid are distinct even for seeds=1."""
        sweep = JobSpec.from_payload({"name": PROBE, "seeds": 1,
                                      "base_seed": 0})
        from repro.experiments.runner import derive_seed

        member = JobSpec.from_payload({"name": PROBE,
                                       "seed": derive_seed(0, 0)})
        assert sweep.sid != member.sid

    def test_kind_inferred_from_seeds(self):
        assert JobSpec.from_payload({"name": PROBE}).kind == "experiment"
        assert JobSpec.from_payload({"name": PROBE,
                                     "seeds": 4}).kind == "sweep"

    def test_expand_matches_cli_sweep_derivation(self):
        from repro.experiments.runner import derive_seed

        spec = JobSpec.from_payload({"name": PROBE, "seeds": 4,
                                     "base_seed": 3})
        assert [j.seed for j in spec.expand()] == [
            derive_seed(3, i) for i in range(4)]
        assert spec.job_count == 4

    @pytest.mark.parametrize("payload, fragment", [
        ("not a dict", "JSON object"),
        ({"name": "no_such_experiment"}, "unknown experiment"),
        ({}, "missing experiment 'name'"),
        ({"name": PROBE, "bogus_field": 1}, "unknown field"),
        ({"name": PROBE, "params": [1]}, "'params' must be an object"),
        ({"name": PROBE, "kind": "cron"}, "unknown job kind"),
        ({"name": PROBE, "kind": "sweep"}, "needs 'seeds'"),
        ({"name": "para_reliability", "seeds": 4}, "takes no seed"),
        ({"name": PROBE, "timeout_s": 0}, "must be positive"),
        ({"name": PROBE, "retries": -1}, "must be >= 0"),
        ({"name": PROBE, "params": {"not_a_param": 1}}, "bad params"),
    ])
    def test_bad_payloads_rejected_with_client_message(self, payload,
                                                       fragment):
        with pytest.raises(ValueError, match=fragment):
            JobSpec.from_payload(payload)

    def test_round_trips_through_json(self):
        spec = JobSpec.from_payload({"name": PROBE, "seeds": 4,
                                     "base_seed": 9, "timeout_s": 2.5,
                                     "retries": 1})
        again = JobSpec.from_payload(spec.to_json_dict())
        assert again == spec
        assert again.sid == spec.sid


# ----------------------------------------------------------------------
# JobJournal: replay semantics
# ----------------------------------------------------------------------

class TestJobJournal:
    def test_lifecycle_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = JobSpec.from_payload({"name": PROBE, "seeds": 2})
        assert journal.submit(spec)
        assert journal.start(spec.sid, "r1")
        assert journal.done(spec.sid, "ok", jobs=2, errors=0)
        state = journal.replay()
        assert list(state.submits) == [spec.sid]
        assert state.starts[spec.sid]["run_id"] == "r1"
        assert state.done[spec.sid]["outcome"] == "ok"
        assert state.pending() == []
        assert state.corrupt_lines == 0

    def test_submission_without_done_is_pending(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        first = JobSpec.from_payload({"name": PROBE, "seed": 1})
        second = JobSpec.from_payload({"name": PROBE, "seed": 2})
        journal.submit(first)
        journal.submit(second)
        journal.done(first.sid, "ok")
        assert journal.replay().pending() == [second.sid]

    def test_cancel_is_terminal_for_replay(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = JobSpec.from_payload({"name": PROBE, "seed": 3})
        journal.submit(spec)
        journal.cancel(spec.sid)
        state = journal.replay()
        assert spec.sid in state.cancelled
        assert state.pending() == []

    def test_duplicate_submits_collapse_first_wins(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = JobSpec.from_payload({"name": PROBE, "seed": 4})
        journal.submit(spec)
        journal.submit(spec)
        state = journal.replay()
        assert state.order == [spec.sid]

    def test_torn_tail_is_skipped_not_raised(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        spec = JobSpec.from_payload({"name": PROBE, "seed": 5})
        journal.submit(spec)
        blob = path.read_bytes()
        # Tear the (only) record in half, exactly like a mid-write kill.
        path.write_bytes(blob[: len(blob) // 2])
        state = journal.replay()
        assert state.corrupt_lines == 1
        assert state.order == []

    def test_append_after_torn_tail_is_isolated(self, tmp_path):
        """A post-crash append must not merge into the torn line: the
        shared appender prefixes a newline when the tail is torn."""
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        first = JobSpec.from_payload({"name": PROBE, "seed": 6})
        second = JobSpec.from_payload({"name": PROBE, "seed": 7})
        journal.submit(first)
        path.write_bytes(path.read_bytes()[:-10])  # torn, no newline
        journal.submit(second)
        state = journal.replay()
        assert state.order == [second.sid]
        assert state.corrupt_lines == 1


# ----------------------------------------------------------------------
# The daemon over real HTTP (in-process instance, ephemeral port)
# ----------------------------------------------------------------------

def _raw_post(base_url, payload, timeout_s=5.0):
    request = urllib.request.Request(
        f"{base_url}/jobs", data=json.dumps(payload).encode("utf-8"),
        method="POST", headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return (response.status, response.headers.get("Retry-After"),
                    json.loads(response.read()))
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Retry-After"), json.loads(exc.read())


@pytest.fixture
def parked_service(tmp_path):
    """A service whose worker never starts: queue state is fully
    deterministic (nothing drains while a test inspects it)."""
    service = ExperimentService(tmp_path / "svc", port=0, workers=1,
                                max_queue=1, start_worker=False).start()
    yield service
    service.stop()


@pytest.fixture
def live_service(tmp_path):
    service = ExperimentService(tmp_path / "svc", port=0, workers=1).start()
    yield service
    service.stop()


class TestServiceHTTP:
    def test_healthz_live_and_endpoint_file(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        health = client.health()
        assert health["status"] == "live"
        assert health["service_id"] == parked_service.service_id
        record = read_endpoint(parked_service.state_dir)
        assert record["port"] == parked_service.port
        assert record["service_id"] == parked_service.service_id

    def test_submit_is_journaled_before_the_response(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        body = client.submit({"name": PROBE, "seed": 1})
        assert body["state"] == "queued"
        state = JobJournal(parked_service.state_dir / "jobs.jsonl").replay()
        assert body["sid"] in state.submits

    def test_invalid_submission_is_400(self, parked_service):
        status, _retry, body = _raw_post(parked_service.url,
                                         {"name": "no_such_experiment"})
        assert status == 400
        assert "unknown experiment" in body["error"]
        with pytest.raises(ServiceError) as info:
            ServiceClient(parked_service.url, retries=0).submit(
                {"name": PROBE, "params": {"junk": 1}})
        assert info.value.status == 400

    def test_duplicate_submission_maps_onto_existing_job(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        first = client.submit({"name": PROBE, "seed": 2})
        again = client.submit({"name": PROBE, "seed": 2})
        assert again["duplicate"] is True
        assert again["sid"] == first["sid"]
        assert parked_service.metrics.value("service_duplicates_total") == 1

    def test_queue_overflow_sheds_with_429_and_retry_after(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        client.submit({"name": PROBE, "seed": 3})  # fills max_queue=1
        status, retry_after, body = _raw_post(parked_service.url,
                                              {"name": PROBE, "seed": 4})
        assert status == 429
        assert float(retry_after) >= 1
        assert body["error"] == "queue full"
        assert parked_service.metrics.value(
            "service_rejections_total", reason="overflow") == 1

    def test_draining_rejects_with_503_and_retry_after(self, parked_service):
        parked_service.initiate_drain("test")
        assert ServiceClient(parked_service.url,
                             retries=0).health()["status"] == "draining"
        status, retry_after, _body = _raw_post(parked_service.url,
                                               {"name": PROBE, "seed": 5})
        assert status == 503
        assert float(retry_after) >= 1

    def test_cancel_queued_job(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        sid = client.submit({"name": PROBE, "seed": 6})["sid"]
        cancelled = client.cancel(sid)
        assert cancelled["state"] == "cancelled"
        assert client.job(sid)["state"] == "cancelled"
        # Terminal: a second cancel is a conflict.
        with pytest.raises(ServiceError) as info:
            client.cancel(sid)
        assert info.value.status == 409
        # And the journal agrees, so a restart will not resurrect it.
        state = JobJournal(parked_service.state_dir / "jobs.jsonl").replay()
        assert sid in state.cancelled

    def test_unknown_routes_and_jobs_are_404(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        for method, path in (("GET", "/jobs/ffffffffffff"),
                             ("GET", "/nope"), ("DELETE", "/jobs/feedface")):
            with pytest.raises(ServiceError) as info:
                client.request(method, path)
            assert info.value.status == 404

    def test_metrics_exposition_has_service_families(self, parked_service):
        ServiceClient(parked_service.url, retries=0).submit(
            {"name": PROBE, "seed": 7})
        text = ServiceClient(parked_service.url, retries=0).metrics_text()
        assert "service_admissions_total" in text
        assert "service_queue_depth 1" in text
        assert "# HELP service_queue_depth" in text


class TestServiceExecution:
    def test_experiment_job_runs_to_done_with_result(self, live_service):
        client = ServiceClient(live_service.url, retries=1)
        sid = client.submit({"name": PROBE, "seed": 0})["sid"]
        record = client.wait(sid, timeout_s=60.0)
        assert record["state"] == "done"
        assert record["result"]["name"] == PROBE
        assert record["summary"]["errors"] == 0

    def test_sweep_runs_through_checkpoint_and_ledger(self, live_service):
        client = ServiceClient(live_service.url, retries=1)
        sid = client.submit({"name": PROBE, "seeds": 3})["sid"]
        record = client.wait(sid, timeout_s=60.0)
        assert record["state"] == "done"
        assert record["summary"]["jobs"] == 3
        checkpoint = live_service.state_dir / "checkpoints" / f"{sid}.jsonl"
        assert len(checkpoint.read_text().splitlines()) == 3
        ledger = RunLedger(live_service.state_dir / "ledger.jsonl")
        records = ledger.scan()
        assert len(records) == 3
        assert {r["command"] for r in records} == {"service"}
        assert len({r["job_id"] for r in records}) == 3

    def test_restart_preserves_done_state_without_rerun(self, tmp_path):
        state_dir = tmp_path / "svc"
        service = ExperimentService(state_dir, port=0, workers=1).start()
        try:
            client = ServiceClient(service.url, retries=1)
            sid = client.submit({"name": PROBE, "seeds": 2})["sid"]
            client.wait(sid, timeout_s=60.0)
        finally:
            service.stop()
        second = ExperimentService(state_dir, port=0, workers=1).start()
        try:
            assert second.jobs[sid].state == "done"
            assert second.metrics.value("service_journal_replays_total") == 1
            assert second.metrics.value("service_jobs_recovered_total") == 0
            # The finished job is not re-enqueued, so the ledger stays
            # at the original record count.
            assert len(RunLedger(state_dir / "ledger.jsonl").scan()) == 2
        finally:
            second.stop()


class TestServiceClient:
    def test_unreachable_daemon_raises_after_bounded_retries(self):
        client = ServiceClient("http://127.0.0.1:9", retries=1,
                               backoff_s=0.01)
        with pytest.raises(ServiceUnavailable):
            client.health()

    def test_missing_endpoint_file_is_a_clear_error(self, tmp_path):
        with pytest.raises(ServiceUnavailable, match="service.json"):
            ServiceClient.from_state_dir(tmp_path / "nowhere")

    def test_shed_submission_retries_until_exhausted(self, parked_service):
        ServiceClient(parked_service.url, retries=0).submit(
            {"name": PROBE, "seed": 8})
        client = ServiceClient(parked_service.url, retries=1, backoff_s=0.01)
        with pytest.raises(ServiceError) as info:
            client.submit({"name": PROBE, "seed": 9})
        assert info.value.status == 429
        # Both attempts were shed and counted.
        assert parked_service.metrics.value(
            "service_rejections_total", reason="overflow") == 2

    def test_4xx_other_than_shed_never_retries(self, parked_service):
        client = ServiceClient(parked_service.url, retries=3, backoff_s=0.01)
        with pytest.raises(ServiceError):
            client.submit({"name": "no_such_experiment"})
        assert parked_service.metrics.value(
            "service_rejections_total", reason="invalid") == 1


# ----------------------------------------------------------------------
# Concurrent fair scheduling + fault isolation
# ----------------------------------------------------------------------

class TestConcurrentScheduling:
    def test_small_job_not_starved_by_big_sweep(self, tmp_path):
        """Round-robin by chunk: a 1-job submission co-scheduled with a
        12-job sweep finishes first even though it was submitted
        second — the sweep cannot monopolize the service."""
        service = ExperimentService(tmp_path / "svc", port=0, workers=1,
                                    max_concurrent=2).start()
        try:
            client = ServiceClient(service.url, retries=1)
            sweep_sid = client.submit({"name": PROBE, "seeds": 12})["sid"]
            one_sid = client.submit({"name": PROBE, "seed": 9991})["sid"]
            one = client.wait(one_sid, timeout_s=60.0)
            sweep = client.wait(sweep_sid, timeout_s=120.0)
            assert one["state"] == "done"
            assert sweep["state"] == "done"
            assert one["finished_ts"] < sweep["finished_ts"]
        finally:
            service.stop()

    def test_jobs_expose_resource_accounting(self, tmp_path):
        service = ExperimentService(tmp_path / "svc", port=0,
                                    workers=1).start()
        try:
            client = ServiceClient(service.url, retries=1)
            sid = client.submit({"name": PROBE, "seeds": 2})["sid"]
            record = client.wait(sid, timeout_s=60.0)
            assert record["wall_s"] > 0
            assert record["peak_rss_kb"] > 0
            assert record["inflight"] == 0  # settled: nothing in flight
        finally:
            service.stop()

    def test_failed_outcome_replays_as_failed(self, tmp_path):
        """A journaled ``failed`` completion is terminal on restart —
        the poison is not re-enqueued and re-run."""
        state_dir = tmp_path / "svc"
        journal = JobJournal(state_dir / "jobs.jsonl")
        spec = JobSpec.from_payload({"name": PROBE, "seeds": 2})
        journal.submit(spec)
        journal.start(spec.sid, "r1")
        journal.done(spec.sid, "failed", jobs=2, errors=1, timeouts=1,
                     error="poisoned by job x: outcome=timeout")
        service = ExperimentService(state_dir, port=0, workers=1,
                                    start_worker=False).start()
        try:
            rec = service.jobs[spec.sid]
            assert rec.state == "failed"
            assert "timeout" in rec.error
            assert len(service.queue) == 0
        finally:
            service.stop()

    def test_healthz_reports_scheduling_and_lock_state(self, parked_service):
        client = ServiceClient(parked_service.url, retries=0)
        client.submit({"name": PROBE, "seed": 31})
        health = client.health()
        assert health["queue_depth"] == 1
        assert health["in_flight"] == 0
        assert health["max_concurrent"] == 1
        locks = health["locks"]
        assert locks["held"] == 0
        assert locks["takeovers"] == 0
        assert locks["stale_after_s"] > 0

    def test_metrics_expose_scheduler_gauges(self, parked_service):
        text = ServiceClient(parked_service.url, retries=0).metrics_text()
        assert "service_active_submissions" in text
        assert "service_locks_held" in text
        assert "service_max_concurrent 1" in text


# ----------------------------------------------------------------------
# Client: deterministic retry jitter + typed wait deadline
# ----------------------------------------------------------------------

class TestClientRetryJitter:
    def test_schedule_is_deterministic_per_seed(self):
        first = [retry_delay_s(0.25, a, seed=7) for a in range(5)]
        again = [retry_delay_s(0.25, a, seed=7) for a in range(5)]
        assert first == again

    def test_different_seeds_produce_different_schedules(self):
        a = [retry_delay_s(0.25, n, seed=1) for n in range(5)]
        b = [retry_delay_s(0.25, n, seed=2) for n in range(5)]
        assert a != b

    def test_jitter_is_bounded_around_the_exponential(self):
        for attempt in range(6):
            for seed in range(20):
                delay = retry_delay_s(0.25, attempt, seed=seed, cap_s=1e9)
                base = 0.25 * (2 ** attempt)
                assert 0.5 * base <= delay < 1.5 * base

    def test_retry_after_floor_and_cap(self):
        assert retry_delay_s(0.25, 0, retry_after="3", seed=0) >= 3.0
        assert retry_delay_s(0.25, 10, seed=0, cap_s=5.0) == 5.0
        # A malformed header falls back to the jittered exponential.
        assert retry_delay_s(0.25, 0, retry_after="soon", seed=0) < 1.0

    def test_clients_draw_distinct_seeds_by_default(self):
        seeds = {ServiceClient("http://127.0.0.1:9").jitter_seed
                 for _ in range(8)}
        assert len(seeds) > 1


class _StalledServer:
    """Accepts TCP connections and never answers — a hung daemon."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.conns = []
        self.thread = threading.Thread(target=self._accept_loop, daemon=True)
        self.thread.start()

    def _accept_loop(self):
        while True:
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return
            self.conns.append(conn)  # hold open, never respond

    def close(self):
        self.sock.close()
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass


class TestWaitDeadline:
    def test_wait_raises_service_timeout_against_stalled_daemon(self):
        import time as _time

        server = _StalledServer()
        try:
            client = ServiceClient(f"http://127.0.0.1:{server.port}",
                                   timeout_s=0.5, retries=0)
            started = _time.monotonic()
            with pytest.raises(ServiceTimeout):
                client.wait("feedfacecafe", timeout_s=1.0, poll_s=0.05)
            elapsed = _time.monotonic() - started
            # Hard bound: the deadline caps the in-flight request too.
            assert elapsed < 5.0
        finally:
            server.close()

    def test_service_timeout_is_a_timeout_error(self):
        assert issubclass(ServiceTimeout, TimeoutError)
        assert issubclass(ServiceTimeout, ServiceError)

    def test_wait_deadline_parameter_wins_over_timeout(self):
        import time as _time

        server = _StalledServer()
        try:
            client = ServiceClient(f"http://127.0.0.1:{server.port}",
                                   timeout_s=0.5, retries=0)
            deadline = _time.monotonic() + 0.3
            started = _time.monotonic()
            with pytest.raises(ServiceTimeout):
                client.wait("feedfacecafe", timeout_s=60.0, poll_s=0.05,
                            deadline=deadline)
            assert _time.monotonic() - started < 5.0
        finally:
            server.close()


# ----------------------------------------------------------------------
# Acceptance: the deterministic service chaos proof (ISSUE 9)
# ----------------------------------------------------------------------

class TestServiceChaosAcceptance:
    """The two scenarios the issue pins: a 16-job sweep SIGKILLed
    mid-flight resumes on restart with every job accounted exactly
    once, and SIGTERM under load drains to exit 0."""

    def _run(self, name, tmp_path):
        outcome = harness.run_scenario(name, tmp_path)
        failed = [f"{c.label}: {c.observed}"
                  for c in outcome.checks if not c.ok]
        assert outcome.passed, failed
        return outcome

    def test_sigkill_mid_sweep_then_restart_and_resume(self, tmp_path):
        self._run("service_kill", tmp_path)

    def test_sigterm_drain_under_load_exits_zero(self, tmp_path):
        self._run("service_drain", tmp_path)
