"""The telemetry subsystem: metric primitives, snapshot/merge across
process-pool workers, trace ring buffers, and the disabled-by-default
fast path the simulators rely on."""

import json

import pytest

from repro.core.scenarios import full_scale_scenario
from repro.experiments import ExperimentRunner, Job, execute_job
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceRecorder,
)
from repro.telemetry import runtime as telem


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test sees pristine, disabled global telemetry state."""
    from repro.telemetry import SpanProfiler

    prev_registry = telem.swap_registry(MetricsRegistry())
    prev_tracer = telem.swap_tracer(TraceRecorder())
    prev_profiler = telem.swap_profiler(SpanProfiler())
    telem.disable_all()
    yield
    telem.disable_all()
    telem.swap_registry(prev_registry)
    telem.swap_tracer(prev_tracer)
    telem.swap_profiler(prev_profiler)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter_accumulates_and_rejects_negatives(self):
        c = Counter("hits")
        c.inc()
        c.inc(41)
        assert c.value == 42
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_gauge_set_max_keeps_peak(self):
        g = Gauge("depth")
        g.set(10)
        g.set_max(3)
        assert g.value == 10
        g.set_max(17)
        assert g.value == 17
        g.inc(2)
        g.dec(4)
        assert g.value == 15


class TestHistogramBuckets:
    def test_edges_are_inclusive_upper_bounds(self):
        h = Histogram("lat", edges=(10, 20, 40))
        for v in (1, 10):       # both land in the first bucket (v <= 10)
            h.observe(v)
        h.observe(10.5)          # first value past edge 10 -> second bucket
        h.observe(40)            # exactly the last edge -> last finite bucket
        h.observe(41)            # past every edge -> overflow bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(1 + 10 + 10.5 + 40 + 41)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=(1, 1, 2))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=())

    def test_mean_and_quantile(self):
        h = Histogram("lat", edges=(1, 2, 4, 8))
        for v in (1, 1, 2, 8):
            h.observe(v)
        assert h.mean == pytest.approx(3.0)
        assert h.quantile(0.5) == 1      # 2nd of 4 observations is in bucket<=1
        assert h.quantile(1.0) == 8
        assert Histogram("empty").quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_quantile_reports_last_edge(self):
        h = Histogram("lat", edges=(1, 2))
        h.observe(100)
        assert h.quantile(0.99) == 2


# ----------------------------------------------------------------------
# Registry: identity, lookups, rendering
# ----------------------------------------------------------------------
class TestRegistry:
    def test_series_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("acts", bank=0)
        assert reg.counter("acts", bank=0) is a
        assert reg.counter("acts", bank=1) is not a
        # label order must not matter
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_kind_conflicts_are_errors(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("n")
        reg.histogram("h")
        with pytest.raises(TypeError, match="already registered"):
            reg.counter("h")

    def test_histogram_edge_redeclaration_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1, 2, 3))
        assert reg.histogram("h") is reg.get("h")  # None edges = existing ok
        with pytest.raises(ValueError, match="different edges"):
            reg.histogram("h", edges=(1, 2, 4))

    def test_value_and_total(self):
        reg = MetricsRegistry()
        reg.counter("acts", bank=0).inc(5)
        reg.counter("acts", bank=1).inc(7)
        assert reg.value("acts", bank=1) == 7
        assert reg.value("acts", bank=9) == 0
        assert reg.total("acts") == 12

    def test_prometheus_rendering_full_precision(self):
        reg = MetricsRegistry()
        reg.counter("dram_activations_total", bank=0).inc(82_747_392)
        text = reg.render_prometheus()
        assert '# TYPE dram_activations_total counter' in text
        assert 'dram_activations_total{bank="0"} 82747392' in text
        assert "e+07" not in text  # large counters must not round through %g

    def test_prometheus_histogram_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(1, 2))
        for v in (1, 2, 3):
            h.observe(v)
        text = reg.render_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 6" in text
        assert "lat_count 3" in text

    def test_table_rendering(self):
        reg = MetricsRegistry()
        assert reg.render_table() == "(no metrics recorded)"
        reg.counter("c").inc(3)
        reg.histogram("h", edges=(1, 2)).observe(1)
        table = reg.render_table()
        assert "counter" in table and "histogram" in table
        assert "count=1" in table


# ----------------------------------------------------------------------
# Snapshot / merge: the cross-process protocol
# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def _worker_registry(self, acts, peak, lat_values):
        reg = MetricsRegistry()
        reg.counter("acts", bank=0).inc(acts)
        reg.gauge("depth").set(peak)
        h = reg.histogram("lat", edges=(1, 4, 16))
        for v in lat_values:
            h.observe(v)
        return reg

    def test_counters_add_gauges_max_histograms_elementwise(self):
        a = self._worker_registry(10, 5, [1, 2])
        b = self._worker_registry(32, 9, [2, 100])
        merged = MetricsRegistry.from_snapshots([a.snapshot(), None, b.snapshot()])
        assert merged.value("acts", bank=0) == 42
        assert merged.value("depth") == 9  # max, not sum
        h = merged.get("lat")
        assert h.counts == [1, 2, 0, 1]  # 1 -> <=1; 2, 2 -> <=4; 100 -> +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(105)

    def test_snapshot_is_json_safe_and_round_trips(self):
        reg = self._worker_registry(7, 3, [5])
        snapshot = json.loads(json.dumps(reg.snapshot()))
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.snapshot() == reg.snapshot()

    def test_merge_rejects_mismatched_histogram_edges(self):
        a = MetricsRegistry()
        a.histogram("lat", edges=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("lat", edges=(1, 2, 3)).observe(1)
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b.snapshot())


# ----------------------------------------------------------------------
# Trace recorder: bounded memory
# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_ring_buffer_evicts_oldest(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.emit("activate", t=float(i), row=i)
        assert len(rec) == 3
        assert rec.emitted == 5
        assert rec.dropped == 2
        assert [e.fields["row"] for e in rec.events()] == [2, 3, 4]

    def test_spill_to_disk_instead_of_evicting(self, tmp_path):
        spill = tmp_path / "trace.jsonl"
        rec = TraceRecorder(capacity=2, spill_path=spill)
        for i in range(5):
            rec.emit("refresh", row=i)
        assert rec.dropped == 0
        assert rec.spilled == 4  # two full-buffer flushes of 2
        rec.flush()
        lines = [json.loads(line) for line in spill.read_text().splitlines()]
        assert [e["row"] for e in lines] == [0, 1, 2, 3, 4]
        assert all(e["kind"] == "refresh" for e in lines)

    def test_counts_by_kind_and_dump(self, tmp_path):
        rec = TraceRecorder()
        rec.emit("activate", row=1)
        rec.emit("activate", row=2)
        rec.emit("bit_flip", row=1, bit=7)
        assert rec.counts_by_kind() == {"activate": 2, "bit_flip": 1}
        out = tmp_path / "dump.jsonl"
        assert rec.dump_jsonl(out) == 3
        assert len(out.read_text().splitlines()) == 3

    def test_invalid_capacity_and_missing_spill(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
        with pytest.raises(RuntimeError, match="no spill path"):
            TraceRecorder().flush()


# ----------------------------------------------------------------------
# Runtime guards and instrumented simulators
# ----------------------------------------------------------------------
def _hammer_once(pressure=200, victims=2):
    scenario = full_scale_scenario("B", 2013.0)
    module = scenario.make_module(serial="telem-test", seed=0)
    bank = module.bank(0)
    for i in range(victims):
        victim = 64 + 3 * i
        bank.bulk_activate(victim - 1, pressure)
        bank.bulk_activate(victim + 1, pressure)
    bank.refresh_all()
    return bank


class TestRuntime:
    def test_disabled_by_default_records_nothing(self):
        assert not telem.metrics_on and not telem.trace_on
        _hammer_once()
        assert len(telem.get_registry()) == 0
        assert len(telem.get_tracer()) == 0

    def test_enabled_counters_match_bank_stats(self):
        telem.enable_metrics(fresh=True)
        bank = _hammer_once()
        reg = telem.get_registry()
        assert reg.value("dram_activations_total", bank=0) == bank.stats.activations
        assert reg.value("dram_refreshes_total", bank=0) == bank.stats.refreshes
        assert reg.total("dram_bit_flips_total") == bank.stats.flips_materialized

    def test_tracing_captures_typed_events(self):
        telem.enable_tracing(fresh=True)
        bank = _hammer_once()
        kinds = telem.get_tracer().counts_by_kind()
        assert kinds["activate"] == 4  # one per bulk_activate call
        assert kinds["refresh"] == bank.stats.refreshes
        if bank.stats.flips_materialized:
            assert kinds["bit_flip"] >= 1

    def test_swap_registry_round_trip(self):
        original = telem.get_registry()
        mine = MetricsRegistry()
        assert telem.swap_registry(mine) is original
        assert telem.get_registry() is mine
        assert telem.swap_registry(original) is mine

    def test_enable_tracing_rejects_nonpositive_capacity(self):
        # Regression: `capacity or 65536` silently coerced an explicit 0
        # into the default instead of refusing it.
        with pytest.raises(ValueError, match="capacity must be >= 1, got 0"):
            telem.enable_tracing(capacity=0)
        with pytest.raises(ValueError, match="got -5"):
            telem.enable_tracing(capacity=-5)
        assert not telem.trace_on  # a rejected call flips nothing on

    def test_reenabling_with_only_spill_keeps_capacity(self, tmp_path):
        # Regression: rebuilding the recorder for a spill_path-only call
        # used to reset a previously configured capacity to the default.
        telem.enable_tracing(capacity=128)
        spill = tmp_path / "spill.jsonl"
        recorder = telem.enable_tracing(spill_path=spill)
        assert recorder.capacity == 128
        assert recorder.spill_path == spill

    def test_reenabling_with_only_capacity_keeps_spill(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        telem.enable_tracing(capacity=64, spill_path=spill)
        recorder = telem.enable_tracing(capacity=32)
        assert recorder.capacity == 32
        assert recorder.spill_path == spill

    def test_explicit_none_spill_drops_destination(self, tmp_path):
        telem.enable_tracing(capacity=64, spill_path=tmp_path / "spill.jsonl")
        recorder = telem.enable_tracing(spill_path=None)
        assert recorder.spill_path is None
        assert recorder.capacity == 64

    def test_reenabling_with_no_args_keeps_recorder_and_buffer(self):
        recorder = telem.enable_tracing(capacity=16)
        telem.trace("probe")
        telem.disable_tracing()
        assert telem.enable_tracing() is recorder  # no silent rebuild
        assert recorder.emitted == 1

    def test_fresh_rebuilds_with_carried_config(self, tmp_path):
        telem.enable_tracing(capacity=16, spill_path=tmp_path / "s.jsonl")
        telem.trace("probe")
        recorder = telem.enable_tracing(fresh=True)
        assert recorder.emitted == 0
        assert recorder.capacity == 16
        assert recorder.spill_path == tmp_path / "s.jsonl"


# ----------------------------------------------------------------------
# The runner integration: per-job snapshots, parent-side merge
# ----------------------------------------------------------------------
CHEAP = {"victims": 2, "pressure": 400}


class TestRunnerIntegration:
    def test_execute_job_attaches_snapshot_and_restores_state(self):
        sentinel = telem.enable_metrics(fresh=True)
        result = execute_job("rowhammer_basic", params=CHEAP, seed=0,
                             collect_metrics=True)
        # the caller's registry came back untouched, flags preserved
        assert telem.get_registry() is sentinel
        assert telem.metrics_on
        assert result.metrics is not None
        merged = MetricsRegistry.from_snapshot(result.metrics)
        assert merged.total("dram_activations_total") == result.payload["activations"]

    def test_execute_job_without_metrics_attaches_none(self):
        result = execute_job("rowhammer_basic", params=CHEAP, seed=0)
        assert result.metrics is None
        assert not telem.metrics_on

    def test_pool_workers_merge_into_parent(self):
        runner = ExperimentRunner(max_workers=2, collect_metrics=True)
        jobs = [Job("rowhammer_basic", CHEAP, seed) for seed in (0, 1, 2)]
        results = runner.run(jobs)
        assert all(r.metrics is not None for r in results)
        expected_acts = sum(r.payload["activations"] for r in results)
        expected_flips = sum(r.payload["bit_flips"] for r in results)
        assert runner.metrics.total("dram_activations_total") == expected_acts
        assert runner.metrics.total("dram_bit_flips_total") == expected_flips
        assert runner.metrics.value("runner_jobs_total",
                                    cache_hit="false", outcome="ok") == 3

    def test_cached_rerun_still_reports_metrics(self, tmp_path):
        first = ExperimentRunner(cache_dir=tmp_path, collect_metrics=True)
        fresh = first.run_one("rowhammer_basic", params=CHEAP, seed=0)
        second = ExperimentRunner(cache_dir=tmp_path, collect_metrics=True)
        hit = second.run_one("rowhammer_basic", params=CHEAP, seed=0)
        assert hit.cache_hit
        assert hit.metrics == fresh.metrics  # snapshot survived the disk trip
        assert (second.metrics.total("dram_activations_total")
                == fresh.payload["activations"])
        assert second.metrics.value("runner_jobs_total",
                                    cache_hit="true", outcome="ok") == 1

    def test_metrics_off_runner_has_no_registry(self):
        runner = ExperimentRunner()
        result = runner.run_one("rowhammer_basic", params=CHEAP, seed=0)
        assert runner.metrics is None
        assert result.metrics is None
