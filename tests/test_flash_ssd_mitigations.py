"""Tests for SSD-level organization, FCR, RFR, NAC, and two-step."""

import pytest

from repro.flash import (
    FlashBlock,
    MLC_1XNM,
    Ssd,
    error_breakdown,
    exposure_experiment,
    lifetime_pe_cycles,
    program_block_shadow,
)
from repro.flash.mitigations import (
    correct_wordline,
    fcr_sweep,
    lifetime_multiplier,
    read_disturb_recovery,
    recover_wordline,
)
from repro.flash.twostep import lifetime_with_exposure


class TestErrorBreakdown:
    def test_retention_dominates_at_high_wear(self):
        b = error_breakdown(20_000, retention_days=365, reads=20_000, wordlines=8, cells=1024, seed=1)
        assert b.dominant() == "retention"
        assert b.retention > b.wear_and_interference

    def test_breakdown_components_nonnegative(self):
        b = error_breakdown(5_000, retention_days=30, reads=5_000, wordlines=4, cells=1024, seed=2)
        assert b.wear_and_interference >= 0
        assert b.retention >= 0
        assert b.read_disturb >= 0
        assert b.total == b.wear_and_interference + b.retention + b.read_disturb

    def test_retention_grows_with_wear(self):
        low = error_breakdown(2_000, 365, 0, wordlines=4, cells=1024, seed=3)
        high = error_breakdown(25_000, 365, 0, wordlines=4, cells=1024, seed=3)
        assert high.retention > low.retention


class TestSsd:
    def test_age_all_and_counters(self):
        ssd = Ssd(n_blocks=2, wordlines=4, cells=1024, ecc_correctable_per_page=40, seed=4)
        ssd.age_all(pe_cycles=20_000, retention_days=365, seed=4)
        assert ssd.worst_page_errors() > 0
        assert ssd.device_rber() > 0

    def test_uncorrectable_pages_grow_with_age(self):
        young = Ssd(n_blocks=1, wordlines=4, cells=1024, ecc_correctable_per_page=10, seed=5)
        young.age_all(2_000, retention_days=1, seed=5)
        old = Ssd(n_blocks=1, wordlines=4, cells=1024, ecc_correctable_per_page=10, seed=5)
        old.age_all(30_000, retention_days=365, seed=5)
        assert old.uncorrectable_pages() >= young.uncorrectable_pages()

    def test_lifetime_shorter_for_longer_retention(self):
        short = lifetime_pe_cycles(3.0, wordlines=4, cells=1024, seed=6, tolerance=1000)
        long = lifetime_pe_cycles(365.0, wordlines=4, cells=1024, seed=6, tolerance=1000)
        assert short > long


class TestFcr:
    def test_refresh_extends_lifetime(self):
        points = fcr_sweep(
            refresh_intervals_days=(None, 3.0),
            wordlines=4,
            cells=1024,
            seed=7,
            tolerance=1000,
        )
        baseline, refreshed = points
        assert refreshed.raw_lifetime_pe > baseline.raw_lifetime_pe
        assert lifetime_multiplier(points) > 2.0

    def test_refresh_wear_accounting(self):
        points = fcr_sweep(
            refresh_intervals_days=(None, 3.0),
            wordlines=4,
            cells=1024,
            seed=7,
            tolerance=1000,
        )
        assert points[0].refresh_wear_per_year == 0.0
        assert points[1].refresh_wear_per_year == pytest.approx(365 / 3.0)
        # Effective lifetime accounts for refresh-copy wear.
        years = points[1].effective_lifetime_years(host_writes_pe_per_year=1000.0)
        assert years > 0


class TestRfrAndNac:
    def _aged_block(self, seed):
        block = FlashBlock(wordlines=8, cells=1024, seed=seed)
        block.set_pe_cycles(12_000)
        program_block_shadow(block, seed=seed)
        block.age_retention(365)
        return block

    def test_rfr_reduces_errors_substantially(self):
        block = self._aged_block(8)
        outcome = recover_wordline(block, 3, seed=8)
        assert outcome.errors_before > 0
        assert outcome.reduction_fraction > 0.4

    def test_rfr_requires_programmed_wordline(self):
        block = FlashBlock(wordlines=4, cells=256, seed=1)
        with pytest.raises(RuntimeError):
            recover_wordline(block, 0)

    def test_read_disturb_recovery_helps(self):
        block = FlashBlock(wordlines=8, cells=1024, seed=9)
        block.set_pe_cycles(8_000)
        program_block_shadow(block, seed=9)
        block.apply_read_disturb(150_000)
        outcome = read_disturb_recovery(block, 3, seed=9)
        assert outcome.errors_before > 0
        assert outcome.errors_after < outcome.errors_before

    def test_nac_reduces_interference_errors(self):
        block = FlashBlock(wordlines=8, cells=4096, params=MLC_1XNM, seed=10)
        block.set_pe_cycles(15_000)
        program_block_shadow(block, seed=10)
        outcome = correct_wordline(block, 3, seed=10)
        assert outcome.errors_before > 0
        assert outcome.errors_after < outcome.errors_before


class TestTwoStep:
    def test_exposure_corrupts_internal_read(self):
        result = exposure_experiment(pe_cycles=8000, cells=2048, seed=11)
        assert result.exposed_errors > 5 * max(result.mitigated_errors, 1)
        assert result.mitigated_errors <= result.exposed_errors

    def test_mitigation_near_control_floor(self):
        result = exposure_experiment(pe_cycles=8000, cells=2048, seed=12)
        assert result.mitigated_errors <= result.control_errors + 50

    def test_lifetime_gain_positive(self):
        base = lifetime_with_exposure(160, mitigated=False, cells=2048, seed=13, tolerance=2000)
        hardened = lifetime_with_exposure(160, mitigated=True, cells=2048, seed=13, tolerance=2000)
        assert hardened > base
