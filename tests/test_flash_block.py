"""Tests for FlashBlock: programming, error mechanisms, reads."""

import numpy as np
import pytest

from repro.flash import FlashBlock, program_block_shadow
from repro.utils.rng import derive_rng


def make_block(seed=1, wordlines=8, cells=1024, **kwargs):
    return FlashBlock(wordlines=wordlines, cells=cells, seed=seed, **kwargs)


def random_bits(n, seed):
    return derive_rng(seed, "bits").integers(0, 2, size=n).astype(np.uint8)


class TestProgramming:
    def test_fresh_block_reads_back_clean(self):
        block = make_block()
        lsb, msb = random_bits(1024, 1), random_bits(1024, 2)
        block.program_full(3, lsb, msb)
        assert block.page_errors(3, "lsb") == 0
        assert block.page_errors(3, "msb") == 0

    def test_partial_lsb_read(self):
        block = make_block()
        lsb = random_bits(1024, 3)
        block.program_lsb(3, lsb)
        read = block.read_page(3, "lsb", disturb=False)
        assert np.array_equal(read, lsb)

    def test_double_program_rejected(self):
        block = make_block()
        lsb = random_bits(1024, 4)
        block.program_lsb(3, lsb)
        with pytest.raises(RuntimeError):
            block.program_lsb(3, lsb)

    def test_msb_requires_lsb(self):
        block = make_block()
        with pytest.raises(RuntimeError):
            block.program_msb(3, random_bits(1024, 5))

    def test_erase_resets(self):
        block = make_block()
        block.program_full(3, random_bits(1024, 6), random_bits(1024, 7))
        pe = block.pe_cycles
        block.erase()
        assert block.pe_cycles == pe + 1
        assert block.programmed_wordlines() == []

    def test_page_size_validated(self):
        block = make_block()
        with pytest.raises(ValueError):
            block.program_lsb(0, np.zeros(10, dtype=np.uint8))

    def test_shadow_order_programs_everything(self):
        block = make_block()
        program_block_shadow(block, seed=0)
        assert block.programmed_wordlines() == list(range(8))
        assert block.rber() < 0.01


class TestErrorMechanisms:
    def test_wear_increases_program_errors(self):
        fresh = make_block(seed=9)
        program_block_shadow(fresh, seed=9)
        worn = make_block(seed=9)
        worn.set_pe_cycles(30_000)
        program_block_shadow(worn, seed=9)
        assert worn.rber() >= fresh.rber()

    def test_retention_increases_errors_with_time(self):
        block = make_block(seed=11)
        block.set_pe_cycles(15_000)
        program_block_shadow(block, seed=11)
        e0 = block.rber()
        block.age_retention(30)
        e30 = block.rber()
        block.age_retention(335)
        e365 = block.rber()
        assert e0 <= e30 <= e365
        assert e365 > e0

    def test_retention_errors_grow_with_wear(self):
        low = make_block(seed=12)
        low.set_pe_cycles(1_000)
        program_block_shadow(low, seed=12)
        low.age_retention(365)
        high = make_block(seed=12)
        high.set_pe_cycles(25_000)
        program_block_shadow(high, seed=12)
        high.age_retention(365)
        assert high.rber() > low.rber()

    def test_read_disturb_moves_er_up(self):
        block = make_block(seed=13)
        program_block_shadow(block, seed=13)
        er_cells = block.vth < -1.0
        before = block.vth[er_cells].mean()
        block.apply_read_disturb(50_000)
        after = block.vth[er_cells].mean()
        assert after > before

    def test_read_disturb_monotonic_errors(self):
        block = make_block(seed=14)
        block.set_pe_cycles(5_000)
        program_block_shadow(block, seed=14)
        e0 = block.rber()
        block.apply_read_disturb(200_000)
        assert block.rber() >= e0

    def test_program_interference_shifts_neighbor(self):
        block = make_block(seed=15)
        lsb = np.zeros(1024, dtype=np.uint8)  # all LM — big swing later
        block.program_lsb(2, lsb)
        v_before = block.vth[2].copy()
        # Programming wordline 3 disturbs wordline 2.
        block.program_lsb(3, np.zeros(1024, dtype=np.uint8))
        shift = block.vth[2] - v_before
        assert shift.mean() > 0

    def test_reads_disturb_by_default(self):
        block = make_block(seed=16)
        program_block_shadow(block, seed=16)
        assert block.reads_seen == 0
        block.read_page(0, "lsb")
        assert block.reads_seen == 1

    def test_aging_validation(self):
        block = make_block()
        with pytest.raises(ValueError):
            block.age_retention(-1)
        with pytest.raises(ValueError):
            block.apply_read_disturb(-1)

    def test_set_pe_cycles_validation(self):
        block = make_block()
        with pytest.raises(ValueError):
            block.set_pe_cycles(-1)

    def test_leak_variation_exists(self):
        block = make_block()
        assert block.leak_rate.std() > 0.1
        assert block.rd_susceptibility.std() > 0.1
