"""Tests for vintage calibration curves."""

import pytest

from repro.dram import (
    MANUFACTURERS,
    VINTAGE_CURVES,
    hc_first_min_for_date,
    profile_for,
)


class TestVintageCurves:
    def test_pre_2010_invulnerable(self):
        for mfr in MANUFACTURERS:
            for year in (2008.0, 2009.0, 2009.9):
                assert not profile_for(mfr, year).vulnerable

    def test_2013_all_vulnerable(self):
        for mfr in MANUFACTURERS:
            assert profile_for(mfr, 2013.0).vulnerable

    def test_density_peaks_near_2013(self):
        for mfr in MANUFACTURERS:
            curve = VINTAGE_CURVES[mfr]
            d_peak = curve.density(curve.peak_date)
            assert d_peak > curve.density(2011.0)
            assert d_peak >= curve.density(2014.5)

    def test_manufacturer_ordering_at_peak(self):
        # Figure 1: B highest, C lowest.
        a = VINTAGE_CURVES["A"].peak_density
        b = VINTAGE_CURVES["B"].peak_density
        c = VINTAGE_CURVES["C"].peak_density
        assert b > a > c

    def test_density_monotonic_on_ramp(self):
        curve = VINTAGE_CURVES["A"]
        dates = [2010.5, 2011.0, 2011.5, 2012.0, 2012.5, 2013.0]
        densities = [curve.density(d) for d in dates]
        assert densities == sorted(densities)

    def test_2014_decline(self):
        for mfr in MANUFACTURERS:
            curve = VINTAGE_CURVES[mfr]
            assert curve.density(2014.5) < curve.density(curve.peak_date)


class TestHcFirstTrend:
    def test_newer_is_weaker(self):
        assert hc_first_min_for_date(2013.0) < hc_first_min_for_date(2010.0)

    def test_2013_anchor(self):
        assert hc_first_min_for_date(2013.0) == pytest.approx(165_000, rel=0.01)

    def test_most_vulnerable_module_139k(self):
        # The paper's famous number: first flip after ~139K activations.
        assert hc_first_min_for_date(2014.5) == pytest.approx(139_000, rel=0.01)

    def test_profile_median_above_min(self):
        p = profile_for("B", 2013.0)
        assert p.hc_first_median > p.hc_first_min

    def test_unknown_manufacturer(self):
        with pytest.raises(KeyError):
            profile_for("Z", 2013.0)
