"""Negative tests: every invariant class detects its paired corruption.

The sanitizer's value proposition is falsifiable: for each registered
invariant class there is a chaos state-corruption injector
(:mod:`repro.chaos.state`) that applies the smallest mutation breaking
that class's invariant, and an armed ``corrupt:sub=<subsystem>`` entry
must turn a legitimate model operation into an
:class:`~repro.sanitizer.runtime.InvariantViolation` attributed to that
subsystem.  These tests drive *real* model operations (not direct
checker calls), so the instrumented sites themselves are under test.
"""

import numpy as np
import pytest

from repro import chaos
from repro.controller import RefreshEngine
from repro.dram import (
    DisturbanceModel,
    DramBank,
    DramGeometry,
    DramModule,
    VulnerabilityProfile,
)
from repro.dram.timing import DDR3_1333
from repro.ecc import HammingSecded
from repro.ecc.accounting import evaluate_code_against_histogram
from repro.experiments.runner import execute_job_safe
from repro.flash.ftl import PageMappedFtl
from repro.pcm import PcmArray, StartGap
from repro.sanitizer import runtime as sanit

GEO = DramGeometry(banks=2, rows=128, row_bytes=256)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.02,
    hc_first_median=5_000,
    hc_first_min=1_000,
    hc_first_sigma=0.4,
    distance2_weight=0.0,
)


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_CHAOS, raising=False)
    monkeypatch.delenv(chaos.ENV_CHAOS_STATE, raising=False)
    chaos.reset()
    prev = sanit.current_level()
    yield
    chaos.reset()
    sanit.set_level(prev)


def _arm(monkeypatch, subsystem):
    monkeypatch.setenv(chaos.ENV_CHAOS, f"corrupt:sub={subsystem}")
    chaos.reset()


# ----------------------------------------------------------------------
# Drivers: build clean state, return a legitimate model operation that
# passes through an instrumented check site for the subsystem.
# ----------------------------------------------------------------------
def _drive_dram_bank():
    bank = DramBank(GEO, DisturbanceModel(GEO, PROFILE, 3), 0)
    bank.write(10, np.ones(GEO.row_bits, dtype=np.uint8))
    return lambda: bank.activate(10)


def _drive_dram_refresh():
    engine = RefreshEngine(
        DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=2)
    )
    return lambda: engine.tick(engine.interval_ns * 2)


def _drive_ecc_codec():
    code = HammingSecded(16)
    rng = np.random.default_rng(7)
    return lambda: evaluate_code_against_histogram(
        code, {1: 4}, rng, trials_per_class=4
    )


def _drive_flash_ftl():
    ftl = PageMappedFtl(n_blocks=8, pages_per_block=16)
    for i in range(24):
        ftl.write(i % 10)
    return lambda: ftl.write(0)


def _drive_pcm_startgap():
    sg = StartGap(PcmArray(lines=9, seed=3), gap_period=4)
    for i in range(8):
        sg.write(i % sg.n_logical)
    return lambda: sg.write(0)


DRIVERS = {
    "dram.bank": _drive_dram_bank,
    "dram.refresh": _drive_dram_refresh,
    "ecc.codec": _drive_ecc_codec,
    "flash.ftl": _drive_flash_ftl,
    "pcm.startgap": _drive_pcm_startgap,
}


def test_pairing_is_complete():
    """Every invariant class has an injector, and vice versa — and the
    drivers above cover all of them."""
    assert set(chaos.INJECTORS) == set(sanit.registered())
    assert set(DRIVERS) == set(chaos.INJECTORS)


@pytest.mark.parametrize("subsystem", sorted(DRIVERS))
def test_injected_corruption_is_detected_and_attributed(subsystem, monkeypatch):
    sanit.set_level("full")
    op = DRIVERS[subsystem]()  # built before arming: setup stays clean
    _arm(monkeypatch, subsystem)
    with pytest.raises(sanit.InvariantViolation) as info:
        op()
    assert info.value.subsystem == subsystem
    assert str(info.value).startswith(f"[{subsystem}]")
    assert chaos.injected_counts() == {"corrupt": 1}


@pytest.mark.parametrize("subsystem", sorted(DRIVERS))
def test_corruption_fires_once(subsystem, monkeypatch):
    sanit.set_level("full")
    op = DRIVERS[subsystem]()
    _arm(monkeypatch, subsystem)
    with pytest.raises(sanit.InvariantViolation):
        op()
    # The once-by-default claim is consumed: a fresh object sails through.
    DRIVERS[subsystem]()()


def test_ineligible_sites_do_not_burn_the_claim(monkeypatch):
    """Eligibility (``can_apply``) is checked before the fault is
    claimed, so check sites on objects with nothing to corrupt leave
    the armed fault intact."""
    sanit.set_level("full")
    _arm(monkeypatch, "flash.ftl")
    ftl = PageMappedFtl(n_blocks=8, pages_per_block=16)
    sanit.check("flash.ftl", ftl)  # zero mapped pages: ineligible
    ftl.write(0)  # one mapped page at the check site: still ineligible
    ftl.write(1)
    with pytest.raises(sanit.InvariantViolation):
        for i in range(2, 10):
            ftl.write(i)
    assert chaos.injected_counts() == {"corrupt": 1}


def test_corrupt_entry_requires_subsystem(monkeypatch):
    monkeypatch.setenv(chaos.ENV_CHAOS, "corrupt")
    chaos.reset()
    with pytest.raises(ValueError, match="needs a sub="):
        chaos.current_plan()


def test_runner_surfaces_violation_outcome(monkeypatch):
    """End to end through the serial runner path: an injected corruption
    becomes a structured, non-retryable ``invariant`` outcome."""
    monkeypatch.setenv(sanit.ENV_SANITIZE, "full")
    _arm(monkeypatch, "dram.bank")
    result = execute_job_safe("sidedness_ablation", seed=1)
    assert result.outcome == "invariant"
    assert result.error.startswith("InvariantViolation: [dram.bank]")
    assert chaos.injected_counts() == {"corrupt": 1}
