"""Integration tests: every paper experiment produces its headline shape.

These are the claims of DESIGN.md's experiment index, checked end to
end through the public experiment registry (small parameterizations).
"""

import pytest

from repro import experiments as X


class TestF1Campaign:
    @pytest.fixture(scope="class")
    def fig1(self):
        return X.fig1_error_rates(seed=0)

    def test_headline_counts(self, fig1):
        assert fig1["modules_tested"] == 129
        assert fig1["modules_vulnerable"] == 110

    def test_trends(self, fig1):
        assert 2010.0 <= fig1["earliest_vulnerable_date"] < 2011.0
        assert fig1["all_2012_2013_vulnerable"]
        assert fig1["peak_rate"]["B"] > fig1["peak_rate"]["A"] > fig1["peak_rate"]["C"]


class TestC2Isolation:
    def test_both_access_types_violate(self):
        result = X.isolation_violations(reads=1_300_000)
        assert result["read_violated"] and result["write_violated"]
        assert result["read_self_clean"] and result["write_self_clean"]


class TestC3Refresh:
    @pytest.fixture(scope="class")
    def sweep(self):
        return X.refresh_multiplier_sweep()

    def test_monotonic_decrease(self, sweep):
        errors = [row["errors"] for row in sweep["rows"]]
        assert errors == sorted(errors, reverse=True)

    def test_eliminated_by_8x_not_by_4x(self, sweep):
        by_k = {row["multiplier"]: row["errors"] for row in sweep["rows"]}
        assert by_k[8.0] == 0
        assert by_k[4.0] > 0

    def test_seven_x_claim(self, sweep):
        # The paper's "7x" datum: our exact elimination multiplier ~7.05.
        assert 6.5 < sweep["exact_elimination_multiplier"] < 7.5

    def test_costs_rise(self, sweep):
        overheads = [row["bandwidth_overhead"] for row in sweep["rows"]]
        assert overheads == sorted(overheads)


class TestC4Ecc:
    @pytest.fixture(scope="class")
    def study(self):
        return X.ecc_study(victims=150, seed=0)

    def test_multi_flip_words_exist(self, study):
        assert any(flips >= 2 for flips in study["histogram"])
        assert study["multi_flip_fraction"] > 0

    def test_secded_insufficient(self, study):
        secded = next(e for e in study["ladder"] if "secded" in e.code_name)
        assert secded.evaluation.uncorrected_words > 0

    def test_secded_beats_parity(self, study):
        parity = next(e for e in study["ladder"] if e.code_name == "parity")
        secded = next(e for e in study["ladder"] if "secded" in e.code_name)
        assert secded.evaluation.uncorrected_words < parity.evaluation.uncorrected_words


class TestC5Para:
    def test_reliability_rows(self):
        result = X.para_reliability()
        rows = result["rows"]
        # More aggressive p -> lower failure rate, higher overhead.
        rates = [r["log10_failures_per_year"] for r in rows]
        assert rates == sorted(rates, reverse=True)
        for row in rows:
            assert row["log10_margin_vs_disk"] > 0  # all safer than a disk

    def test_controller_check(self):
        result = X.para_controller_check()
        assert result["bare_flips"] > 0
        assert result["para_flips"] == 0
        assert result["para_overhead_time"] < 0.1


class TestC6Cra:
    def test_protection_and_storage(self):
        result = X.cra_tradeoff()
        for run in result["runs"]:
            assert run["flips"] == 0
            assert run["detections"] > 0
        bits = [run["storage_bits"] for run in result["runs"]]
        assert bits == sorted(bits, reverse=True)  # full > big table > small


class TestC7Comparison:
    @pytest.fixture(scope="class")
    def reports(self):
        return X.mitigation_comparison()

    def test_baseline_vulnerable_others_protect(self, reports):
        assert reports[0].residual_flips > 0
        for report in reports[1:]:
            assert report.residual_flips == 0

    def test_refresh_is_most_expensive(self, reports):
        refresh = next(r for r in reports if r.name.startswith("refresh"))
        para = next(r for r in reports if r.name.startswith("para"))
        assert refresh.energy_overhead > para.energy_overhead
        assert refresh.perf_overhead > para.perf_overhead

    def test_para_is_stateless(self, reports):
        para = next(r for r in reports if r.name.startswith("para"))
        assert para.storage_bits == 0
        cra = next(r for r in reports if r.name.startswith("cra"))
        assert cra.storage_bits > 0


class TestC8Retention:
    def test_escapes_and_policies(self):
        result = X.retention_study()
        assert result["profiling_escapes"] > 0  # DPD + VRT defeat testing
        assert result["raidr_savings_fraction"] > 0.3
        assert result["raidr_escape_cells"] > 0
        # AVATAR: escape rate decays after day one.
        daily = result["avatar_daily_escapes"]
        assert sum(daily[1:]) < max(daily[0], 1) * len(daily)


class TestC9Flash:
    def test_retention_dominates_at_wear(self):
        rows = X.flash_error_sweep(pe_grid=(3000, 20000), seed=1)
        assert rows[-1]["dominant"] == "retention"
        assert rows[-1]["retention"] > rows[0]["retention"]

    def test_fcr_multiplier(self):
        result = X.fcr_study(seed=0)
        assert result["lifetime_multiplier"] > 3.0


class TestC10C11Recovery:
    def test_all_mechanisms_reduce_errors(self):
        result = X.recovery_study(seed=0)
        assert result["rfr"].reduction_fraction > 0.3
        assert result["read_disturb_recovery"].errors_after < result["read_disturb_recovery"].errors_before
        assert result["nac"].errors_after < result["nac"].errors_before


class TestC12TwoStep:
    def test_window_corruption(self):
        result = X.twostep_study(seed=0)
        assert result["exposed_errors"] > 10 * max(result["mitigated_errors"], 1)

    def test_lifetime_gain_near_paper(self):
        result = X.twostep_lifetime_study(seed=0)
        # Paper reports ~16%; accept the same ballpark.
        assert 0.05 < result["lifetime_gain_fraction"] < 0.6


class TestC13Pcm:
    def test_startgap_restores_lifetime(self):
        result = X.pcm_study(seed=0)
        assert result["improvement_factor"] > 10


class TestC14Gallery:
    def test_success_grows_with_vintage(self):
        rows = X.attack_gallery(dates=(2011.0, 2013.2), rows_scanned=1500, seed=0)
        assert rows[0]["templates"] < rows[1]["templates"]
        assert rows[0]["pte_spray"] <= rows[1]["pte_spray"]
        assert rows[1]["pte_spray"] > 0.9
        assert rows[1]["flip_feng_shui"]


class TestAblation:
    def test_double_beats_single(self):
        result = X.sidedness_ablation(seed=0)
        assert result["double_flips"] > result["single_flips"]


class TestExtensionStudies:
    def test_pattern_dependence_ordering(self):
        rows = X.pattern_dependence_study(victims=80, seed=0)
        by_name = {r["pattern"]: r["flips"] for r in rows}
        assert by_name["rowstripe"] > by_name["solid1"]
        assert by_name["random"] > by_name["solid1"]

    def test_emerging_memory_trends(self):
        result = X.emerging_memory_study(seed=0)
        stt = result["stt_scaling"]
        assert stt[-1]["read_disturb_errors"] > stt[0]["read_disturb_errors"]
        assert result["rram_hammer"][-1]["victims"] > 0

    def test_multibank_scaling(self):
        rows = X.multibank_study(seed=0, bank_counts=(1, 4, 8))
        totals = [r["victim_flips_total"] for r in rows]
        assert totals[0] < totals[-1]
        assert rows[-1]["per_bank_budget"] < rows[0]["per_bank_budget"]

    def test_codesign_wins(self):
        result = X.codesign_study(seed=0)
        assert result["aldram_mean_speedup"] > 0.08
        assert result["static_escapes"] > 0
        assert result["online_escapes"] == 0

    def test_userlevel_strategies(self):
        result = X.userlevel_attack_study(seed=0)
        by_name = {r["strategy"]: r for r in result["rows"]}
        assert by_name["flush"]["flips"] > 0
        assert by_name["naive"]["flips"] == 0
        assert result["eviction_on_weak_module"]["flips"] > 0

    def test_raidr_interaction(self):
        result = X.raidr_rowhammer_interaction(seed=0)
        assert result["flips"]["uniform-64ms"] == 0
        assert result["flips"]["raidr-bin2"] > 0
