"""The physics observability layer: per-row heat maps, flip provenance,
and the mitigation audit trail.

Three contracts under test: the collector's snapshot/merge algebra
(counts add, peaks max-merge, epoch windows widen, bounded event lists
drop-don't-lie), the engine instrumentation (both DRAM engines feed the
collector numbers that exactly match their own flip logs and payload
counters), and the runner plumbing (per-job physics rides inside
results, survives the result cache, and merges across pool workers).
"""

import json
from collections import Counter

import numpy as np
import pytest

from repro.dram.bank import DramBank
from repro.dram.differential import (
    DEFAULT_GEOMETRY,
    DEFAULT_PROFILES,
    random_stream,
)
from repro.dram.disturbance import DisturbanceModel
from repro.experiments import ExperimentResult, ExperimentRunner, Job, execute_job
from repro.telemetry import AuditEvent, MetricsRegistry, PhysicsCollector
from repro.telemetry import physics as phys
from repro.telemetry import runtime as telem


@pytest.fixture(autouse=True)
def _clean_physics():
    """Every test sees a pristine, disabled global physics collector."""
    prev = phys.swap_collector(PhysicsCollector())
    phys.disable_physics()
    yield
    phys.disable_physics()
    phys.swap_collector(prev)


def _run_bank(engine: str, seed: int = 2, pattern: str = "rowstripe"):
    model = DisturbanceModel(DEFAULT_GEOMETRY, DEFAULT_PROFILES[1], seed)
    bank = DramBank(DEFAULT_GEOMETRY, model, 0,
                    default_pattern=pattern, engine=engine)
    bank.execute(random_stream(seed))
    return bank


# ----------------------------------------------------------------------
# Guards and sink management
# ----------------------------------------------------------------------
class TestGuards:
    def test_off_by_default_records_nothing(self):
        assert not phys.physics_on
        bank = _run_bank("reference")
        assert bank.stats.flips_materialized > 0
        assert not phys.get_collector()

    def test_disable_all_covers_physics(self):
        phys.enable_physics()
        telem.disable_all()
        assert not phys.physics_on

    def test_swap_returns_previous(self):
        mine = PhysicsCollector()
        prev = phys.swap_collector(mine)
        try:
            assert phys.get_collector() is mine
        finally:
            assert phys.swap_collector(prev) is mine

    def test_enable_fresh_resets(self):
        phys.enable_physics()
        phys.get_collector().record_activation(0, 1)
        collector = phys.enable_physics(fresh=True)
        assert not collector
        assert collector is phys.get_collector()


# ----------------------------------------------------------------------
# Collector algebra
# ----------------------------------------------------------------------
class TestCollector:
    def test_heat_and_provenance_accumulate(self):
        c = PhysicsCollector()
        c.record_activation(0, 5, count=3)
        c.record_activation_batch(0, [5, 6], [2, 7])
        c.record_flip_window(0, 6, flips=4, hammer=100.0, aggressor=5,
                             pattern="solid1", epoch=1)
        c.record_flip_window(0, 6, flips=1, hammer=50.0, aggressor=5,
                             pattern="solid1", epoch=3)
        assert c.total_activations() == 12
        assert c.total_flips() == 5
        assert c.total_provenance_flips() == 5
        ((bank, victim, agg, pattern, flips, hammer, first, last),) = \
            c.provenance_rows()
        assert (bank, victim, agg, pattern) == (0, 6, 5, "solid1")
        assert flips == 5
        assert hammer == 100.0  # peaks max-merge, not add
        assert (first, last) == (1, 3)  # epoch window widened

    def test_heat_rows_sorted_hottest_first(self):
        c = PhysicsCollector()
        c.record_flip_window(0, 1, 2, 10.0, -1, "", 0)
        c.record_flip_window(0, 2, 9, 10.0, -1, "", 0)
        assert [row for _, row, _, _, _ in c.heat_rows()] == [2, 1]

    def test_audit_counts_without_events(self):
        c = PhysicsCollector()
        c.audit_count("para", "draw", 10)
        c.audit_count("para", "draw")
        assert c.audit_counts() == {("para", "draw"): 11}
        assert c.audit_events() == []

    def test_audit_cap_drops_but_counts(self):
        c = PhysicsCollector(audit_cap=2)
        for i in range(5):
            c.audit("trr", "evict", time_ns=float(i), bank=0)
        assert len(c.audit_events()) == 2
        assert c.audit_dropped == 3
        assert c.audit_counts() == {("trr", "evict"): 5}  # counts complete

    def test_snapshot_is_json_safe_and_round_trips(self):
        c = PhysicsCollector()
        c.record_activation(1, 7, 4)
        c.record_flip_window(1, 8, 3, 77.5, 7, "rowstripe", 2)
        c.audit("para", "refresh", time_ns=9.0, bank=1, aggressor=7)
        snapshot = json.loads(json.dumps(c.snapshot()))
        restored = PhysicsCollector.from_snapshot(snapshot)
        assert restored.snapshot() == c.snapshot()
        event = restored.audit_events()[0]
        assert isinstance(event, AuditEvent)
        assert event.detail == {"bank": 1, "aggressor": 7}

    def test_merge_adds_counts_maxes_peaks_widens_epochs(self):
        a = PhysicsCollector()
        a.record_flip_window(0, 5, 2, 10.0, 4, "p", 1)
        b = PhysicsCollector()
        b.record_flip_window(0, 5, 3, 30.0, 4, "p", 5)
        b.record_activation(0, 5, 8)
        a.merge(b.snapshot())
        ((_, _, acts, peak, flips),) = a.heat_rows()
        assert (acts, peak, flips) == (8, 30.0, 5)
        ((*_, hammer, first, last),) = [r[5:] for r in a.provenance_rows()]
        assert (hammer, first, last) == (30.0, 1, 5)

    def test_merge_respects_audit_cap(self):
        a = PhysicsCollector(audit_cap=1)
        b = PhysicsCollector()
        b.audit("cra", "detect", bank=0)
        b.audit("cra", "detect", bank=1)
        a.merge(b.snapshot())
        assert len(a.audit_events()) == 1
        assert a.audit_dropped == 1

    def test_from_snapshots_skips_none(self):
        b = PhysicsCollector()
        b.record_activation(0, 0)
        merged = PhysicsCollector.from_snapshots([None, b.snapshot(), None])
        assert merged.total_activations() == 1

    def test_to_registry_bank_aggregates(self):
        c = PhysicsCollector()
        c.record_activation(0, 1, 10)
        c.record_flip_window(0, 2, 3, 50.0, 1, "p", 0)
        c.record_flip_window(1, 9, 2, 80.0, 8, "p", 0)
        c.audit_count("ecc", "corrected", 4)
        registry = c.to_registry()
        assert registry.total("physics_row_activations_total") == 10
        assert registry.total("physics_flips_total") == 5
        by_name = {(m.name, m.labels): m.value for m in registry}
        assert by_name[("physics_flips_total", (("bank", "1"),))] == 2
        assert by_name[("physics_rows_disturbed", (("bank", "0"),))] == 1
        assert by_name[("physics_audit_events_total",
                        (("decision", "corrected"), ("mitigation", "ecc")))] == 4


# ----------------------------------------------------------------------
# Engine instrumentation: the collector must agree with the flip log
# ----------------------------------------------------------------------
class TestEngineAgreement:
    @pytest.mark.parametrize("engine", ("reference", "columnar"))
    def test_heat_map_matches_flip_log(self, engine):
        phys.enable_physics(fresh=True)
        bank = _run_bank(engine)
        collector = phys.get_collector()
        assert bank.stats.flips_materialized > 0
        assert collector.total_flips() == bank.stats.flips_materialized
        assert collector.total_provenance_flips() == bank.stats.flips_materialized
        per_row = Counter(entry[0] for entry in bank.stats.flip_log)
        heat_flips = {row: flips for b, row, _, _, flips in collector.heat_rows()
                      if flips}
        assert heat_flips == dict(per_row)

    @pytest.mark.parametrize("engine", ("reference", "columnar"))
    def test_activations_match_stats(self, engine):
        phys.enable_physics(fresh=True)
        bank = _run_bank(engine)
        assert phys.get_collector().total_activations() == bank.stats.activations

    def test_engines_produce_identical_physics(self):
        snapshots = {}
        for engine in ("reference", "columnar"):
            phys.enable_physics(fresh=True)
            _run_bank(engine)
            snapshots[engine] = phys.get_collector().snapshot()
            phys.disable_physics()
        ref, col = snapshots["reference"], snapshots["columnar"]
        assert ref["provenance"] and len(ref["provenance"]) == len(col["provenance"])
        for a, b in zip(ref["heat"], col["heat"]):
            assert a[:3] == b[:3] and a[4] == b[4]
            assert np.isclose(a[3], b[3], rtol=1e-9, atol=1e-6)
        for a, b in zip(ref["provenance"], col["provenance"]):
            assert a[:5] == b[:5] and a[6:] == b[6:]
            assert np.isclose(a[5], b[5], rtol=1e-9, atol=1e-6)

    def test_flip_log_cap_does_not_cap_physics(self):
        # The heat map must count every materialized flip even when the
        # flip log truncates — physics records pre-cap.
        phys.enable_physics(fresh=True)
        model = DisturbanceModel(DEFAULT_GEOMETRY, DEFAULT_PROFILES[1], 2)
        bank = DramBank(DEFAULT_GEOMETRY, model, 0,
                        default_pattern="rowstripe", engine="columnar")
        bank.stats.flip_log_cap = 8
        bank.execute(random_stream(2))
        assert bank.stats.flips_dropped > 0
        assert len(bank.stats.flip_log) == 8
        assert phys.get_collector().total_flips() == bank.stats.flips_materialized


# ----------------------------------------------------------------------
# Mitigation audit trail
# ----------------------------------------------------------------------
class TestMitigationAudit:
    def test_para_draws_and_refreshes_audited(self):
        result = execute_job("para_controller_check",
                             params={"iterations": 3000},
                             seed=0, collect_physics=True)
        collector = PhysicsCollector.from_snapshot(result.physics)
        counts = collector.audit_counts()
        assert counts[("para", "draw")] > 0
        decisions = counts.get(("para", "refresh"), 0)
        assert decisions > 0
        # One trigger decision refreshes up to 2*distance neighbor rows,
        # so the payload's refresh-op count brackets the decision count.
        assert decisions <= result.payload["mitigation_refreshes"] <= 2 * decisions
        events = [e for e in collector.audit_events()
                  if (e.mitigation, e.decision) == ("para", "refresh")]
        assert len(events) == min(decisions, collector.audit_cap)
        assert all("aggressor" in e.detail for e in events)

    def test_ecc_outcomes_audited_as_counts(self):
        result = execute_job("ecc_study", seed=0, collect_physics=True)
        collector = PhysicsCollector.from_snapshot(result.physics)
        ecc = {dec: n for (mit, dec), n in collector.audit_counts().items()
               if mit == "ecc"}
        assert ecc, "ecc_study must leave ECC decode outcomes in the audit"
        assert sum(ecc.values()) > 0


# ----------------------------------------------------------------------
# Runner plumbing: results, cache, pool workers
# ----------------------------------------------------------------------
class TestRunnerPlumbing:
    PARAMS = {"victims": 16}

    def test_result_round_trips_physics(self):
        result = execute_job("rowhammer_basic", params=self.PARAMS,
                             seed=0, collect_physics=True)
        assert result.physics is not None
        restored = ExperimentResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict())))
        assert restored.physics == result.physics
        assert (PhysicsCollector.from_snapshot(restored.physics).total_flips()
                == result.payload["bit_flips"])

    def test_collect_physics_restores_global_state(self):
        sentinel = PhysicsCollector()
        prev = phys.swap_collector(sentinel)
        try:
            execute_job("rowhammer_basic", params=self.PARAMS,
                        seed=0, collect_physics=True)
            assert phys.get_collector() is sentinel
            assert not phys.physics_on
            assert not sentinel  # the job's flips went to its own collector
        finally:
            phys.swap_collector(prev)

    def test_pool_workers_merge_into_parent(self):
        runner = ExperimentRunner(max_workers=2, collect_physics=True,
                                  ledger=False)
        jobs = [Job("rowhammer_basic", self.PARAMS, seed) for seed in (1, 2, 3)]
        results = runner.run(jobs)
        assert all(r.ok for r in results)
        expected = sum(r.payload["bit_flips"] for r in results)
        assert runner.physics.total_flips() == expected
        assert runner.physics.total_provenance_flips() == expected

    def test_cache_hit_reabsorbs_physics(self, tmp_path):
        cache = tmp_path / "cache"
        first = ExperimentRunner(cache_dir=cache, collect_physics=True,
                                 ledger=False)
        miss = first.run_one("rowhammer_basic", params=self.PARAMS, seed=7)
        assert not miss.cache_hit and miss.physics

        second = ExperimentRunner(cache_dir=cache, collect_physics=True,
                                  ledger=False)
        hit = second.run_one("rowhammer_basic", params=self.PARAMS, seed=7)
        assert hit.cache_hit
        assert hit.physics == miss.physics
        assert (second.physics.total_flips()
                == miss.payload["bit_flips"]
                == PhysicsCollector.from_snapshot(miss.physics).total_flips())

    def test_physics_off_leaves_results_bare(self):
        result = execute_job("rowhammer_basic", params=self.PARAMS, seed=0)
        assert result.physics is None
