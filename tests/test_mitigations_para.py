"""Tests for PARA: hook behavior and closed-form analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import MemoryController
from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333
from repro.mitigations import (
    Para,
    failures_per_year,
    log10_failures_per_year,
    log10_survival_probability,
    performance_overhead_fraction,
    recommended_p,
    simulate_attempt_survival,
    survival_probability,
)

GEO = DramGeometry(banks=2, rows=256, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800)


def make_system(p):
    module = DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=6)
    return MemoryController(module, mitigation=Para(p=p, seed=1))


class TestParaHook:
    def test_trigger_rate_matches_p(self):
        ctrl = make_system(p=0.05)
        n = 20_000
        ctrl.run_activation_pattern(0, [40], n)
        para = ctrl.mitigation
        expected = 0.05 * n
        assert 0.8 * expected < para.triggers < 1.2 * expected

    def test_para_eliminates_flips(self):
        bare = make_system(p=0.0)
        bare.run_activation_pattern(0, [99, 101], 3_000)
        bare_flips = bare.finish()
        assert bare_flips > 0
        protected = make_system(p=0.05)
        protected.run_activation_pattern(0, [99, 101], 3_000)
        assert protected.finish() == 0

    def test_extra_refresh_accounting(self):
        ctrl = make_system(p=0.1)
        ctrl.run_activation_pattern(0, [40], 1_000)
        para = ctrl.mitigation
        assert para.extra_refresh_ops() == ctrl.stats.mitigation_refreshes
        assert para.extra_refresh_ops() == pytest.approx(2 * para.triggers, abs=2)

    def test_p_validated(self):
        with pytest.raises(ValueError):
            Para(p=1.5)


class TestParaAnalysis:
    def test_survival_decreases_with_p(self):
        assert survival_probability(0.01, 1000) > survival_probability(0.02, 1000)

    def test_survival_decreases_with_threshold(self):
        assert survival_probability(0.001, 1000) > survival_probability(0.001, 10_000)

    def test_log_form_matches_linear_form(self):
        p, n = 0.001, 5_000
        assert 10 ** log10_survival_probability(p, n) == pytest.approx(
            survival_probability(p, n), rel=1e-9
        )

    def test_paper_scale_failure_rate(self):
        # p = 0.001 against a 139K threshold: failure rates many orders
        # of magnitude below any hard-disk AFR (paper: ~9.4e-14 per year
        # under its attempt model; ours is astronomically smaller still
        # because the analysis counts full no-refresh windows).
        log10_fail = log10_failures_per_year(0.001, 139_000)
        assert log10_fail < -14

    def test_failures_per_year_underflow_safe(self):
        assert failures_per_year(0.01, 139_000) == 0.0

    def test_recommended_p_meets_target(self):
        p = recommended_p(139_000, target_log10_failures_per_year=-15.0)
        assert log10_failures_per_year(p, 139_000) <= -15.0 + 1e-6
        # And it is still a tiny probability -> negligible overhead.
        assert p < 0.01

    def test_overhead_linear_in_p(self):
        assert performance_overhead_fraction(0.001) == pytest.approx(0.002)

    @given(st.floats(min_value=0.001, max_value=0.2), st.integers(min_value=10, max_value=500))
    @settings(max_examples=30)
    def test_survival_formula_is_probability(self, p, n):
        s = survival_probability(p, n)
        assert 0.0 <= s <= 1.0

    def test_monte_carlo_matches_closed_form(self):
        # Weakened parameters so survival is observable.
        p, n_th, attempts = 0.002, 500, 4_000
        survived = simulate_attempt_survival(p, n_th, attempts, seed=3)
        expected = attempts * survival_probability(p, n_th)
        sigma = math.sqrt(expected)
        assert abs(survived - expected) < 5 * max(sigma, 1.0)
