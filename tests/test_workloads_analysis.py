"""Tests for workload generators and the analysis helpers."""

import math

import numpy as np
import pytest

from repro.analysis import (
    HARD_DISK_AFR_TYPICAL,
    MitigationReport,
    afr_from_mtbf_hours,
    compare_to_disk,
    energy_overhead_from_accounts,
    format_table,
    geometric_mean,
    log_axis_bucket,
    mean_years_to_failure,
    percentile_summary,
    perf_overhead_from_times,
    poisson_rate_interval,
    relative_change,
    report_rows,
    storage_bits_for,
)
from repro.workloads import (
    attacker_rounds,
    hotspot,
    mixed_with_attacker,
    random_access,
    sequential_stream,
)


class TestWorkloads:
    def test_sequential_sorted_arrivals(self):
        trace = sequential_stream(100, banks=4, rows=64)
        arrivals = [r.arrival_ns for r in trace]
        assert arrivals == sorted(arrivals)

    def test_sequential_rotates_banks(self):
        trace = sequential_stream(256, banks=4, rows=64)
        assert {r.bank for r in trace} == {0, 1, 2, 3}

    def test_random_access_in_bounds(self):
        trace = random_access(500, banks=4, rows=64, seed=1)
        assert all(0 <= r.bank < 4 and 0 <= r.row < 64 for r in trace)

    def test_random_deterministic(self):
        a = random_access(50, 4, 64, seed=2)
        b = random_access(50, 4, 64, seed=2)
        assert [(r.bank, r.row) for r in a] == [(r.bank, r.row) for r in b]

    def test_hotspot_is_skewed(self):
        trace = hotspot(5000, banks=1, rows=1024, seed=3)
        rows = [r.row for r in trace]
        top = max(set(rows), key=rows.count)
        assert rows.count(top) > len(rows) * 0.2

    def test_attacker_rounds_shape(self):
        trace = attacker_rounds(0, [10, 12], 3)
        assert trace == [(0, 10, False), (0, 12, False)] * 3

    def test_mixed_contains_both(self):
        benign = sequential_stream(100, banks=2, rows=64)
        trace = mixed_with_attacker(benign, 0, [40, 42], attacker_share=0.5, seed=4)
        rows = {row for _b, row, _w in trace}
        assert 40 in rows or 42 in rows
        assert len(trace) > 100


class TestReliability:
    def test_compare_to_disk_margin(self):
        comparison = compare_to_disk(-14.0)
        assert comparison.safer_than_disk
        assert comparison.log10_margin_vs_disk == pytest.approx(
            math.log10(HARD_DISK_AFR_TYPICAL) + 14.0
        )

    def test_unsafe_rate(self):
        assert not compare_to_disk(-0.5).safer_than_disk

    def test_mean_years(self):
        assert mean_years_to_failure(-3.0) == pytest.approx(1000.0)

    def test_afr_from_mtbf(self):
        afr = afr_from_mtbf_hours(1_000_000)
        assert 0.0 < afr < 0.01
        with pytest.raises(ValueError):
            afr_from_mtbf_hours(0)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1, -1])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_percentile_summary(self):
        s = percentile_summary(list(range(101)))
        assert s["p50"] == 50
        assert s["max"] == 100

    def test_percentile_empty(self):
        assert percentile_summary([])["mean"] == 0.0

    def test_relative_change(self):
        assert relative_change(10, 15) == pytest.approx(0.5)
        assert relative_change(0, 0) == 0.0
        with pytest.raises(ZeroDivisionError):
            relative_change(0, 1)

    def test_poisson_interval_contains_rate(self):
        lo, hi = poisson_rate_interval(100, 10.0)
        assert lo < 10.0 < hi


class TestCostModel:
    def test_protection_fraction(self):
        r = MitigationReport("x", residual_flips=5, baseline_flips=50, perf_overhead=0, energy_overhead=0)
        assert r.protection_fraction == pytest.approx(0.9)
        assert not r.eliminates_all

    def test_zero_baseline_full_protection(self):
        r = MitigationReport("x", 0, 0, 0, 0)
        assert r.protection_fraction == 1.0

    def test_report_rows_align_headers(self):
        from repro.analysis import MITIGATION_TABLE_HEADERS

        rows = report_rows([MitigationReport("x", 0, 10, 0.01, 0.02)])
        assert len(rows[0]) == len(MITIGATION_TABLE_HEADERS)

    def test_overhead_helpers(self):
        assert perf_overhead_from_times(100, 110) == pytest.approx(0.1)
        assert energy_overhead_from_accounts(100, 120) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            perf_overhead_from_times(0, 10)

    def test_storage_bits_for(self):
        assert storage_bits_for("para", 32768, 8) == 0
        assert storage_bits_for("cra-full", 32768, 8) == 32768 * 8 * 16
        assert storage_bits_for("cra-table", 32768, 8, table_entries=256) > 0
        with pytest.raises(KeyError):
            storage_bits_for("bogus", 1, 1)
        with pytest.raises(ValueError):
            storage_bits_for("cra-table", 1, 1)


class TestTables:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.34567], ["xx", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.346" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_log_axis_bucket(self):
        assert log_axis_bucket(0) == "0"
        assert log_axis_bucket(5e5) == "10^5"
