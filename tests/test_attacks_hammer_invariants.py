"""Tests for hammer patterns and memory-isolation invariants."""

import pytest

from repro.attacks import (
    check_read_isolation,
    check_write_isolation,
    double_sided_device,
    hammer_via_controller,
    many_sided_device,
    max_double_sided_budget,
    single_sided_device,
)
from repro.controller import MemoryController
from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333

GEO = DramGeometry(banks=2, rows=512, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800)


def make_module(seed=10):
    return DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=seed)


class TestHammerDevice:
    def test_single_sided_flips_neighbors_only(self):
        module = make_module()
        result = single_sided_device(module, 0, aggressor=100, count=50_000)
        assert result.flip_count > 0
        for row in result.victim_rows():
            assert row != 100
            assert abs(row - 100) <= 2

    def test_double_sided_concentrates_on_victim(self):
        module = make_module()
        result = double_sided_device(module, 0, victim=100, count=25_000)
        victims = result.victim_rows()
        assert 100 in victims

    def test_double_beats_single_per_victim(self):
        m1 = make_module(seed=77)
        single = single_sided_device(m1, 0, aggressor=99, count=2_000)
        single_on_100 = sum(1 for r, _ in single.flips if r == 100)
        m2 = make_module(seed=77)
        double = double_sided_device(m2, 0, victim=100, count=2_000)
        double_on_100 = sum(1 for r, _ in double.flips if r == 100)
        assert double_on_100 >= single_on_100

    def test_many_sided(self):
        module = make_module()
        result = many_sided_device(module, 0, aggressors=[50, 52, 54], count=50_000)
        assert result.flip_count > 0
        assert result.aggressors == (50, 52, 54)

    def test_edge_victim(self):
        module = make_module()
        result = double_sided_device(module, 0, victim=0, count=10_000)
        assert result.aggressors == (1,)

    def test_budget_helper(self):
        module = make_module()
        assert max_double_sided_budget(module) == pytest.approx(
            module.timing.tREFW / module.timing.tRC / 2, abs=1
        )
        assert max_double_sided_budget(module, 2.0) == pytest.approx(
            max_double_sided_budget(module) / 2, abs=1
        )

    def test_controller_path_counts_post_mitigation(self):
        module = make_module()
        ctrl = MemoryController(module)
        flips = hammer_via_controller(ctrl, 0, [99, 101], 3_000)
        assert flips > 0


class TestIsolationInvariants:
    def test_reads_corrupt_other_rows(self):
        module = make_module()
        report = check_read_isolation(module, 0, accessed_row=100, read_count=100_000)
        assert report.violated
        assert not report.accessed_row_changed
        assert all(row != 100 for row in report.corrupted_rows)

    def test_writes_corrupt_other_rows(self):
        module = make_module()
        report = check_write_isolation(module, 0, accessed_row=100, write_count=100_000)
        assert report.violated
        assert not report.accessed_row_changed

    def test_no_hammer_no_violation(self):
        module = make_module()
        report = check_read_isolation(module, 0, accessed_row=100, read_count=10)
        assert not report.violated
        assert report.total_corrupted_bits == 0

    def test_invulnerable_module_clean(self):
        from repro.dram import INVULNERABLE

        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=INVULNERABLE, seed=1)
        report = check_read_isolation(module, 0, accessed_row=100, read_count=1_000_000)
        assert not report.violated
