"""Tests for counter-based, ANVIL-style, and TRR mitigations."""

import pytest

from repro.controller import MemoryController
from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333
from repro.mitigations import AnvilMitigation, CounterBasedMitigation, TrrMitigation, storage_overhead_table

GEO = DramGeometry(banks=2, rows=256, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800)


def make_controller(mitigation, **kwargs):
    module = DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=8, **kwargs)
    return MemoryController(module, mitigation=mitigation)


def hammer(ctrl, iters=3_000):
    ctrl.run_activation_pattern(0, [99, 101], iters)
    return ctrl.finish()


class TestCra:
    def test_full_counters_stop_flips(self):
        ctrl = make_controller(CounterBasedMitigation(threshold=200))
        assert hammer(ctrl) == 0
        assert ctrl.mitigation.detections > 0

    def test_threshold_above_hc_first_fails(self):
        # A threshold above the weakest cell's hc_first reacts too late.
        ctrl = make_controller(CounterBasedMitigation(threshold=100_000))
        assert hammer(ctrl) > 0

    def test_detection_cadence(self):
        ctrl = make_controller(CounterBasedMitigation(threshold=100))
        ctrl.run_activation_pattern(0, [40], 1_000)
        # 1000 activations at threshold 100 -> ~10 detections.
        assert 8 <= ctrl.mitigation.detections <= 12

    def test_window_reset(self):
        mit = CounterBasedMitigation(threshold=1_000, window_ns=1e6)
        ctrl = make_controller(mit)
        ctrl.run_activation_pattern(0, [40], 500)   # below threshold
        # After the window passes, counts restart: still no detections.
        ctrl.time_ns += 2e6
        ctrl.run_activation_pattern(0, [40], 500)
        assert mit.detections == 0

    def test_table_eviction_counted(self):
        mit = CounterBasedMitigation(threshold=10_000, table_entries=4)
        ctrl = make_controller(mit)
        # Touch more distinct rows than table entries.
        for row in range(0, 64, 2):
            ctrl.activate(0, row)
        assert mit.evictions > 0

    def test_counter_bits(self):
        assert CounterBasedMitigation(threshold=32_768).counter_bits() == 16

    def test_storage_full_vs_table(self):
        full = CounterBasedMitigation(threshold=32_768)
        table = CounterBasedMitigation(threshold=32_768, table_entries=1024)
        rows, banks = 32768, 8
        assert full.storage_bits(rows, banks) > table.storage_bits(rows, banks)
        # Full per-row counters for a 2 GiB module: megabits of SRAM —
        # the overhead the paper calls out.
        assert full.storage_bits(rows, banks) > 4_000_000

    def test_storage_overhead_table_rows(self):
        rows = storage_overhead_table(32768, 8, thresholds=(1024,), table_sizes=(None, 256))
        assert len(rows) == 2
        assert rows[0]["storage_bits"] > rows[1]["storage_bits"]


class TestAnvil:
    def test_detects_and_stops_hammering(self):
        mit = AnvilMitigation(sample_interval_ns=50_000.0, rate_threshold=300)
        ctrl = make_controller(mit)
        flips = hammer(ctrl)
        assert mit.detections > 0
        assert flips == 0

    def test_sampling_costs_cpu(self):
        mit = AnvilMitigation(sample_interval_ns=50_000.0, rate_threshold=10**9)
        ctrl = make_controller(mit)
        hammer(ctrl, iters=500)
        assert mit.samples > 0
        assert mit.cpu_overhead_ns() == mit.samples * mit.sample_cost_ns

    def test_threshold_too_high_misses(self):
        mit = AnvilMitigation(sample_interval_ns=50_000.0, rate_threshold=10**9)
        ctrl = make_controller(mit)
        assert hammer(ctrl) > 0

    def test_benign_hot_rows_below_threshold_untouched(self):
        mit = AnvilMitigation(sample_interval_ns=100_000.0, rate_threshold=5_000)
        ctrl = make_controller(mit)
        for _ in range(30):
            for row in range(8):
                ctrl.activate(0, row)
        assert mit.detections == 0


class TestTrr:
    def test_tracks_and_refreshes_aggressors(self):
        mit = TrrMitigation(tracker_entries=4, refresh_period_acts=128)
        ctrl = make_controller(mit)
        flips = hammer(ctrl)
        assert mit.targeted_refreshes > 0
        assert flips == 0

    def test_uses_physical_adjacency_under_remap(self):
        mit = TrrMitigation(tracker_entries=4, refresh_period_acts=128)
        ctrl = make_controller(mit, remap_scheme="block-swap")
        flips = hammer(ctrl)
        assert flips == 0

    def test_period_too_slow_leaks_flips(self):
        mit = TrrMitigation(tracker_entries=4, refresh_period_acts=100_000)
        ctrl = make_controller(mit)
        assert hammer(ctrl) > 0

    def test_eviction_pressure(self):
        mit = TrrMitigation(tracker_entries=2, refresh_period_acts=10_000)
        ctrl = make_controller(mit)
        for row in range(0, 40, 2):
            for _ in range(2):
                ctrl.activate(0, row)
        assert mit.evictions > 0
