"""Tests for the sanitizer: levels, registry, checkers, runner wiring.

Positive coverage (clean simulator state passes every level) lives
here; the paired negative proof — each chaos state-corruption injector
trips its invariant class — lives in ``test_state_corruption.py``.
"""

import numpy as np
import pytest

from repro.controller import RefreshEngine
from repro.dram import (
    DisturbanceModel,
    DramBank,
    DramGeometry,
    DramModule,
    VulnerabilityProfile,
)
from repro.dram.timing import DDR3_1333
from repro.ecc import HammingSecded
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import is_retryable, violation_subsystem
from repro.flash.ftl import PageMappedFtl
from repro.pcm import PcmArray, StartGap
from repro.sanitizer import runtime as sanit
from repro.sanitizer.checks import FULL_SCAN_INTERVAL
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as telem

GEO = DramGeometry(banks=2, rows=128, row_bytes=256)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.02,
    hc_first_median=5_000,
    hc_first_min=1_000,
    hc_first_sigma=0.4,
    distance2_weight=0.0,
)

EXPECTED_SUBSYSTEMS = {
    "dram.bank", "dram.refresh", "ecc.codec", "flash.ftl", "pcm.startgap",
}


@pytest.fixture(autouse=True)
def _level_guard():
    """Restore the level each test found, whatever it sets."""
    prev = sanit.current_level()
    yield
    sanit.set_level(prev)


def make_bank(seed=3, pattern="solid1"):
    model = DisturbanceModel(GEO, PROFILE, seed)
    return DramBank(GEO, model, 0, default_pattern=pattern)


def make_module():
    return DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=2)


def make_ftl(writes=24):
    ftl = PageMappedFtl(n_blocks=8, pages_per_block=16)
    for i in range(writes):
        ftl.write(i % 10)
    return ftl


# ----------------------------------------------------------------------
# Levels and guards
# ----------------------------------------------------------------------
class TestLevels:
    def test_set_level_drives_guards(self):
        sanit.set_level("off")
        assert not sanit.sanitize_on and not sanit.full_on
        previous = sanit.set_level("cheap")
        assert previous == "off"
        assert sanit.sanitize_on and not sanit.full_on
        assert sanit.set_level("full") == "cheap"
        assert sanit.sanitize_on and sanit.full_on
        assert sanit.current_level() == "full"

    def test_unknown_level_rejected(self):
        sanit.set_level("cheap")
        with pytest.raises(ValueError, match="unknown sanitize level"):
            sanit.set_level("paranoid")
        assert sanit.current_level() == "cheap"

    def test_sync_adopts_env(self, monkeypatch):
        monkeypatch.setenv(sanit.ENV_SANITIZE, "full")
        assert sanit.sync_from_env() == "full"
        assert sanit.full_on

    def test_sync_unknown_env_reads_off(self, monkeypatch):
        monkeypatch.setenv(sanit.ENV_SANITIZE, "bogus")
        assert sanit.sync_from_env() == "off"

    def test_sync_unset_env_keeps_level(self, monkeypatch):
        monkeypatch.delenv(sanit.ENV_SANITIZE, raising=False)
        sanit.set_level("cheap")
        assert sanit.sync_from_env() == "cheap"

    def test_sync_unset_env_applies_default(self, monkeypatch):
        monkeypatch.delenv(sanit.ENV_SANITIZE, raising=False)
        sanit.set_level("full")
        assert sanit.sync_from_env(default="off") == "off"


# ----------------------------------------------------------------------
# InvariantViolation and the violation() recorder
# ----------------------------------------------------------------------
class TestViolation:
    def test_message_shape_and_attributes(self):
        exc = sanit.InvariantViolation("flash.ftl", "mapping lost bijectivity",
                                       "lpns 1 and 2 collide")
        assert str(exc) == "[flash.ftl] mapping lost bijectivity: lpns 1 and 2 collide"
        assert exc.subsystem == "flash.ftl"
        assert exc.invariant == "mapping lost bijectivity"
        assert exc.to_json_dict() == {
            "subsystem": "flash.ftl",
            "invariant": "mapping lost bijectivity",
            "detail": "lpns 1 and 2 collide",
        }

    def test_message_without_detail(self):
        exc = sanit.InvariantViolation("dram.bank", "open-row out of range")
        assert str(exc) == "[dram.bank] open-row out of range"

    def test_violation_raises_and_counts(self):
        prev = telem.swap_registry(MetricsRegistry())
        telem.enable_metrics()
        try:
            with pytest.raises(sanit.InvariantViolation):
                sanit.violation("pcm.startgap", "gap slot occupied", "line 3")
            counter = telem.counter("sanitizer_violations_total",
                                    subsystem="pcm.startgap")
            assert counter.value == 1
        finally:
            telem.disable_metrics()
            telem.swap_registry(prev)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_invariant_classes_registered(self):
        entries = sanit.registered()
        assert set(entries) == EXPECTED_SUBSYSTEMS
        for key, entry in entries.items():
            assert entry.subsystem == key
            assert entry.description

    def test_unregistered_subsystem_is_noop(self):
        sanit.set_level("full")
        sanit.check("no.such.subsystem", object())

    def test_note_is_noop_below_full(self):
        sanit.set_level("cheap")
        # Would raise AttributeError on a bare object if the hook ran.
        sanit.note("dram.bank", object(), row=0)


# ----------------------------------------------------------------------
# dram.bank
# ----------------------------------------------------------------------
class TestDramBankChecker:
    def test_clean_traffic_passes_full(self):
        sanit.set_level("full")
        bank = make_bank()
        data = np.zeros(GEO.row_bits, dtype=np.uint8)
        data[::5] = 1
        bank.write(10, data)
        bank.activate(10)
        bank.read(10)
        sanit.check("dram.bank", bank, row=10, force=True)

    def test_out_of_band_flip_detected(self):
        sanit.set_level("full")
        bank = make_bank()
        bank.write(10, np.ones(GEO.row_bits, dtype=np.uint8))
        bank._data[10][0] ^= 1  # raw poke, bypassing the write path
        with pytest.raises(sanit.InvariantViolation) as info:
            sanit.check("dram.bank", bank, row=10)
        assert info.value.subsystem == "dram.bank"
        assert info.value.invariant == "stored-data digest mismatch"

    def test_modeled_flips_are_legitimate(self):
        sanit.set_level("full")
        bank = make_bank()
        bank.row_bits(4)
        bank.row_bits(6)
        bank.bulk_activate(5, 50_000)
        flipped = bank.settle()
        assert flipped > 0  # hammer far past hc_first_min must flip
        sanit.check("dram.bank", bank, force=True)

    def test_disabled_level_skips_detection(self, monkeypatch):
        monkeypatch.delenv(sanit.ENV_SANITIZE, raising=False)
        sanit.set_level("off")
        bank = make_bank()
        bank.write(10, np.ones(GEO.row_bits, dtype=np.uint8))
        bank._data[10][0] ^= 1
        bank.activate(10)  # instrumented site: guard must stay cold

    def test_open_row_bound_is_cheap(self):
        sanit.set_level("cheap")
        bank = make_bank()
        bank.open_row = 999
        with pytest.raises(sanit.InvariantViolation, match="open-row out of range"):
            sanit.check("dram.bank", bank)

    def test_negative_charge_is_cheap(self):
        sanit.set_level("cheap")
        bank = make_bank()
        bank._pressure[3] = -1.0
        with pytest.raises(sanit.InvariantViolation, match="negative disturbance charge"):
            sanit.check("dram.bank", bank, row=3)


# ----------------------------------------------------------------------
# dram.refresh
# ----------------------------------------------------------------------
class TestRefreshChecker:
    def test_fresh_engine_passes_full(self):
        sanit.set_level("full")
        engine = RefreshEngine(make_module())
        engine.tick(engine.interval_ns * 3)
        sanit.check("dram.refresh", engine)

    def test_cursor_skew_detected(self):
        sanit.set_level("cheap")
        engine = RefreshEngine(make_module())
        engine._cursor = GEO.rows + 13
        with pytest.raises(sanit.InvariantViolation) as info:
            sanit.check("dram.refresh", engine)
        assert info.value.subsystem == "dram.refresh"
        assert info.value.invariant == "refresh cursor out of range"

    def test_lost_deadline_detected(self):
        sanit.set_level("cheap")
        engine = RefreshEngine(make_module())
        engine.next_ref_ns = float("nan")
        with pytest.raises(sanit.InvariantViolation, match="refresh deadline lost"):
            sanit.check("dram.refresh", engine)

    def test_accounting_coherence_is_full_only(self):
        engine = RefreshEngine(make_module())
        engine.stats.rows_refreshed = 10**9  # impossible vs 0 REF commands
        sanit.set_level("cheap")
        sanit.check("dram.refresh", engine)  # cheap does not scan stats
        sanit.set_level("full")
        with pytest.raises(sanit.InvariantViolation, match="refresh accounting incoherent"):
            sanit.check("dram.refresh", engine)


# ----------------------------------------------------------------------
# ecc.codec
# ----------------------------------------------------------------------
class TestEccChecker:
    def test_healthy_codec_passes_full(self):
        sanit.set_level("full")
        sanit.check("ecc.codec", HammingSecded(16))

    def test_aliased_layout_detected(self):
        sanit.set_level("full")
        code = HammingSecded(16)
        code._data_positions[-1] = code._data_positions[0]
        with pytest.raises(sanit.InvariantViolation) as info:
            sanit.check("ecc.codec", code)
        assert info.value.subsystem == "ecc.codec"


# ----------------------------------------------------------------------
# flash.ftl
# ----------------------------------------------------------------------
class TestFtlChecker:
    def test_churned_ftl_passes_forced_scan(self):
        sanit.set_level("full")
        ftl = make_ftl(writes=200)  # enough to trigger garbage collection
        sanit.check("flash.ftl", ftl, force=True)

    def test_full_scan_is_amortized(self):
        sanit.set_level("full")
        ftl = make_ftl()
        ftl._map[0] = ftl._map[1]  # break bijectivity
        # Unforced hot-path call number 1 of FULL_SCAN_INTERVAL: the
        # expensive scan is skipped, only O(1) bounds run.
        assert FULL_SCAN_INTERVAL > 1
        sanit.check("flash.ftl", ftl)
        # A structural boundary (or ctx force) always scans.
        with pytest.raises(sanit.InvariantViolation) as info:
            sanit.check("flash.ftl", ftl, boundary=True)
        assert info.value.subsystem == "flash.ftl"
        assert info.value.invariant == "mapping lost bijectivity"

    def test_write_pointer_bound_is_cheap(self):
        sanit.set_level("cheap")
        ftl = make_ftl()
        ftl._write_ptr[ftl._active] = ftl.pages_per_block + 7
        with pytest.raises(sanit.InvariantViolation, match="write pointer out of range"):
            sanit.check("flash.ftl", ftl)


# ----------------------------------------------------------------------
# pcm.startgap
# ----------------------------------------------------------------------
class TestStartGapChecker:
    def test_churned_startgap_passes_full(self):
        sanit.set_level("full")
        sg = StartGap(PcmArray(lines=9, seed=3), gap_period=4)
        for i in range(40):
            sg.write(i % sg.n_logical)
        sanit.check("pcm.startgap", sg)

    def test_aliased_mapping_detected(self):
        sanit.set_level("full")
        sg = StartGap(PcmArray(lines=9, seed=3), gap_period=4)
        sg._mapping[1] = sg._mapping[0]
        with pytest.raises(sanit.InvariantViolation) as info:
            sanit.check("pcm.startgap", sg)
        assert info.value.subsystem == "pcm.startgap"
        assert info.value.invariant == "mapping lost bijectivity"

    def test_gap_bound_is_cheap(self):
        sanit.set_level("cheap")
        sg = StartGap(PcmArray(lines=9, seed=3), gap_period=4)
        sg._gap = sg.n_logical + 5
        with pytest.raises(sanit.InvariantViolation, match="gap slot out of range"):
            sanit.check("pcm.startgap", sg)


# ----------------------------------------------------------------------
# Runner classification
# ----------------------------------------------------------------------
def result_with_error(error):
    return ExperimentResult(name="x", payload=None, seed=1, error=error)


class TestRunnerClassification:
    def test_outcome_classes(self):
        assert result_with_error(None).outcome == "ok"
        assert result_with_error("JobTimeout: 5s").outcome == "timeout"
        assert result_with_error(
            "InvariantViolation: [dram.bank] stored-data digest mismatch: row=3"
        ).outcome == "invariant"
        assert result_with_error("ValueError: nope").outcome == "error"

    def test_violations_are_not_retryable(self):
        assert not is_retryable("InvariantViolation: [flash.ftl] x")

    def test_violation_subsystem_parsing(self):
        assert violation_subsystem(
            "InvariantViolation: [flash.ftl] mapping lost bijectivity: x"
        ) == "flash.ftl"
        assert violation_subsystem("InvariantViolation: malformed") == "unknown"
        assert violation_subsystem(None) == "unknown"
