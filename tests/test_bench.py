"""The bench-regression harness: suite execution, report schema,
baseline comparison, and the ``repro bench`` CLI gate."""

import json

import pytest

from repro import bench as B
from repro.cli import main


def _report(benches, schema=B.BENCH_SCHEMA):
    return {"schema": schema, "ts": 0.0, "time": "t", "host": "h",
            "repro_version": "1.0.0", "git_sha": "", "quick": True,
            "benches": benches}


def _bench(name, wall_s, throughput=None, unit="ops"):
    return {"name": name, "experiment": name, "params": {}, "seed": 0,
            "quick": True, "wall_s": wall_s, "unit": unit, "units": 0.0,
            "throughput": throughput, "peak_rss_kb": 0, "spans": []}


class TestBenchSpec:
    def test_quick_bindings_fall_back_to_full(self):
        spec = B.BenchSpec(name="x", experiment="e", params={"n": 10})
        assert spec.bindings(quick=True) == {"n": 10}
        spec = B.BenchSpec(name="x", experiment="e", params={"n": 10},
                           quick_params={"n": 2})
        assert spec.bindings(quick=True) == {"n": 2}
        assert spec.bindings(quick=False) == {"n": 10}

    def test_suite_names_are_unique_and_resolvable(self):
        from repro.experiments import registry

        names = B.bench_names()
        assert len(names) == len(set(names))
        for spec in B.SUITE:
            registry.get(spec.experiment)  # must not raise


class TestRunBench:
    def test_one_quick_bench_measures_and_profiles(self):
        spec = next(s for s in B.SUITE if s.name == "dram_hammer")
        entry = B.run_bench(spec, quick=True)
        assert entry["name"] == "dram_hammer"
        assert entry["wall_s"] > 0
        assert entry["units"] > 0
        assert entry["throughput"] == pytest.approx(
            entry["units"] / entry["wall_s"])
        assert any(s["path"] == ["job{name=rowhammer_basic}"]
                   for s in entry["spans"])
        json.dumps(entry)

    def test_run_suite_filters_and_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown bench"):
            B.run_suite(["nope"])
        report = B.run_suite(["dram_hammer"], quick=True)
        assert [b["name"] for b in report["benches"]] == ["dram_hammer"]
        assert report["schema"] == B.BENCH_SCHEMA
        assert report["quick"] is True

    def test_bench_timeout_yields_error_entry_not_a_hang(self):
        from repro.experiments.registry import experiment, unregister

        @experiment("_bench_hang", "sleeps forever", section="II", tags=("test",))
        def _bench_hang(seed: int = 0):
            import time

            time.sleep(30)

        spec = B.BenchSpec(name="hang_probe", experiment="_bench_hang")
        try:
            entry = B.run_bench(spec, timeout_s=0.2)
        finally:
            unregister("_bench_hang")
        assert entry["error"].startswith("JobTimeout:")
        assert entry["wall_s"] < 5
        assert entry["throughput"] is None
        json.dumps(entry)

    def test_bench_cli_timeout_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.registry import experiment, unregister

        monkeypatch.chdir(tmp_path)

        @experiment("_bench_hang2", "sleeps forever", section="II", tags=("test",))
        def _bench_hang2(seed: int = 0):
            import time

            time.sleep(30)

        B.SUITE.append(B.BenchSpec(name="hang_probe", experiment="_bench_hang2"))
        try:
            assert main(["bench", "hang_probe", "--timeout", "0.2",
                         "--out", str(tmp_path / "r.json")]) == 1
        finally:
            B.SUITE.pop()
            unregister("_bench_hang2")
        captured = capsys.readouterr()
        assert "TIMED OUT" in captured.out
        assert "timed out: hang_probe" in captured.err


class TestReportIo:
    def test_write_load_round_trip(self, tmp_path):
        report = _report([_bench("a", 1.0)])
        path = B.write_report(report, tmp_path / "r.json")
        assert B.load_report(path) == report

    def test_default_filename_is_timestamped(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = B.write_report(_report([]))
        assert path.name.startswith("BENCH_") and path.name.endswith(".json")
        assert path.exists()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(_report([], schema=99)))
        with pytest.raises(ValueError, match="schema"):
            B.load_report(path)

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="benches"):
            B.load_report(path)


class TestCompare:
    def test_within_threshold_is_ok(self):
        cur = _report([_bench("a", 1.05)])
        base = _report([_bench("a", 1.0)])
        comparison = B.compare_reports(cur, base, threshold_pct=10.0)
        assert comparison["ok"]
        assert comparison["rows"][0]["delta_pct"] == pytest.approx(5.0)

    def test_regression_detected(self):
        cur = _report([_bench("a", 1.5), _bench("b", 1.0)])
        base = _report([_bench("a", 1.0), _bench("b", 1.0)])
        comparison = B.compare_reports(cur, base, threshold_pct=10.0)
        assert not comparison["ok"]
        assert comparison["regressions"] == ["a"]

    def test_speedup_never_regresses(self):
        comparison = B.compare_reports(_report([_bench("a", 0.5)]),
                                       _report([_bench("a", 1.0)]))
        assert comparison["ok"]

    def test_new_and_missing_benches_are_noted_not_failed(self):
        cur = _report([_bench("new", 1.0)])
        base = _report([_bench("old", 1.0)])
        comparison = B.compare_reports(cur, base)
        notes = {r["name"]: r["note"] for r in comparison["rows"]}
        assert notes == {"new": "new", "old": "missing"}
        assert comparison["ok"]


class TestBenchCli:
    def test_compare_exits_nonzero_on_injected_regression(self, tmp_path, capsys):
        # Acceptance: a synthetic 2x slowdown must fail the gate.
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        B.write_report(_report([_bench("a", 1.0)]), base)
        B.write_report(_report([_bench("a", 2.0)]), cur)
        assert main(["bench", "--input", str(cur), "--compare", str(base),
                     "--fail-on-regress", "10"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regression: a" in captured.err

    def test_warn_only_reports_but_passes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        B.write_report(_report([_bench("a", 1.0)]), base)
        B.write_report(_report([_bench("a", 2.0)]), cur)
        assert main(["bench", "--input", str(cur), "--compare", str(base),
                     "--warn-only"]) == 0
        assert "regression: a" in capsys.readouterr().err

    def test_no_regression_passes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        B.write_report(_report([_bench("a", 1.0)]), base)
        B.write_report(_report([_bench("a", 1.01)]), cur)
        assert main(["bench", "--input", str(cur), "--compare", str(base)]) == 0
        assert "+1.0%" in capsys.readouterr().out

    def test_fail_on_regress_requires_compare(self, capsys):
        assert main(["bench", "--fail-on-regress", "10"]) == 2
        assert "--compare" in capsys.readouterr().err

    def test_unreadable_input_errors(self, tmp_path, capsys):
        assert main(["bench", "--input", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output_carries_comparison(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        B.write_report(_report([_bench("a", 1.0)]), base)
        B.write_report(_report([_bench("a", 2.0)]), cur)
        assert main(["bench", "--input", str(cur), "--compare", str(base),
                     "--warn-only", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["comparison"]["regressions"] == ["a"]
        assert body["report"]["benches"][0]["name"] == "a"

    def test_quick_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["bench", "dram_hammer", "--quick",
                     "--out", str(out)]) == 0
        report = B.load_report(out)
        assert [b["name"] for b in report["benches"]] == ["dram_hammer"]
        assert "dram_hammer" in capsys.readouterr().out
