"""Failure-capture bundles and deterministic replay.

Covers the full loop: a sanitizer-detected corruption inside a runner
job writes a bundle; :func:`~repro.sanitizer.bundle.replay_bundle`
re-executes the job under the bundle's recorded knobs and reproduces
the identical failure digest; the ``repro replay`` CLI reports the
documented exit codes (0 reproduced, 3 did not reproduce, 2 unreadable
bundle).
"""

import json

import pytest

from repro import chaos
from repro.cli import main
from repro.experiments.runner import execute_job_safe
from repro.sanitizer import runtime as sanit
from repro.sanitizer.bundle import (
    BUNDLE_KIND,
    BUNDLE_SCHEMA,
    BundleError,
    CaptureContext,
    capture_dir,
    failure_digest,
    load_bundle,
    replay_bundle,
)
from repro.utils import rng as rng_utils


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_CHAOS, raising=False)
    monkeypatch.delenv(chaos.ENV_CHAOS_STATE, raising=False)
    chaos.reset()
    prev = sanit.current_level()
    yield
    chaos.reset()
    sanit.set_level(prev)


def capture_failure(monkeypatch, tmp_path, seed=5):
    """Run one job with a dram.bank corruption armed and capture it."""
    bundles = tmp_path / "bundles"
    monkeypatch.setenv("REPRO_CAPTURE", str(bundles))
    monkeypatch.setenv(sanit.ENV_SANITIZE, "full")
    monkeypatch.setenv(chaos.ENV_CHAOS, "corrupt:sub=dram.bank")
    chaos.reset()
    result = execute_job_safe("sidedness_ablation", seed=seed)
    paths = sorted(bundles.glob("*.json"))
    assert result.outcome == "invariant"
    assert len(paths) == 1
    return result, paths[0]


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
class TestCaptureDir:
    def test_off_always_disarms(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE", "off")
        sanit.set_level("full")
        assert capture_dir() is None

    def test_explicit_path_arms(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CAPTURE", str(tmp_path))
        sanit.set_level("off")
        assert capture_dir() == tmp_path

    def test_unset_follows_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAPTURE", raising=False)
        sanit.set_level("off")
        assert capture_dir() is None
        sanit.set_level("cheap")
        assert capture_dir() is not None

    def test_arm_if_enabled_matches(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CAPTURE", str(tmp_path))
        context = CaptureContext.arm_if_enabled()
        assert context is not None
        context.restore()
        monkeypatch.setenv("REPRO_CAPTURE", "off")
        assert CaptureContext.arm_if_enabled() is None


class TestBundleContents:
    def test_captured_bundle_fields(self, monkeypatch, tmp_path):
        result, path = capture_failure(monkeypatch, tmp_path)
        bundle = load_bundle(path)
        assert bundle["kind"] == BUNDLE_KIND
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["name"] == "sidedness_ablation"
        assert bundle["seed"] == 5
        assert bundle["outcome"] == "invariant"
        assert bundle["error"].startswith("InvariantViolation: [dram.bank]")
        assert bundle["violation"]["subsystem"] == "dram.bank"
        assert bundle["chaos"] == "corrupt:sub=dram.bank"
        assert bundle["sanitize_level"] == "full"
        assert bundle["digest"] == failure_digest(
            result.name, dict(result.params), result.seed, result.error
        )
        # Provenance for "how did the job spend its randomness".
        assert bundle["rng_labels"]
        assert all(isinstance(label, str) for label in bundle["rng_labels"])
        assert isinstance(bundle["trace"], list)

    def test_clean_run_writes_no_bundle(self, monkeypatch, tmp_path):
        bundles = tmp_path / "bundles"
        monkeypatch.setenv("REPRO_CAPTURE", str(bundles))
        monkeypatch.setenv(sanit.ENV_SANITIZE, "full")
        result = execute_job_safe("sidedness_ablation", seed=5)
        assert result.outcome == "ok"
        assert not list(bundles.glob("*.json"))


class TestLoadBundle:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BundleError, match="cannot read"):
            load_bundle(tmp_path / "nope.json")

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"kind": "repro-fail')
        with pytest.raises(BundleError, match="not valid JSON"):
            load_bundle(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else", "schema": 1}))
        with pytest.raises(BundleError, match="has kind"):
            load_bundle(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"kind": BUNDLE_KIND, "schema": 99}))
        with pytest.raises(BundleError, match="schema"):
            load_bundle(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"kind": BUNDLE_KIND, "schema": BUNDLE_SCHEMA}))
        with pytest.raises(BundleError, match="name"):
            load_bundle(path)

    def test_non_integer_seed(self, tmp_path):
        path = tmp_path / "seed.json"
        path.write_text(json.dumps({
            "kind": BUNDLE_KIND, "schema": BUNDLE_SCHEMA,
            "name": "x", "params": {}, "digest": "0" * 16, "seed": "five",
        }))
        with pytest.raises(BundleError, match="non-integer seed"):
            load_bundle(path)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
class TestReplay:
    def test_replay_reproduces_injected_failure(self, monkeypatch, tmp_path):
        _result, path = capture_failure(monkeypatch, tmp_path)
        bundle = load_bundle(path)
        # Replay must succeed from a *different* ambient environment.
        monkeypatch.delenv(chaos.ENV_CHAOS, raising=False)
        monkeypatch.setenv(sanit.ENV_SANITIZE, "off")
        sanit.sync_from_env()
        chaos.reset()
        report = replay_bundle(bundle)
        assert report.reproduced
        assert report.digest == report.expected_digest == bundle["digest"]
        assert report.result.outcome == "invariant"
        # The caller's knobs came back.
        assert sanit.current_level() == "off"
        assert chaos.ENV_CHAOS not in __import__("os").environ

    def test_tampered_digest_does_not_reproduce(self, monkeypatch, tmp_path):
        _result, path = capture_failure(monkeypatch, tmp_path)
        bundle = load_bundle(path)
        bundle["digest"] = "0" * 16
        report = replay_bundle(bundle)
        assert not report.reproduced
        assert report.digest != report.expected_digest

    def test_clean_rerun_never_reproduces(self, monkeypatch, tmp_path):
        """A bundle whose failure was environmental (here: the chaos
        schedule is stripped) reruns clean — and a clean rerun must not
        count as reproduced even if a digest could match."""
        _result, path = capture_failure(monkeypatch, tmp_path)
        bundle = load_bundle(path)
        bundle["chaos"] = None
        report = replay_bundle(bundle)
        assert not report.reproduced
        assert report.result.outcome == "ok"

    def test_report_json_shape(self, monkeypatch, tmp_path):
        _result, path = capture_failure(monkeypatch, tmp_path)
        report = replay_bundle(load_bundle(path))
        record = report.to_json_dict()
        assert record["reproduced"] is True
        assert record["outcome"] == "invariant"
        assert record["digest"] == record["expected_digest"]


# ----------------------------------------------------------------------
# CLI exit codes: 0 reproduced, 3 did not reproduce, 2 unreadable
# ----------------------------------------------------------------------
class TestReplayCli:
    def test_reproduced_exits_zero(self, monkeypatch, tmp_path, capsys):
        _result, path = capture_failure(monkeypatch, tmp_path)
        assert main(["replay", str(path)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_not_reproduced_exits_three(self, monkeypatch, tmp_path):
        _result, path = capture_failure(monkeypatch, tmp_path)
        bundle = json.loads(path.read_text())
        bundle["digest"] = "0" * 16
        path.write_text(json.dumps(bundle))
        assert main(["replay", str(path)]) == 3

    def test_unreadable_bundle_exits_two(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("not json")
        assert main(["replay", str(path)]) == 2
        assert "bundle" in capsys.readouterr().err.lower()

    def test_json_output(self, monkeypatch, tmp_path, capsys):
        _result, path = capture_failure(monkeypatch, tmp_path)
        assert main(["replay", str(path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["reproduced"] is True
        assert record["name"] == "sidedness_ablation"


# ----------------------------------------------------------------------
# rng derivation-label capture (the bundle's randomness provenance)
# ----------------------------------------------------------------------
class TestLabelCapture:
    def test_labels_recorded_between_start_and_stop(self):
        rng_utils.start_label_capture()
        try:
            rng_utils.derive_seed(1, "experiment", 7)
            labels = list(rng_utils._capture_labels)
        finally:
            rng_utils.stop_label_capture()
        assert labels == ["1/experiment/7"]
        rng_utils.derive_seed(1, "after-stop")
        assert rng_utils._capture_labels is None

    def test_capture_is_capped(self):
        rng_utils.start_label_capture()
        try:
            for i in range(rng_utils._CAPTURE_CAP + 50):
                rng_utils.derive_seed(0, "spin", i)
            assert len(rng_utils._capture_labels) == rng_utils._CAPTURE_CAP
        finally:
            rng_utils.stop_label_capture()
