"""Tests for repro.utils: RNG derivation, units, validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
    derive_rng,
    derive_seed,
    gibibytes,
    mebibytes,
    spawn_rngs,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b") — the separator guarantees it.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_always_in_64bit_range(self, root, label):
        seed = derive_seed(root, label)
        assert 0 <= seed < 2**64


class TestDeriveRng:
    def test_same_stream(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_streams(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, ["p", "q"])
        assert len(rngs) == 2
        assert not np.array_equal(rngs[0].random(4), rngs[1].random(4))


class TestUnits:
    def test_mebibytes(self):
        assert mebibytes(1) == 1024 * 1024

    def test_gibibytes(self):
        assert gibibytes(2) == 2 * 1024**3


class TestValidation:
    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_positive_accepts(self):
        check_positive("x", 0.1)

    def test_check_probability_bounds(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)

    def test_check_in_range(self):
        check_in_range("v", 5, 1, 10)
        with pytest.raises(ValueError):
            check_in_range("v", 11, 1, 10)

    def test_check_power_of_two(self):
        check_power_of_two("n", 8)
        for bad in (0, -4, 3, 12):
            with pytest.raises(ValueError):
                check_power_of_two("n", bad)
