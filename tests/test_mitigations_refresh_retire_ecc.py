"""Tests for refresh scaling, row retirement, and ECC evaluation glue."""

import pytest

from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1066, DDR3_1333
from repro.mitigations import (
    attack_budget,
    eliminating_multiplier_rounded,
    flip_histogram_from_hammer,
    multi_flip_word_fraction,
    multiplier_to_eliminate,
    refresh_cost,
    residual_flips,
    sweep_costs,
    retire_vulnerable_rows,
)

GEO = DramGeometry(banks=2, rows=512, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.05, hc_first_median=3_000, hc_first_min=800)


def make_module(seed=9):
    return DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=seed)


class TestRefreshScaling:
    def test_budget_shrinks_with_multiplier(self):
        assert attack_budget(DDR3_1066, 2.0) == attack_budget(DDR3_1066, 1.0) // 2

    def test_paper_seven_x_claim(self):
        # hc_min = 165K at the 2013 calibration, 55 ns tRC -> ~7x.
        k = multiplier_to_eliminate(165_000, DDR3_1066)
        assert 6.5 < k < 7.5

    def test_rounded_multiplier(self):
        assert eliminating_multiplier_rounded(165_000, DDR3_1066) == 8 or (
            eliminating_multiplier_rounded(165_000, DDR3_1066) == 7
        )

    def test_cost_scales_linearly(self):
        c1 = refresh_cost(DDR3_1333, 1.0)
        c4 = refresh_cost(DDR3_1333, 4.0)
        assert c4.bandwidth_overhead == pytest.approx(4 * c1.bandwidth_overhead)
        assert c4.refresh_energy_factor == 4.0

    def test_sweep_monotonic(self):
        costs = sweep_costs(DDR3_1333)
        budgets = [c.budget for c in costs]
        assert budgets == sorted(budgets, reverse=True)

    def test_elimination_denies_budget(self):
        k = multiplier_to_eliminate(PROFILE.hc_first_min, DDR3_1333)
        assert attack_budget(DDR3_1333, k * 1.01) < PROFILE.hc_first_min


class TestRetirement:
    def test_retire_then_no_residual_at_test_pressure(self):
        module = make_module()
        rows = range(64, 256)
        result = retire_vulnerable_rows(module, 0, rows, test_pressure=50_000)
        assert len(result.retired_rows) > 0
        assert residual_flips(module, 0, rows, result.retired_rows, field_pressure=50_000) == 0

    def test_field_pressure_above_test_escapes(self):
        # The structural weakness: a field attacker with double-sided
        # budget beats a single-sided test budget.  A sparse profile so
        # that rows genuinely differ in their weakest cell.
        sparse = VulnerabilityProfile(
            weak_cell_density=0.002, hc_first_median=3_000, hc_first_min=800
        )
        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=sparse, seed=9)
        rows = range(64, 256)
        result = retire_vulnerable_rows(module, 0, rows, test_pressure=1_500)
        escapes = residual_flips(module, 0, rows, result.retired_rows, field_pressure=60_000)
        assert escapes > 0

    def test_spare_exhaustion(self):
        module = make_module()
        result = retire_vulnerable_rows(module, 0, range(0, 400), test_pressure=1e9, spare_budget=5)
        assert result.spares_exhausted
        assert len(result.retired_rows) == 5


class TestEccEvalGlue:
    def test_histogram_has_multi_flip_words(self):
        module = make_module()
        hist = flip_histogram_from_hammer(module, 0, victim_count=60, pressure=100_000)
        assert sum(hist.values()) > 0
        assert multi_flip_word_fraction(hist) >= 0.0

    def test_histogram_empty_for_invulnerable(self):
        from repro.dram import INVULNERABLE

        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=INVULNERABLE, seed=1)
        hist = flip_histogram_from_hammer(module, 0, victim_count=10, pressure=100_000)
        assert hist == {}
        assert multi_flip_word_fraction(hist) == 0.0
