"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import derive_seed, registry


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    def test_run_flags(self):
        args = build_parser().parse_args(["run", "c5", "--seed", "7", "--json"])
        assert args.names == ["c5"] and args.seed == 7 and args.json

    def test_run_accepts_many_names_and_parallel(self):
        args = build_parser().parse_args(["run", "c5", "sidedness", "--parallel", "2"])
        assert args.names == ["c5", "sidedness"] and args.parallel == 2

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "fig1_error_rates", "--seeds", "8", "--parallel", "4"])
        assert args.name == "fig1_error_rates"
        assert args.seeds == 8 and args.parallel == 4

    def test_canonical_and_alias_names_both_accepted(self):
        parser = build_parser()
        assert parser.parse_args(["run", "f1"]).names == ["f1"]
        assert parser.parse_args(["run", "fig1_error_rates"]).names == ["fig1_error_rates"]


class TestCommands:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        for alias in ("f1", "c10-c11", "trr-bypass"):
            assert alias in out

    def test_list_markdown_is_the_index_table(self, capsys):
        assert main(["list", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| Experiment |")
        assert "`fig1_error_rates`" in out and "`f1`" in out

    def test_list_tag_filter(self, capsys):
        assert main(["list", "--tag", "flash"]) == 0
        out = capsys.readouterr().out
        assert "fcr_study" in out and "pcm_study" not in out

    def test_describe(self, capsys):
        assert main(["describe", "c5"]) == 0
        out = capsys.readouterr().out
        assert "PARA" in out and "para_reliability" in out

    def test_describe_lists_params(self, capsys):
        assert main(["describe", "isolation_violations"]) == 0
        out = capsys.readouterr().out
        assert "reads" in out and "2600000" in out

    def test_run_text(self, capsys):
        assert main(["run", "c5"]) == 0
        out = capsys.readouterr().out
        assert "rows" in out and "disk_afr" in out

    def test_run_json_parses(self, capsys):
        assert main(["run", "c5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "rows" in payload
        assert payload["rows"][0]["p"] == pytest.approx(2e-4)

    def test_run_by_canonical_name(self, capsys):
        assert main(["run", "para_reliability", "--json"]) == 0
        assert "rows" in json.loads(capsys.readouterr().out)

    def test_run_seed_forwarded(self, capsys):
        assert main(["run", "sidedness", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["double_flips"] > 0

    def test_run_record_wraps_payload_in_provenance(self, capsys):
        assert main(["run", "c12", "--seed", "5", "--record", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["name"] == "twostep_study"
        assert record["seed"] == 5
        assert record["duration_s"] > 0
        assert "exposed_errors" in record["payload"]

    def test_registry_covers_every_bench_family(self):
        # Every experiment index entry (F1, C2..C14) stays invocable.
        names = set(registry.invocable_names())
        for required in ("f1", "c2", "c3", "c4", "c5", "c6", "c7", "c8",
                         "c9", "c10-c11", "c12", "c13", "c14"):
            assert required in names


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "c5", "--output", str(output)]) == 0
        text = output.read_text()
        assert text.startswith("# repro experiment report")
        assert "## Environment" in text and "## Results" in text
        assert "| para_reliability | - | ok |" in text  # seedless experiment

    def test_report_many_experiments_round_trip(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "c12", "sidedness", "--seed", "2",
                     "--output", str(output)]) == 0
        text = output.read_text()
        assert "twostep_study" in text and "sidedness_ablation" in text
        assert "| sidedness_ablation | 2 | ok |" in text

    def test_report_propagates_inner_errors(self, tmp_path, capsys):
        # Regression: the old _write_report swallowed TypeError and
        # re-ran without a seed; inner errors must now surface.  With
        # the fault-tolerant batch runner they surface as an errored
        # result, a stderr report, and a nonzero exit — never silently.
        from repro.experiments import experiment

        @experiment("_report_probe", "raises inside", section="II", tags=("test",))
        def _report_probe(seed: int = 0):
            raise TypeError("inner failure")

        try:
            assert main(["report", "_report_probe",
                         "--output", str(tmp_path / "r.md")]) == 1
        finally:
            registry.unregister("_report_probe")
        captured = capsys.readouterr()
        assert "TypeError: inner failure" in captured.err
        assert "1/1 jobs failed" in captured.err
        assert "TypeError: inner failure" in (tmp_path / "r.md").read_text()


class TestSweepCommand:
    def test_sweep_runs_and_caches(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["sweep", "c12", "--seeds", "3", "--cache-dir", str(cache)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "3 seeds" in out and "(0 cache hits, 0 errors)" in out
        assert len(list((cache / "twostep_study").glob("*.json"))) == 3
        assert main(argv) == 0
        assert "(3 cache hits, 0 errors)" in capsys.readouterr().out

    def test_sweep_json_round_trip(self, tmp_path, capsys):
        assert main(["sweep", "c12", "--seeds", "2", "--json",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert [r["seed"] for r in records] == [derive_seed(0, 0), derive_seed(0, 1)]
        for record in records:
            assert record["name"] == "twostep_study"
            assert record["duration_s"] > 0
            assert "exposed_errors" in record["payload"]

    def test_sweep_seeds_are_deterministic_across_runs(self, tmp_path, capsys):
        argv = ["sweep", "sidedness", "--seeds", "2", "--json", "--no-cache"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert [r["payload"] for r in first] == [r["payload"] for r in second]

    def test_sweep_rejects_seedless_experiment(self, capsys):
        assert main(["sweep", "c5", "--seeds", "2", "--no-cache"]) == 2
        assert "takes no seed" in capsys.readouterr().err

    def test_sweep_timeout_flags_failed_jobs(self, tmp_path, capsys):
        from repro.experiments.registry import experiment, unregister

        @experiment("_cli_hang", "sleeps forever", section="II", tags=("test",))
        def _cli_hang(seed: int = 0):
            import time

            time.sleep(30)

        try:
            assert main(["sweep", "_cli_hang", "--seeds", "1", "--no-cache",
                         "--timeout", "0.2"]) == 1
        finally:
            unregister("_cli_hang")
        captured = capsys.readouterr()
        assert "1 timeouts" in captured.out
        assert "JobTimeout" in captured.err

    def test_sweep_resume_needs_a_checkpoint(self, capsys):
        assert main(["sweep", "c12", "--seeds", "2", "--no-cache",
                     "--resume"]) == 2
        assert "--resume needs a checkpoint" in capsys.readouterr().err

    def test_sweep_resume_restores_from_checkpoint_without_cache(
            self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.jsonl"
        argv = ["sweep", "c12", "--seeds", "2", "--no-cache",
                "--checkpoint", str(ckpt)]
        assert main(argv) == 0
        capsys.readouterr()
        assert ckpt.is_file()
        assert main(argv + ["--resume"]) == 0
        # Restored jobs report as hits even though the cache is off.
        assert "(2 cache hits, 0 errors)" in capsys.readouterr().out


class TestChaosCommand:
    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("kill", "hang", "exc", "torn", "ledger", "combined"):
            assert name in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["chaos", "nope"]) == 2
        assert "unknown chaos scenario" in capsys.readouterr().err

    def test_exc_scenario_via_cli(self, tmp_path, capsys):
        assert main(["chaos", "exc", "--workdir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "PASS  exc" in captured.out
        assert "recovered clean" in captured.err

    def test_json_output(self, tmp_path, capsys):
        assert main(["chaos", "ledger", "--json",
                     "--workdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        body = json.loads(out)
        assert body[0]["name"] == "ledger"
        assert body[0]["passed"] is True


class TestNewSubcommands:
    def test_test_module_vulnerable_exit_code(self, capsys):
        assert main(["test-module", "--manufacturer", "B", "--date", "2013.0"]) == 1
        out = capsys.readouterr().out
        assert "VULNERABLE" in out

    def test_test_module_clean_exit_code(self, capsys):
        assert main(["test-module", "--manufacturer", "A", "--date", "2009.0"]) == 0
        out = capsys.readouterr().out
        assert "no RowHammer errors" in out

    def test_test_module_refresh_multiplier_helps(self, capsys):
        main(["test-module", "--manufacturer", "B", "--date", "2013.0"])
        base = capsys.readouterr().out
        main(["test-module", "--manufacturer", "B", "--date", "2013.0",
              "--refresh-multiplier", "8"])
        scaled = capsys.readouterr().out
        base_errors = int(base.split("errors: ")[1].split(" ")[0])
        scaled_errors = int(scaled.split("errors: ")[1].split(" ")[0])
        assert scaled_errors < base_errors

    def test_vref_experiment_registered(self, capsys):
        assert main(["run", "vref", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tuned_errors"] < payload["factory_errors"]


class TestTelemetryCommands:
    def _run_with_metrics(self, tmp_path, capsys, extra=()):
        out = tmp_path / "metrics.json"
        argv = ["run", "rowhammer_basic", "--metrics",
                "--metrics-out", str(out), "--json", *extra]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        return out, payload

    def test_run_metrics_snapshot_matches_payload(self, tmp_path, capsys):
        out, payload = self._run_with_metrics(tmp_path, capsys)
        record = json.loads(out.read_text())
        assert record["command"] == "run"
        assert record["names"] == ["rowhammer_basic"]
        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry.from_snapshot(record["metrics"])
        # the acceptance cross-check: counters == the experiment's own figures
        assert reg.total("dram_activations_total") == payload["activations"]
        assert reg.total("dram_refreshes_total") == payload["refreshes"]
        assert reg.total("dram_bit_flips_total") == payload["bit_flips"]

    def test_stats_prometheus_renders_counters(self, tmp_path, capsys):
        out, payload = self._run_with_metrics(tmp_path, capsys)
        assert main(["stats", "--input", str(out), "--format", "prometheus"]) == 0
        text = capsys.readouterr().out
        assert f'dram_activations_total{{bank="0"}} {payload["activations"]}' in text
        assert "# TYPE dram_activations_total counter" in text
        assert 'runner_jobs_total{cache_hit="false",outcome="ok"} 1' in text

    def test_stats_table_and_json(self, tmp_path, capsys):
        out, _ = self._run_with_metrics(tmp_path, capsys)
        assert main(["stats", "--input", str(out)]) == 0
        table = capsys.readouterr().out
        assert "# run: rowhammer_basic" in table
        assert "dram_flips_per_event" in table
        assert main(["stats", "--input", str(out), "--format", "json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["metrics"]["counters"]

    def test_stats_missing_input_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", "--input", str(tmp_path / "nope.json")]) == 2
        assert "hint" in capsys.readouterr().err

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "rowhammer_basic", "--output", str(out)]) == 0
        err = capsys.readouterr().err
        assert "job_start=1" in err and "job_end=1" in err
        events = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {e["kind"] for e in events}
        assert {"job_start", "activate", "refresh", "job_end"} <= kinds
        from repro.telemetry import runtime as telem

        assert not telem.trace_on  # the command turned tracing back off

    def test_trace_spill_bounds_memory(self, tmp_path, capsys):
        spill = tmp_path / "spill.jsonl"
        assert main(["trace", "rowhammer_basic", "--buffer", "64",
                     "--spill", str(spill)]) == 0
        err = capsys.readouterr().err
        assert "0 dropped" in err
        assert len(spill.read_text().splitlines()) > 64


class TestProfileCommand:
    def test_profile_prints_span_tree(self, capsys):
        assert main(["profile", "rowhammer_basic", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "# rowhammer_basic · seed 1" in out
        assert "job{name=rowhammer_basic}" in out
        assert "dram.execute" in out
        from repro.telemetry import runtime as telem

        assert not telem.spans_on  # the command turned profiling back off

    def test_profile_json(self, capsys):
        assert main(["profile", "rowhammer_basic", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["name"] == "rowhammer_basic"
        assert body["duration_s"] > 0
        assert body["coverage_s"] == pytest.approx(body["duration_s"], rel=0.05)
        paths = [entry["path"] for entry in body["profile"]["spans"]]
        assert ["job{name=rowhammer_basic}"] in paths

    def test_profile_folded_to_file(self, tmp_path, capsys):
        out = tmp_path / "folded.txt"
        assert main(["profile", "rowhammer_basic", "--folded", str(out)]) == 0
        folded = out.read_text()
        assert folded.startswith("job{name=rowhammer_basic}")
        # every line is "stack <integer-microseconds>"
        for line in folded.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 0

    def test_profile_folded_to_stdout(self, capsys):
        assert main(["profile", "rowhammer_basic", "--folded", "-"]) == 0
        out = capsys.readouterr().out
        assert "job{name=rowhammer_basic};" in out


class TestServeMetricsDegrade:
    def test_busy_port_warns_and_run_continues(self, capsys):
        """A busy exporter port must not kill the batch: warn once on
        stderr and run without the live exporter."""
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            assert main(["run", "c5", "--serve-metrics", str(port)]) == 0
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert f"warning: cannot serve metrics on port {port}" in captured.err
        assert "continuing without the live exporter" in captured.err
        assert "rows" in captured.out  # the experiment still ran

    def test_port_zero_prints_resolved_ephemeral_port(self, capsys):
        assert main(["run", "c5", "--serve-metrics", "0"]) == 0
        err = capsys.readouterr().err
        assert "serving metrics at http://127.0.0.1:" in err
        assert ":0/metrics" not in err  # the *bound* port, not the request


class TestServiceVerbs:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port is None  # resolved to the default at dispatch
        assert args.state_dir == ".repro-service"
        assert args.workers == 2 and args.max_queue == 64

    def test_submit_parser_flags(self):
        args = build_parser().parse_args(
            ["submit", "sidedness_ablation", "--seeds", "4", "--base-seed",
             "7", "--param", "k=1", "--wait", "--state-dir", "sd"])
        assert args.command == "submit"
        assert args.name == "sidedness_ablation"
        assert args.seeds == 4 and args.base_seed == 7
        assert args.param == ["k=1"] and args.wait

    def test_submit_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "nonexistent"])

    def test_jobs_parser_flags(self):
        args = build_parser().parse_args(["jobs", "abc123", "--cancel"])
        assert args.command == "jobs"
        assert args.sid == "abc123" and args.cancel

    def test_submit_without_a_daemon_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["submit", "sidedness_ablation", "--seed", "1",
                   "--state-dir", str(tmp_path / "nowhere")])
        assert rc == 2
        assert "no running service" in capsys.readouterr().err

    def test_jobs_without_a_daemon_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["jobs", "--state-dir", str(tmp_path / "nowhere")])
        assert rc == 2
        assert "no running service" in capsys.readouterr().err
