"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    def test_run_flags(self):
        args = build_parser().parse_args(["run", "c5", "--seed", "7", "--json"])
        assert args.name == "c5" and args.seed == 7 and args.json


class TestCommands:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_describe(self, capsys):
        assert main(["describe", "c5"]) == 0
        out = capsys.readouterr().out
        assert "PARA" in out

    def test_run_text(self, capsys):
        assert main(["run", "c5"]) == 0
        out = capsys.readouterr().out
        assert "rows" in out and "disk_afr" in out

    def test_run_json_parses(self, capsys):
        assert main(["run", "c5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "rows" in payload
        assert payload["rows"][0]["p"] == pytest.approx(2e-4)

    def test_run_seed_forwarded(self, capsys):
        assert main(["run", "sidedness", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["double_flips"] > 0

    def test_registry_covers_every_bench_family(self):
        # Every experiment index entry (F1, C2..C14) has a CLI entry.
        names = set(EXPERIMENTS)
        for required in ("f1", "c2", "c3", "c4", "c5", "c6", "c7", "c8",
                         "c9", "c10-c11", "c12", "c13", "c14"):
            assert required in names


class TestNewSubcommands:
    def test_test_module_vulnerable_exit_code(self, capsys):
        assert main(["test-module", "--manufacturer", "B", "--date", "2013.0"]) == 1
        out = capsys.readouterr().out
        assert "VULNERABLE" in out

    def test_test_module_clean_exit_code(self, capsys):
        assert main(["test-module", "--manufacturer", "A", "--date", "2009.0"]) == 0
        out = capsys.readouterr().out
        assert "no RowHammer errors" in out

    def test_test_module_refresh_multiplier_helps(self, capsys):
        main(["test-module", "--manufacturer", "B", "--date", "2013.0"])
        base = capsys.readouterr().out
        main(["test-module", "--manufacturer", "B", "--date", "2013.0",
              "--refresh-multiplier", "8"])
        scaled = capsys.readouterr().out
        base_errors = int(base.split("errors: ")[1].split(" ")[0])
        scaled_errors = int(scaled.split("errors: ")[1].split(" ")[0])
        assert scaled_errors < base_errors

    def test_report_writes_markdown(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "c5", "--output", str(output)]) == 0
        text = output.read_text()
        assert text.startswith("# repro experiment report")
        assert "## c5" in text

    def test_vref_experiment_registered(self, capsys):
        assert main(["run", "vref", "--json"]) == 0
        import json as _json
        payload = _json.loads(capsys.readouterr().out)
        assert payload["tuned_errors"] < payload["factory_errors"]
