"""Tests for the extension features: FR-FCFS, WARM, PCM mapping-aware
attacks, SoftMC canned studies, and the TRR bypass experiment."""

import pytest

from repro.controller import FrFcfsScheduler, CommandScheduler, MemRequest
from repro.experiments import trr_bypass_study
from repro.dram.timing import DDR3_1333
from repro.flash.mitigations import warm_study
from repro.pcm import lifetime_under_mapping_aware_attack, lifetime_under_pinned_attack


class TestFrFcfs:
    def _interleaved_two_rows(self, n=200):
        # Alternating rows in one bank arriving close together: FCFS
        # thrashes the row buffer; FR-FCFS can batch row hits.
        reqs = []
        for i in range(n):
            reqs.append(MemRequest(arrival_ns=i * 2.0, bank=0, row=(i % 2) * 50))
        return reqs

    def test_beats_fcfs_on_interleaved_rows(self):
        frfcfs = FrFcfsScheduler(banks=2, timing=DDR3_1333, window=16)
        fr_stats = frfcfs.execute(self._interleaved_two_rows())
        fcfs = CommandScheduler(banks=2, timing=DDR3_1333)
        fc_stats = fcfs.execute(self._interleaved_two_rows())
        assert fr_stats.hit_rate > fc_stats.hit_rate
        assert fr_stats.finish_ns < fc_stats.finish_ns

    def test_window_one_degenerates_to_fcfs(self):
        frfcfs = FrFcfsScheduler(banks=2, timing=DDR3_1333, window=1)
        fr_stats = frfcfs.execute(self._interleaved_two_rows())
        fcfs = CommandScheduler(banks=2, timing=DDR3_1333)
        fc_stats = fcfs.execute(self._interleaved_two_rows())
        assert fr_stats.hit_rate == pytest.approx(fc_stats.hit_rate, abs=0.02)

    def test_all_requests_served(self):
        frfcfs = FrFcfsScheduler(banks=2, timing=DDR3_1333)
        reqs = self._interleaved_two_rows(100)
        stats = frfcfs.execute(reqs)
        assert stats.requests == 100
        assert all(r.completed_ns >= 0 for r in reqs)

    def test_attacker_pattern_gets_no_hits(self):
        # The hammer pattern alternates rows by construction: FR-FCFS
        # cannot coalesce it — why scheduling is not a defense.
        frfcfs = FrFcfsScheduler(banks=2, timing=DDR3_1333, window=4)
        reqs = [MemRequest(arrival_ns=i * 60.0, bank=0, row=(i % 2) * 2 + 99) for i in range(100)]
        stats = frfcfs.execute(reqs)
        # A handful of coalesced pairs at queue build-up is expected;
        # the overwhelming majority of accesses still open a row.
        assert stats.hit_rate < 0.15
        assert stats.row_misses > 80

    def test_bank_bounds(self):
        frfcfs = FrFcfsScheduler(banks=2, timing=DDR3_1333)
        with pytest.raises(IndexError):
            frfcfs.execute([MemRequest(arrival_ns=0.0, bank=7, row=0)])


class TestWarm:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return warm_study(wordlines=4, cells=1024, tolerance=1000)

    def test_fcr_extends_cold_lifetime(self, outcomes):
        assert outcomes["fcr"].device_lifetime_pe > outcomes["baseline"].device_lifetime_pe

    def test_warm_relaxes_hot_partition(self, outcomes):
        assert outcomes["warm"].hot_lifetime_pe > outcomes["baseline"].hot_lifetime_pe

    def test_warm_fcr_cuts_refresh_wear(self, outcomes):
        assert outcomes["warm+fcr"].refresh_wear_fraction < outcomes["fcr"].refresh_wear_fraction
        assert outcomes["warm+fcr"].device_lifetime_pe >= outcomes["fcr"].device_lifetime_pe * 0.99

    def test_device_lifetime_is_min(self, outcomes):
        warm = outcomes["warm"]
        assert warm.device_lifetime_pe == min(warm.hot_lifetime_pe, warm.cold_lifetime_pe)

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            warm_study(hot_write_fraction=1.5)


class TestPcmMappingAwareAttack:
    def test_plain_startgap_collapses(self):
        # The chase defeats deterministic Start-Gap: lifetime near the
        # bare single-line endurance, far from the leveled ideal.
        chased = lifetime_under_mapping_aware_attack(
            n_logical=32, endurance_mean=5_000, randomize=False, seed=2
        )
        leveled = lifetime_under_pinned_attack(
            n_logical=32, endurance_mean=5_000, leveling="startgap", seed=2
        )
        assert chased < leveled / 5

    def test_randomization_restores_leveling(self):
        plain = lifetime_under_mapping_aware_attack(
            n_logical=32, endurance_mean=5_000, randomize=False, seed=3
        )
        randomized = lifetime_under_mapping_aware_attack(
            n_logical=32, endurance_mean=5_000, randomize=True, seed=3
        )
        assert randomized > 3 * plain


class TestRaidrInteraction:
    def test_slow_bin_opens_headroom(self):
        from repro.experiments import raidr_rowhammer_interaction

        result = raidr_rowhammer_interaction(seed=0)
        assert result["flips"]["uniform-64ms"] == 0
        assert result["flips"]["raidr-bin2"] > 0


class TestMultiRateRefreshEngine:
    def test_row_bins_shape_validated(self):
        import numpy as np

        from repro.controller import RefreshEngine
        from repro.core.scenarios import scaled_scenario

        module = scaled_scenario().make_module(seed=0)
        with pytest.raises(ValueError):
            RefreshEngine(module, row_bins=np.zeros(10, dtype=np.int64))

    def test_slow_bins_cut_refresh_ops(self):
        import numpy as np

        from repro.controller import RefreshEngine
        from repro.core.scenarios import scaled_scenario

        scenario = scaled_scenario()
        uniform = RefreshEngine(scenario.make_module(serial="u", seed=0))
        bins = np.full(scenario.geometry.rows, 2, dtype=np.int64)
        binned = RefreshEngine(scenario.make_module(serial="b", seed=0), row_bins=bins)
        horizon = uniform.interval_ns * 4 * scenario.geometry.rows
        uniform.tick(horizon)
        binned.tick(horizon)
        assert binned.stats.rows_refreshed < uniform.stats.rows_refreshed / 2


class TestTrrBypass:
    @pytest.fixture(scope="class")
    def rows(self):
        return trr_bypass_study(n_pairs_list=(1, 4), tracker_entries=2, seed=0)

    def test_single_pair_protected(self, rows):
        assert rows[0]["flips"] == 0

    def test_many_pairs_bypass(self, rows):
        assert rows[1]["flips"] > 0

    def test_trr_kept_firing(self, rows):
        for row in rows:
            assert row["targeted_refreshes"] > 0
