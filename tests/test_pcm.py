"""Tests for the PCM substrate and Start-Gap wear leveling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm import PcmArray, StartGap, lifetime_under_pinned_attack


class TestPcmArray:
    def test_write_accumulates(self):
        arr = PcmArray(lines=4, endurance_mean=100, seed=1)
        arr.write(0, 50)
        assert arr.writes[0] == 50
        assert not arr.any_failed

    def test_failure_detection(self):
        arr = PcmArray(lines=4, endurance_mean=100, endurance_sigma=0.01, seed=1)
        arr.write(2, 100_000)
        assert arr.any_failed
        assert 2 in arr.failed_lines()

    def test_endurance_variation(self):
        arr = PcmArray(lines=1000, endurance_mean=1e6, endurance_sigma=0.2, seed=2)
        assert arr.endurance.std() > 0

    def test_bounds(self):
        arr = PcmArray(lines=4, seed=0)
        with pytest.raises(IndexError):
            arr.write(4)
        with pytest.raises(ValueError):
            arr.write(0, -1)


class TestStartGap:
    def test_initial_mapping_identity(self):
        arr = PcmArray(lines=9, seed=3)
        sg = StartGap(arr, gap_period=4)
        assert [sg.physical_of(i) for i in range(8)] == list(range(8))

    def test_mapping_stays_bijective(self):
        arr = PcmArray(lines=17, endurance_mean=1e12, seed=4)
        sg = StartGap(arr, gap_period=2)
        for i in range(500):
            sg.write(i % 16)
            mapping = sg.mapping_snapshot()
            assert len(set(mapping.tolist())) == 16  # injective
            assert all(0 <= p <= 16 for p in mapping)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20)
    def test_gap_moves_on_schedule(self, writes):
        arr = PcmArray(lines=9, endurance_mean=1e12, seed=5)
        sg = StartGap(arr, gap_period=4)
        sg.write(0, writes)
        assert sg.gap_moves == writes // 4

    def test_relocation_costs_one_write(self):
        arr = PcmArray(lines=9, endurance_mean=1e12, seed=6)
        sg = StartGap(arr, gap_period=4)
        sg.write(0, 4)  # triggers exactly one gap move
        # 4 attacker writes + 1 relocation copy.
        assert arr.total_writes == 5

    def test_randomized_layer_is_bijection(self):
        arr = PcmArray(lines=33, endurance_mean=1e12, seed=7)
        sg = StartGap(arr, gap_period=4, randomize=True, seed=7)
        physicals = {sg.physical_of(i) for i in range(32)}
        assert len(physicals) == 32


class TestWearAttack:
    def test_startgap_extends_lifetime_dramatically(self):
        bare = lifetime_under_pinned_attack(
            n_logical=32, endurance_mean=5_000, leveling=None, seed=8
        )
        leveled = lifetime_under_pinned_attack(
            n_logical=32, endurance_mean=5_000, leveling="startgap", seed=8
        )
        assert leveled > 10 * bare
        # Near-ideal: lifetime approaches n_logical x endurance.
        assert leveled > 0.3 * 32 * 5_000

    def test_bare_lifetime_is_single_line_endurance(self):
        bare = lifetime_under_pinned_attack(
            n_logical=32, endurance_mean=5_000, leveling=None, seed=9
        )
        assert bare == pytest.approx(5_000, rel=0.3)

    def test_randomized_comparable_to_plain_for_pinned(self):
        plain = lifetime_under_pinned_attack(
            n_logical=32, endurance_mean=5_000, leveling="startgap", seed=10
        )
        rand = lifetime_under_pinned_attack(
            n_logical=32, endurance_mean=5_000, leveling="startgap-rand", seed=10
        )
        assert 0.5 < rand / plain < 2.0
