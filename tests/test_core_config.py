"""Tests for the serializable SystemConfig."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig


class TestSystemConfig:
    def test_roundtrip_dict(self):
        config = SystemConfig(mitigation="para", mitigation_kwargs={"p": 0.02})
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_roundtrip_json(self):
        config = SystemConfig(manufacturer="A", date=2012.5, refresh_multiplier=4.0)
        assert SystemConfig.from_json(config.to_json()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            SystemConfig.from_dict({"bogus": 1})

    def test_invalid_manufacturer(self):
        with pytest.raises(ValueError):
            SystemConfig(manufacturer="Z")

    def test_invalid_mitigation(self):
        with pytest.raises(ValueError):
            SystemConfig(mitigation="magic")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=0)

    def test_build_produces_working_system(self):
        config = SystemConfig(mitigation="para", mitigation_kwargs={"p": 0.05}, seed=3)
        system = config.build()
        flips = system.hammer_double_sided(victim=500, iterations=5_000)
        assert flips == 0
        assert system.report().mitigation_refreshes > 0

    def test_build_deterministic_given_config(self):
        config = SystemConfig(seed=9)
        a = config.build().hammer_double_sided(victim=600, iterations=30_000)
        b = config.build().hammer_double_sided(victim=600, iterations=30_000)
        assert a == b

    @given(
        st.sampled_from(["A", "B", "C"]),
        st.floats(min_value=2008.0, max_value=2014.9),
        st.sampled_from(["none", "para", "cra", "anvil", "trr"]),
        st.floats(min_value=0.5, max_value=8.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_json_roundtrip_property(self, mfr, date, mitigation, multiplier, seed):
        config = SystemConfig(
            manufacturer=mfr,
            date=date,
            mitigation=mitigation,
            refresh_multiplier=multiplier,
            seed=seed,
        )
        assert SystemConfig.from_json(config.to_json()) == config
