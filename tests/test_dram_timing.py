"""Tests for DDR timing parameters."""

import pytest

from repro.dram import DDR3_1066, DDR3_1333, TimingParams


class TestTimingParams:
    def test_max_activations_order_of_magnitude(self):
        # The paper's ceiling: ~1.3M activations per 64 ms window.
        n = DDR3_1333.max_activations_per_refresh_window
        assert 1_200_000 < n < 1_400_000

    def test_ddr3_1066_budget(self):
        # 55 ns tRC -> ~1.16M per window (the worst-case analysis number).
        n = DDR3_1066.max_activations_per_refresh_window
        assert 1_100_000 < n < 1_200_000

    def test_refresh_commands_per_window(self):
        # 64 ms / 7.8 us = 8192 REF commands.
        assert DDR3_1333.refresh_commands_per_window == 8205 or (
            8100 < DDR3_1333.refresh_commands_per_window < 8300
        )

    def test_with_refresh_multiplier_shrinks_window(self):
        scaled = DDR3_1333.with_refresh_multiplier(4)
        assert scaled.tREFW == pytest.approx(DDR3_1333.tREFW / 4)
        assert scaled.tREFI == pytest.approx(DDR3_1333.tREFI / 4)

    def test_multiplier_reduces_budget_proportionally(self):
        base = DDR3_1333.max_activations_per_refresh_window
        scaled = DDR3_1333.with_refresh_multiplier(2).max_activations_per_refresh_window
        assert abs(scaled - base // 2) <= 1

    def test_trc_must_cover_ras_plus_rp(self):
        with pytest.raises(ValueError):
            TimingParams(tRAS=40.0, tRP=15.0, tRC=50.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TimingParams(tCK=0.0)

    def test_multiplier_must_be_positive(self):
        with pytest.raises(ValueError):
            DDR3_1333.with_refresh_multiplier(0)
