"""The report artifact renderer and its integrity gate.

The acceptance contract for the observability layer: a rendered
artifact's per-row flip totals must *exactly* equal the engine's own
flip log, both output formats must be self-contained single files, and
``check_report`` must catch an artifact whose three independently
accumulated flip totals (heat map, provenance, hardware counter)
disagree — before CI uploads it.
"""

from collections import Counter

import pytest

from repro import cli
from repro.dram.bank import DramBank
from repro.dram.differential import (
    DEFAULT_GEOMETRY,
    DEFAULT_PROFILES,
    random_stream,
)
from repro.dram.disturbance import DisturbanceModel
from repro.experiments import ExperimentResult
from repro.report import check_report, render_report
from repro.telemetry import MetricsRegistry, PhysicsCollector
from repro.telemetry import physics as phys

FINGERPRINT = {"git_sha": "deadbeef", "python": "3.x", "numpy": "2.x",
               "hostname": "test", "dram_engine": "columnar"}


@pytest.fixture(autouse=True)
def _clean_physics():
    prev = phys.swap_collector(PhysicsCollector())
    phys.disable_physics()
    yield
    phys.disable_physics()
    phys.swap_collector(prev)


def _hammered_bank():
    """One bank driven with physics on; returns (bank, collector)."""
    collector = phys.enable_physics(fresh=True)
    model = DisturbanceModel(DEFAULT_GEOMETRY, DEFAULT_PROFILES[1], 2)
    bank = DramBank(DEFAULT_GEOMETRY, model, 0,
                    default_pattern="rowstripe", engine="columnar")
    bank.execute(random_stream(2))
    phys.disable_physics()
    assert bank.stats.flips_materialized > 0
    return bank, collector


def _result(payload=None):
    return ExperimentResult(name="rowhammer_basic", payload=payload or {},
                            seed=0, duration_s=0.01)


def _heat_table(markdown: str):
    """Parse the Row heat map table back out of the artifact."""
    lines = iter(markdown.splitlines())
    for line in lines:
        if line.startswith("## Row heat map"):
            break
    rows = {}
    for line in lines:
        if line.startswith("## "):
            break
        if not line.startswith("|") or "---" in line or "bank" in line:
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        rows[(int(cells[0]), int(cells[1]))] = int(cells[4])
    return rows


class TestArtifactMatchesFlipLog:
    """The acceptance criterion: artifact numbers == engine flip log."""

    def test_per_row_flip_totals_equal_the_flip_log(self):
        bank, collector = _hammered_bank()
        text = render_report([_result({"bit_flips": bank.stats.flips_materialized})],
                             physics=collector, fmt="markdown",
                             fingerprint=FINGERPRINT, row_limit=10 ** 6)
        from_log = Counter(entry[0] for entry in bank.stats.flip_log)
        from_artifact = {row: flips
                         for (b, row), flips in _heat_table(text).items()
                         if flips}
        assert from_artifact == dict(from_log)
        assert sum(from_artifact.values()) == bank.stats.flips_materialized

    def test_totals_line_matches(self):
        bank, collector = _hammered_bank()
        text = render_report([_result()], physics=collector, fmt="markdown",
                             fingerprint=FINGERPRINT)
        assert f"{bank.stats.flips_materialized} flips over" in text


class TestRendering:
    def test_markdown_sections(self):
        _, collector = _hammered_bank()
        collector.audit("para", "refresh", 1.0, bank=0, aggressor=5)
        text = render_report([_result()], physics=collector,
                             metrics=MetricsRegistry(), fmt="markdown",
                             fingerprint=FINGERPRINT)
        for section in ("# repro experiment report", "## Environment",
                        "## Results", "## Row heat map", "## Flip provenance",
                        "## Mitigation audit"):
            assert section in text
        assert "deadbeef" in text
        assert "para.refresh" in text

    def test_html_is_self_contained(self):
        _, collector = _hammered_bank()
        text = render_report([_result()], physics=collector, fmt="html",
                             fingerprint=FINGERPRINT)
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text  # CSS inlined
        for external in ("http://", "https://", "src=", "@import"):
            assert external not in text
        for heading in ("Row heat map", "Flip provenance", "Mitigation audit"):
            assert f"<h2>{heading}</h2>" in text

    def test_html_escapes_content(self):
        result = _result()
        bad = ExperimentResult(name="rowhammer_basic", payload=None, seed=0,
                               error="Boom: <script>alert(1)</script>")
        text = render_report([result, bad], fmt="html",
                             fingerprint=FINGERPRINT)
        assert "<script>alert" not in text
        assert "&lt;script&gt;" in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            render_report([_result()], fmt="pdf")

    def test_row_limit_bounds_tables_not_totals(self):
        bank, collector = _hammered_bank()
        text = render_report([_result()], physics=collector, fmt="markdown",
                             fingerprint=FINGERPRINT, row_limit=3)
        assert len(_heat_table(text)) == 3
        assert f"{bank.stats.flips_materialized} flips over" in text


class TestCheckReport:
    def _metrics_with_flips(self, flips: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("dram_bit_flips_total", bank=0).inc(flips)
        return registry

    def test_agreeing_totals_pass(self):
        bank, collector = _hammered_bank()
        metrics = self._metrics_with_flips(bank.stats.flips_materialized)
        assert check_report([_result()], collector, metrics) == []

    def test_empty_results_fail(self):
        assert check_report([], PhysicsCollector())

    def test_empty_physics_fails(self):
        problems = check_report([_result()], PhysicsCollector())
        assert any("empty" in p for p in problems)

    def test_metric_disagreement_fails(self):
        bank, collector = _hammered_bank()
        metrics = self._metrics_with_flips(bank.stats.flips_materialized + 1)
        problems = check_report([_result()], collector, metrics)
        assert any("dram_bit_flips_total" in p for p in problems)

    def test_internal_disagreement_fails(self):
        _, collector = _hammered_bank()
        # Corrupt the heat map only: provenance no longer agrees.
        key = next(iter(collector._heat))
        collector._heat[key][2] += 1
        problems = check_report([_result()], collector)
        assert any("disagree" in p for p in problems)

    def test_errored_jobs_fail(self):
        _, collector = _hammered_bank()
        bad = ExperimentResult(name="rowhammer_basic", payload=None, seed=3,
                               error="RuntimeError: boom")
        problems = check_report([_result(), bad], collector)
        assert any("errored" in p for p in problems)


class TestCliReport:
    def test_markdown_report_with_check(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = cli.main(["report", "rowhammer_basic", "--seeds", "2",
                         "--output", str(out), "--check",
                         "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        text = out.read_text()
        assert text.strip()
        for section in ("## Row heat map", "## Flip provenance",
                        "## Mitigation audit", "## Span tree", "## Metrics"):
            assert section in text
        assert "flip totals agree" in capsys.readouterr().err

    def test_cached_rerun_still_checks(self, tmp_path):
        # Second run resolves every job from the cache; the physics
        # layer must reabsorb the stored snapshots or --check fails.
        args = ["report", "rowhammer_basic", "--seeds", "2",
                "--output", str(tmp_path / "report.md"), "--check",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli.main(args) == 0
        assert cli.main(args) == 0
        assert "cache hit" in (tmp_path / "report.md").read_text()

    def test_html_format_inferred_from_extension(self, tmp_path):
        out = tmp_path / "report.html"
        code = cli.main(["report", "rowhammer_basic", "--seed", "1",
                         "--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
