"""Hardened execution: timeouts, retry classification, pool recovery,
cache corruption quarantine, and SIGINT survivability."""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import (
    ExperimentRunner,
    Job,
    JobTimeout,
    derive_seed,
    error_class,
    execute_job_safe,
    is_retryable,
    retry_backoff_s,
)
from repro.experiments.runner import ResultCache, call_with_deadline
from repro.experiments.registry import experiment, unregister

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool tests rely on fork inheriting the test-registered experiment",
)


@pytest.fixture()
def sleeper():
    """Registered experiment that sleeps `secs` before returning."""

    @experiment("_sleeper_probe", "sleeps on demand", section="II", tags=("test",))
    def _sleeper_probe(secs: float = 0.0, seed: int = 0):
        if secs:
            time.sleep(secs)
        return {"seed": seed}

    yield "_sleeper_probe"
    unregister("_sleeper_probe")


@pytest.fixture()
def transient_then_ok(tmp_path):
    """Experiment that raises ConnectionError until a flag file exists."""
    flag = tmp_path / "recovered"

    @experiment("_transient_probe", "fails until the flag exists",
                section="II", tags=("test",))
    def _transient_probe(seed: int = 0):
        if not flag.exists():
            flag.touch()
            raise ConnectionError("first attempt drops")
        return {"seed": seed}

    yield "_transient_probe"
    unregister("_transient_probe")


@pytest.fixture()
def hard_failures():
    """Experiment raising MemoryError / SystemExit / ValueError by seed."""

    @experiment("_hard_probe", "raises unpleasant things", section="II",
                tags=("test",))
    def _hard_probe(seed: int = 0):
        if seed == 1:
            raise MemoryError("simulated OOM")
        if seed == 2:
            sys.exit(3)
        if seed == 3:
            raise ValueError("plain bug")
        return {"seed": seed}

    yield "_hard_probe"
    unregister("_hard_probe")


class TestClassification:
    def test_error_class_parses_prefix(self):
        assert error_class("ValueError: nope") == "ValueError"
        assert error_class(None) == ""
        assert error_class("JobTimeout: exceeded 1s wall-clock") == "JobTimeout"

    def test_retryable_set(self):
        assert is_retryable("ConnectionError: reset")
        assert is_retryable("OSError: [Errno 5] I/O error")
        assert is_retryable("ChaosTransientError: injected")
        assert not is_retryable("ValueError: bug")
        assert not is_retryable("MemoryError: simulated OOM")
        assert not is_retryable("SystemExit: 3")
        assert not is_retryable("JobTimeout: exceeded 1s wall-clock")

    def test_backoff_is_deterministic_and_bounded(self):
        job = Job("sidedness_ablation", {}, 7)
        first = retry_backoff_s(0.1, job, 1)
        assert first == retry_backoff_s(0.1, job, 1)
        assert 0 < first <= 5.0
        assert retry_backoff_s(0.1, job, 2) != first  # attempt matters
        assert retry_backoff_s(10.0, job, 4) <= 5.0  # capped

    def test_memory_error_and_system_exit_become_results(self, hard_failures):
        oom = execute_job_safe(hard_failures, seed=1)
        assert oom.error.startswith("MemoryError:")
        assert oom.outcome == "error"
        bail = execute_job_safe(hard_failures, seed=2)
        assert bail.error == "SystemExit: 3"
        assert not is_retryable(bail.error)

    def test_system_exit_surfaces_in_job_end_trace(self, hard_failures):
        from repro.telemetry import runtime as telem

        recorder = telem.enable_tracing(fresh=True)
        try:
            execute_job_safe(hard_failures, seed=2)
        finally:
            telem.disable_tracing()
        ends = [e for e in recorder.events() if e.kind == "job_end"]
        assert ends and ends[0].fields["error"].startswith("SystemExit")
        assert ends[0].fields["ok"] is False


class TestTimeouts:
    def test_call_with_deadline_passthrough(self):
        assert call_with_deadline(lambda: 42, None) == 42
        assert call_with_deadline(lambda: 42, 10.0) == 42

    def test_call_with_deadline_raises_job_timeout(self):
        with pytest.raises(JobTimeout):
            call_with_deadline(lambda: time.sleep(5), 0.1)

    def test_serial_timeout_yields_structured_outcome(self, sleeper):
        runner = ExperimentRunner(timeout_s=0.2, collect_metrics=True,
                                  ledger=False)
        results = runner.run([Job(sleeper, {"secs": 5.0}, 0),
                              Job(sleeper, {}, 1)])
        assert len(results) == 2
        assert results[0].outcome == "timeout"
        assert results[0].error.startswith("JobTimeout:")
        assert results[0].payload is None
        assert results[1].ok
        assert runner.metrics.value("runner_jobs_total",
                                    cache_hit="false", outcome="timeout") == 1

    def test_per_job_override_beats_runner_default(self, sleeper):
        runner = ExperimentRunner(timeout_s=0.1, ledger=False)
        results = runner.run([Job(sleeper, {"secs": 0.3}, 0, timeout_s=5.0)])
        assert results[0].ok  # the generous override applied

    def test_timeouts_never_reach_the_cache(self, sleeper, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, timeout_s=0.2,
                                  ledger=False)
        runner.run([Job(sleeper, {"secs": 5.0}, 0)])
        again = ExperimentRunner(cache_dir=tmp_path, ledger=False)
        fresh = again.run([Job(sleeper, {"secs": 0.0}, 0)])
        assert fresh[0].ok and not fresh[0].cache_hit

    @fork_only
    def test_pool_timeout_reclaims_hung_worker(self, sleeper):
        runner = ExperimentRunner(max_workers=2, timeout_s=0.5,
                                  collect_metrics=True, ledger=False)
        jobs = [Job(sleeper, {"secs": 30.0}, 0)] + [
            Job(sleeper, {}, s) for s in (1, 2, 3)
        ]
        start = time.monotonic()
        results = runner.run(jobs)
        assert time.monotonic() - start < 10  # no 30 s hang
        assert len(results) == 4
        assert results[0].outcome == "timeout"
        assert sum(r.ok for r in results) == 3
        assert runner.pool_rebuilds == 1
        assert runner.metrics.value("runner_pool_rebuilds_total") == 1


class TestRetries:
    def test_transient_failure_retries_to_success(self, transient_then_ok):
        runner = ExperimentRunner(retries=2, backoff_s=0.01,
                                  collect_metrics=True, ledger=False)
        results = runner.run([Job(transient_then_ok, {}, 0)])
        assert results[0].ok
        assert runner.retries_total == 1
        assert runner.metrics.value("runner_retries_total",
                                    error="ConnectionError") == 1

    def test_default_zero_retries(self, transient_then_ok):
        runner = ExperimentRunner(ledger=False)
        results = runner.run([Job(transient_then_ok, {}, 0)])
        assert results[0].error.startswith("ConnectionError:")

    def test_nonretryable_failures_never_retry(self, hard_failures):
        runner = ExperimentRunner(retries=5, backoff_s=0.01, ledger=False)
        results = runner.run([Job(hard_failures, {}, 1)])
        assert results[0].error.startswith("MemoryError:")
        assert runner.retries_total == 0

    def test_plain_bugs_never_retry(self, hard_failures):
        runner = ExperimentRunner(retries=5, backoff_s=0.01, ledger=False)
        results = runner.run([Job(hard_failures, {}, 3)])
        assert results[0].error.startswith("ValueError:")
        assert runner.retries_total == 0

    def test_budget_exhaustion_surfaces_the_error(self, tmp_path):
        @experiment("_always_transient", "never recovers", section="II",
                    tags=("test",))
        def _always_transient(seed: int = 0):
            raise ConnectionError("still down")

        try:
            runner = ExperimentRunner(retries=2, backoff_s=0.01, ledger=False)
            results = runner.run([Job("_always_transient", {}, 0)])
            assert results[0].error.startswith("ConnectionError:")
            assert runner.retries_total == 2
        finally:
            unregister("_always_transient")


class TestPoolRecovery:
    @fork_only
    def test_worker_sigkill_rebuilds_and_requeues(self, sleeper, monkeypatch,
                                                  tmp_path):
        victim = derive_seed(0, 0)
        monkeypatch.setenv("REPRO_CHAOS", f"kill:seed={victim}")
        monkeypatch.setenv("REPRO_CHAOS_STATE", str(tmp_path / "state"))
        from repro import chaos
        chaos.reset()
        try:
            runner = ExperimentRunner(max_workers=2, collect_metrics=True,
                                      ledger=False)
            jobs = [Job(sleeper, {}, derive_seed(0, i)) for i in range(4)]
            results = runner.run(jobs)
        finally:
            chaos.reset()
        assert len(results) == 4
        assert all(r.ok for r in results)
        assert runner.pool_rebuilds == 1
        assert runner.metrics.value("runner_pool_rebuilds_total") == 1

    @fork_only
    def test_rebuild_budget_degrades_to_serial(self, sleeper, monkeypatch,
                                               tmp_path):
        # Every worker start dies: rebuilds exhaust, serial finishes.
        monkeypatch.setenv("REPRO_CHAOS", "kill:once=0")
        monkeypatch.setenv("REPRO_CHAOS_STATE", str(tmp_path / "state"))
        from repro import chaos
        chaos.reset()
        try:
            runner = ExperimentRunner(max_workers=2, max_pool_rebuilds=1,
                                      ledger=False)
            jobs = [Job(sleeper, {}, derive_seed(0, i)) for i in range(3)]
            results = runner.run(jobs)
        finally:
            chaos.reset()
        # kill never fires in the parent, so serial execution completes.
        assert len(results) == 3
        assert all(r.ok for r in results)
        assert runner.pool_rebuilds == 1


class TestCacheCorruption:
    def _prime(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, ledger=False)
        result = runner.run_one("sidedness_ablation", seed=4)
        path = runner.cache.path(result.name, result.params, result.seed)
        assert path.is_file()
        return runner, path

    def _assert_quarantined_miss(self, tmp_path, path):
        runner = ExperimentRunner(cache_dir=tmp_path, ledger=False)
        rerun = runner.run_one("sidedness_ablation", seed=4)  # must not raise
        assert rerun.ok and not rerun.cache_hit  # corrupt entry read as a miss
        assert list(path.parent.glob("*.corrupt"))  # and was quarantined
        # The re-run repopulated the entry; a third run hits it cleanly.
        assert runner.run_one("sidedness_ablation", seed=4).cache_hit

    def test_truncated_json_is_quarantined(self, tmp_path):
        _, path = self._prime(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        self._assert_quarantined_miss(tmp_path, path)

    def test_wrong_schema_record_is_quarantined(self, tmp_path):
        _, path = self._prime(tmp_path)
        path.write_text(json.dumps({"something": "else"}))
        self._assert_quarantined_miss(tmp_path, path)

    def test_empty_file_is_quarantined(self, tmp_path):
        _, path = self._prime(tmp_path)
        path.write_text("")
        self._assert_quarantined_miss(tmp_path, path)

    def test_non_object_json_is_quarantined(self, tmp_path):
        _, path = self._prime(tmp_path)
        path.write_text("[1, 2, 3]")
        self._assert_quarantined_miss(tmp_path, path)


class TestCacheWriteSafety:
    def test_tmp_names_are_unique_per_writer(self, tmp_path):
        # The staging name embeds pid + nonce: concurrent writers of the
        # same key can never clobber each other's tmp file.
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(cache_dir=tmp_path, ledger=False)
        result = runner.run_one("sidedness_ablation", seed=0)
        path = cache.path(result.name, result.params, result.seed)
        seen = set()
        real_replace = os.replace

        def spy(src, dst):
            seen.add(os.path.basename(src))
            return real_replace(src, dst)

        os.replace = spy
        try:
            cache.put(result)
            cache.put(result)
        finally:
            os.replace = real_replace
        assert len(seen) == 2  # two writes, two distinct staging names
        assert all(f".tmp.{os.getpid()}." in name for name in seen)
        assert path.is_file()

    def test_stale_tmps_are_swept_on_init(self, tmp_path):
        sub = tmp_path / "sidedness_ablation"
        sub.mkdir()
        stale = sub / "abc.json.tmp.999.dead"
        stale.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = sub / "abc.json.tmp.1000.live"
        fresh.write_text("{")
        ResultCache(tmp_path)
        assert not stale.exists()  # crash leftover removed
        assert fresh.exists()  # live writer untouched


class TestSigintSurvivability:
    def test_interrupted_sweep_loses_no_completed_results(self, tmp_path):
        """SIGINT mid-sweep: completed jobs are flushed; the resumed run
        re-executes only the unfinished remainder (asserted by the
        job-count telemetry in the metrics snapshot)."""
        env = dict(os.environ)
        env.update({
            "PYTHONPATH": str((
                __import__("pathlib").Path(__file__).resolve().parent.parent / "src"
            )),
            "REPRO_LEDGER": "off",
            # One job hangs forever (no seed filter: first claimant).
            "REPRO_CHAOS": "hang:secs=120",
            "REPRO_CHAOS_STATE": str(tmp_path / "state"),
        })
        cache = tmp_path / "cache"
        argv = [sys.executable, "-m", "repro", "sweep", "sidedness_ablation",
                "--seeds", "8", "--parallel", "2", "--cache-dir", str(cache)]
        proc = subprocess.Popen(argv, env=env, start_new_session=True,
                                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                                text=True)
        deadline = time.monotonic() + 30
        checkpoint = cache / "checkpoint.jsonl"
        # Wait until the non-hung jobs have been flushed, then interrupt.
        while time.monotonic() < deadline:
            if checkpoint.is_file() and len(checkpoint.read_text().splitlines()) >= 7:
                break
            time.sleep(0.1)
        os.kill(proc.pid, signal.SIGINT)
        _, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 130, stderr
        assert "resume with --resume" in stderr
        completed = len(checkpoint.read_text().splitlines())
        assert completed == 7  # everything except the hung job

        env.pop("REPRO_CHAOS")  # resume runs clean
        metrics_out = tmp_path / "metrics.json"
        resumed = subprocess.run(
            argv + ["--resume", "--metrics", "--metrics-out", str(metrics_out)],
            env=env, capture_output=True, text=True, timeout=60)
        assert resumed.returncode == 0, resumed.stderr
        snapshot = json.loads(metrics_out.read_text())["metrics"]
        counts = {}
        for entry in snapshot["counters"]:
            if entry["name"] == "runner_jobs_total":
                counts[entry["labels"]["cache_hit"]] = (
                    counts.get(entry["labels"]["cache_hit"], 0) + entry["value"]
                )
        assert counts.get("true", 0) == 7  # restored, not re-executed
        assert counts.get("false", 0) == 1  # only the interrupted job re-ran


class TestSigtermDrain:
    def test_sigterm_drains_with_143_and_resume_hint(self, tmp_path):
        """SIGTERM mid-sweep is a graceful drain, not an abort: completed
        jobs are flushed, the exit code is the conventional 143 (so a
        supervisor can tell drain from crash), and stderr points at the
        resume path."""
        env = dict(os.environ)
        env.update({
            "PYTHONPATH": str((
                __import__("pathlib").Path(__file__).resolve().parent.parent / "src"
            )),
            "REPRO_LEDGER": "off",
            "REPRO_CHAOS": "hang:secs=120",
            "REPRO_CHAOS_STATE": str(tmp_path / "state"),
        })
        cache = tmp_path / "cache"
        argv = [sys.executable, "-m", "repro", "sweep", "sidedness_ablation",
                "--seeds", "8", "--parallel", "2", "--cache-dir", str(cache)]
        proc = subprocess.Popen(argv, env=env, start_new_session=True,
                                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                                text=True)
        deadline = time.monotonic() + 30
        checkpoint = cache / "checkpoint.jsonl"
        while time.monotonic() < deadline:
            if checkpoint.is_file() and len(checkpoint.read_text().splitlines()) >= 7:
                break
            time.sleep(0.1)
        os.kill(proc.pid, signal.SIGTERM)
        _, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 143, stderr
        assert "terminated (graceful drain)" in stderr
        assert "resume with --resume" in stderr
        assert len(checkpoint.read_text().splitlines()) == 7

        env.pop("REPRO_CHAOS")
        resumed = subprocess.run(argv + ["--resume"], env=env,
                                 capture_output=True, text=True, timeout=60)
        assert resumed.returncode == 0, resumed.stderr
        assert len(checkpoint.read_text().splitlines()) == 8


class TestCacheWriteDegrade:
    def test_put_failure_returns_none_and_warns_once(self, tmp_path, capsys,
                                                     monkeypatch):
        """ENOSPC/EACCES on a cache write degrades to uncached: put()
        reports None, tallies, warns exactly once, and leaves no
        half-written staging file behind."""
        cache = ResultCache(tmp_path / "cache")
        result = ExperimentRunner(ledger=False).run_one(
            "sidedness_ablation", seed=0)

        def enospc(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", enospc)
        assert cache.put(result) is None
        assert cache.put(result) is None
        assert cache.write_errors == 2
        monkeypatch.undo()
        err = capsys.readouterr().err
        assert err.count("continuing uncached") == 1
        assert not list((tmp_path / "cache").glob("**/*.tmp*"))

    def test_runner_completes_and_counts_cache_write_failures(self, tmp_path,
                                                              monkeypatch):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache",
                                  max_workers=1, collect_metrics=True,
                                  ledger=False)
        monkeypatch.setattr(runner.cache, "put", lambda result: None)
        results = runner.run(
            [Job("sidedness_ablation", {}, seed=s) for s in range(3)])
        assert all(r.error is None for r in results)
        assert runner.metrics.value("cache_write_errors_total") == 3
