"""Tests for the emerging-memory models (STT-MRAM, RRAM crossbar)."""

import pytest

from repro.emerging import (
    RramCrossbar,
    RramParams,
    SttMramArray,
    SttParams,
    crossbar_hammer_study,
    read_disturb_probability,
    retention_failure_probability,
    scaling_study,
)


class TestSttPhysics:
    def test_read_disturb_grows_with_current(self):
        low = read_disturb_probability(60.0, 0.1, 10.0)
        high = read_disturb_probability(60.0, 0.5, 10.0)
        assert high > low

    def test_read_disturb_grows_as_delta_shrinks(self):
        strong = read_disturb_probability(70.0, 0.3, 10.0)
        weak = read_disturb_probability(40.0, 0.3, 10.0)
        assert weak > strong

    def test_retention_grows_with_time(self):
        assert retention_failure_probability(40.0, 1e8) > retention_failure_probability(40.0, 1e4)

    def test_probabilities_bounded(self):
        for delta in (10.0, 40.0, 80.0):
            p = read_disturb_probability(delta, 0.3, 10.0)
            assert 0.0 <= p <= 1.0


class TestSttArray:
    def test_more_reads_more_errors(self):
        array = SttMramArray(cells=1 << 16, params=SttParams(delta=45.0), seed=1)
        few = array.expected_read_disturb_errors(10_000)
        many = array.expected_read_disturb_errors(10_000_000)
        assert many > few

    def test_mature_node_nearly_error_free(self):
        array = SttMramArray(cells=1 << 16, params=SttParams(delta=70.0), seed=2)
        assert array.expected_read_disturb_errors(1_000_000) < 1.0

    def test_sampled_close_to_expected(self):
        array = SttMramArray(cells=1 << 16, params=SttParams(delta=42.0), seed=3)
        expected = array.expected_read_disturb_errors(1_000_000)
        sampled = array.sample_read_disturb_errors(1_000_000)
        if expected > 20:
            assert 0.5 * expected < sampled < 1.5 * expected

    def test_scaling_study_trend(self):
        rows = scaling_study(deltas=(60.0, 45.0), cells=1 << 16, seed=4)
        assert rows[1]["read_disturb_errors"] > rows[0]["read_disturb_errors"]
        assert rows[1]["retention_errors_10y"] >= rows[0]["retention_errors_10y"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SttParams(read_current_ratio=1.5)
        array = SttMramArray(cells=16, seed=0)
        with pytest.raises(ValueError):
            array.expected_read_disturb_errors(-1)


class TestRramCrossbar:
    def test_hammering_flips_shared_line_cells_only(self):
        tile = RramCrossbar(rows=64, cols=64, seed=1)
        tile.access(32, 32, 10_000_000)
        victims = tile.flipped_cells()
        assert victims
        assert all(r == 32 or c == 32 for r, c in victims)
        assert not tile.flipped[32, 32]  # the accessed cell is re-biased

    def test_below_threshold_no_flips(self):
        tile = RramCrossbar(rows=64, cols=64, seed=2)
        tile.access(10, 10, 1_000)  # floor is 2e5
        assert tile.flip_count() == 0

    def test_rewrite_clears_victim(self):
        tile = RramCrossbar(rows=64, cols=64, seed=3)
        tile.access(32, 32, 10_000_000)
        victim = tile.flipped_cells()[0]
        tile.rewrite(*victim)
        assert victim not in tile.flipped_cells()

    def test_spread_accesses_do_not_flip(self):
        # The leveling analogue: the same total accesses spread across
        # many addresses stress no single line past its threshold.
        tile = RramCrossbar(rows=64, cols=64, seed=4)
        per_cell = 10_000_000 // (64 * 4)
        for i in range(0, 64, 4):
            tile.access(i, (i * 7) % 64, per_cell)
        concentrated = RramCrossbar(rows=64, cols=64, seed=4)
        concentrated.access(32, 32, 10_000_000)
        assert tile.flip_count() < concentrated.flip_count()

    def test_study_monotone(self):
        rows = crossbar_hammer_study(accesses=(1e5, 1e7), rows=64, cols=64, seed=5)
        assert rows[0]["victims"] <= rows[1]["victims"]
        assert rows[1]["victims"] > 0
        assert all(r["all_on_shared_lines"] for r in rows)

    def test_threshold_params_validated(self):
        with pytest.raises(ValueError):
            RramParams(hs_threshold_min=1e9)

    def test_access_bounds(self):
        tile = RramCrossbar(rows=8, cols=8, seed=0)
        with pytest.raises(IndexError):
            tile.access(8, 0)
        with pytest.raises(ValueError):
            tile.access(0, 0, -1)
