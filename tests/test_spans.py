"""The span profiler: recording, aggregation, merging, rendering, and
the runtime ``span``/``profiled`` guard pattern."""

import json
import time

import pytest

from repro.experiments import execute_job
from repro.telemetry import MetricsRegistry, SpanProfile, SpanProfiler, TraceRecorder
from repro.telemetry import runtime as telem
from repro.telemetry.spans import span_name


@pytest.fixture(autouse=True)
def _clean_telemetry():
    prev_registry = telem.swap_registry(MetricsRegistry())
    prev_tracer = telem.swap_tracer(TraceRecorder())
    prev_profiler = telem.swap_profiler(SpanProfiler())
    telem.disable_all()
    yield
    telem.disable_all()
    telem.swap_registry(prev_registry)
    telem.swap_tracer(prev_tracer)
    telem.swap_profiler(prev_profiler)


class TestSpanName:
    def test_bare_name_passes_through(self):
        assert span_name("ecc.evaluate") == "ecc.evaluate"
        assert span_name("ecc.evaluate", {}) == "ecc.evaluate"

    def test_labels_fold_sorted(self):
        assert span_name("sched", {"policy": "frfcfs"}) == "sched{policy=frfcfs}"
        assert (span_name("x", {"b": 2, "a": 1})
                == span_name("x", {"a": 1, "b": 2})
                == "x{a=1,b=2}")


class TestSpanProfiler:
    def test_nested_spans_attribute_to_paths(self):
        p = SpanProfiler()
        p.push("outer")
        p.push("inner")
        time.sleep(0.002)
        p.pop()
        p.pop()
        profile = p.profile()
        assert set(profile.entries) == {("outer",), ("outer", "inner")}
        outer_count, outer_total, outer_self = profile.get("outer")
        inner_count, inner_total, inner_self = profile.get("outer", "inner")
        assert outer_count == inner_count == 1
        assert inner_total >= 0.002
        assert outer_total >= inner_total
        # Parent self-time excludes the child's total.
        assert outer_self == pytest.approx(outer_total - inner_total, abs=1e-6)

    def test_repeat_spans_accumulate(self):
        p = SpanProfiler()
        for _ in range(5):
            p.push("phase")
            p.pop()
        count, total, self_s = p.profile().get("phase")
        assert count == 5
        assert total >= self_s >= 0

    def test_pop_on_empty_stack_is_noop(self):
        p = SpanProfiler()
        assert p.pop() == 0.0
        assert len(p) == 0

    def test_depth_tracks_open_spans(self):
        p = SpanProfiler()
        assert p.depth == 0
        p.push("a")
        p.push("b")
        assert p.depth == 2
        p.pop()
        assert p.depth == 1

    def test_clear_resets_everything(self):
        p = SpanProfiler()
        p.push("a")
        p.pop()
        p.push("open")
        p.clear()
        assert p.depth == 0 and len(p) == 0


class TestSpanProfile:
    def _sample(self):
        return SpanProfile({
            ("job",): (1, 1.0, 0.2),
            ("job", "dram"): (10, 0.8, 0.8),
        })

    def test_total_s_counts_roots_only(self):
        assert self._sample().total_s() == pytest.approx(1.0)

    def test_snapshot_merge_round_trip(self):
        snap = self._sample().snapshot()
        json.dumps(snap)  # JSON-safe
        restored = SpanProfile.from_snapshot(snap)
        assert restored.entries == self._sample().entries

    def test_merge_adds_counts_and_times(self):
        profile = self._sample()
        profile.merge(self._sample().snapshot())
        assert profile.get("job") == (2, 2.0, 0.4)
        assert profile.get("job", "dram") == (20, 1.6, 1.6)

    def test_from_snapshots_skips_none(self):
        merged = SpanProfile.from_snapshots([None, self._sample().snapshot(), None])
        assert merged.get("job")[0] == 1

    def test_render_tree_indents_children_heaviest_first(self):
        profile = SpanProfile({
            ("job",): (1, 1.0, 0.1),
            ("job", "light"): (1, 0.2, 0.2),
            ("job", "heavy"): (1, 0.7, 0.7),
        })
        lines = profile.render_tree().splitlines()
        assert lines[0].startswith("span")
        assert lines[1].startswith("job")
        assert lines[2].startswith("  heavy")  # heaviest sibling first
        assert lines[3].startswith("  light")
        assert "100.0" in lines[1]

    def test_render_tree_empty(self):
        assert SpanProfile().render_tree() == "(no spans recorded)"

    def test_render_folded_emits_self_microseconds(self):
        folded = self._sample().render_folded()
        assert "job 200000\n" in folded
        assert "job;dram 800000\n" in folded

    def test_orphan_paths_still_render(self):
        # A child whose parent never closed (profiler swapped mid-span)
        # must still appear in both renderers.
        profile = SpanProfile({("ghost", "child"): (1, 0.1, 0.1)})
        assert "child" in profile.render_tree()
        assert "ghost;child 100000" in profile.render_folded()


class TestRuntimeSpanGuard:
    def test_disabled_span_is_shared_noop(self):
        first = telem.span("anything", label=1)
        second = telem.span("other")
        assert first is second  # no allocation while off
        with first:
            pass
        assert len(telem.get_profiler()) == 0

    def test_enabled_span_records(self):
        telem.enable_profiling(fresh=True)
        with telem.span("phase", kind="x"):
            pass
        profile = telem.get_profiler().profile()
        assert profile.get("phase{kind=x}")[0] == 1

    def test_name_label_does_not_collide_with_span_name(self):
        telem.enable_profiling(fresh=True)
        with telem.span("job", name="rowhammer_basic"):
            pass
        assert telem.get_profiler().profile().get("job{name=rowhammer_basic}")[0] == 1

    def test_profiled_decorator(self):
        @telem.profiled("retention.pass", mode="quick")
        def work(x):
            return x * 2

        assert work(3) == 6  # off: plain call
        telem.enable_profiling(fresh=True)
        assert work(4) == 8
        assert telem.get_profiler().profile().get("retention.pass{mode=quick}")[0] == 1

    def test_swap_mid_span_cannot_unbalance_new_profiler(self):
        telem.enable_profiling(fresh=True)
        span = telem.span("outer")
        span.__enter__()
        old = telem.swap_profiler(SpanProfiler())
        span.__exit__(None, None, None)  # pops the *pinned* old profiler
        assert telem.get_profiler().depth == 0
        assert old.profile().get("outer")[0] == 1

    def test_enable_fresh_discards_prior_spans(self):
        telem.enable_profiling(fresh=True)
        with telem.span("stale"):
            pass
        telem.enable_profiling(fresh=True)
        assert len(telem.get_profiler()) == 0


class TestJobProfiles:
    CHEAP = {"victims": 8}

    def test_profile_rides_in_result_and_covers_wall_clock(self):
        # Acceptance: the span tree's root total must agree with the
        # recorded wall clock within 5%.
        result = execute_job("rowhammer_basic", params=self.CHEAP, seed=0,
                             collect_profile=True)
        assert result.profile is not None
        profile = SpanProfile.from_snapshot(result.profile)
        root = profile.get("job{name=rowhammer_basic}")
        assert root[0] == 1
        assert profile.total_s() == pytest.approx(result.duration_s, rel=0.05)
        # The instrumented hot path shows up under the job root.
        assert profile.get("job{name=rowhammer_basic}", "dram.execute")[0] > 0

    def test_profile_snapshot_is_json_safe(self):
        result = execute_job("rowhammer_basic", params=self.CHEAP, seed=0,
                             collect_profile=True)
        json.dumps(result.to_json_dict())
        restored = type(result).from_json_dict(result.to_json_dict())
        assert restored.profile == result.profile

    def test_collect_profile_restores_prior_state(self):
        sentinel = telem.swap_profiler(SpanProfiler())
        telem.swap_profiler(sentinel)
        assert not telem.spans_on
        execute_job("rowhammer_basic", params=self.CHEAP, seed=0,
                    collect_profile=True)
        assert not telem.spans_on
        assert telem.get_profiler() is sentinel

    def test_without_collect_profile_no_profile(self):
        result = execute_job("rowhammer_basic", params=self.CHEAP, seed=0)
        assert result.profile is None

    def test_runner_merges_profiles_across_jobs(self):
        from repro.experiments import ExperimentRunner, Job

        runner = ExperimentRunner(collect_profile=True, ledger=False)
        runner.run([Job("rowhammer_basic", self.CHEAP, s) for s in (0, 1)])
        assert runner.profile.get("job{name=rowhammer_basic}")[0] == 2
