"""Tests for bit interleaving and online (content-aware) profiling."""

import numpy as np
import pytest

from repro.ecc import SECDED_72_64
from repro.ecc.injection import inject_clustered
from repro.ecc.interleave import (
    compare_interleaving,
    interleave_position,
    interleaved_flips_per_word,
)
from repro.retention.online_profiling import coverage_over_generations, simulate_online_profiling
from repro.retention.params import RetentionParams
from repro.retention.population import CellPopulation
from repro.utils.rng import derive_rng


class TestInterleavePosition:
    def test_degree_one_is_plain_layout(self):
        for bit in (0, 63, 64, 1000):
            word, offset = interleave_position(bit, 1)
            assert word == bit // 64
            assert offset == bit % 64

    def test_adjacent_bits_land_in_distinct_words(self):
        degree = 4
        words = [interleave_position(bit, degree)[0] for bit in range(4)]
        assert len(set(words)) == 4

    def test_bijective_within_group(self):
        degree = 4
        seen = set()
        for bit in range(degree * 64):
            seen.add(interleave_position(bit, degree))
        assert len(seen) == degree * 64
        words = {w for w, _ in seen}
        offsets = {o for _, o in seen}
        assert words == set(range(degree))
        assert offsets == set(range(64))

    def test_degree_validated(self):
        with pytest.raises(ValueError):
            interleave_position(0, 0)


class TestInterleaveHistogram:
    def test_cluster_spread_across_words(self):
        # Three flips inside one 64-bit window: catastrophic plain,
        # harmless at degree >= 3.
        flips = [10, 11, 12]
        plain = interleaved_flips_per_word(flips, 1)
        spread = interleaved_flips_per_word(flips, 4)
        assert plain == {3: 1}
        assert spread == {1: 3}

    def test_interleaving_restores_secded(self):
        rng = derive_rng(0, "t")
        flips = inject_clustered(2500, 1 << 20, rng)
        results = compare_interleaving(SECDED_72_64, flips, degrees=(1, 8))
        assert results[8].uncorrected_words < results[1].uncorrected_words / 1.8

    def test_uncorrected_monotone_in_degree(self):
        rng = derive_rng(1, "t")
        flips = inject_clustered(2500, 1 << 20, rng)
        results = compare_interleaving(SECDED_72_64, flips, degrees=(1, 2, 4, 8))
        uncorrected = [results[d].uncorrected_words for d in (1, 2, 4, 8)]
        assert uncorrected[0] > uncorrected[-1]


class TestOnlineProfiling:
    def _population(self, seed=0):
        params = RetentionParams(tail_fraction=3e-3, vrt_fraction=0.0,
                                 dpd_fraction=0.7, dpd_min_factor=0.2)
        return CellPopulation(256, 128, params, seed=seed)

    def test_online_discovers_more_than_static(self):
        result = simulate_online_profiling(self._population(), generations=12, seed=1)
        assert len(result.discovered_online) + 0 >= 0
        assert result.escapes_static > 0
        assert result.escapes_online == 0

    def test_static_subset_relationship(self):
        result = simulate_online_profiling(self._population(), generations=20, seed=2)
        # With enough generations the online profiler covers at least as
        # many distinct cells as the bounded static campaign found.
        assert len(set(result.discovered_online) | result.discovered_static) >= len(result.discovered_static)

    def test_coverage_curve_monotone(self):
        curve = coverage_over_generations(self._population(), generations=10, seed=3)
        assert curve == sorted(curve)
        assert curve[-1] > 0

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            simulate_online_profiling(self._population(), deployed_interval_s=0)
        with pytest.raises(ValueError):
            simulate_online_profiling(self._population(), content_match_probability=2.0)
