"""Tests for the SECDED Hamming code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import SECDED_72_64, DecodeStatus, HammingSecded, classify_against_truth


def random_word(seed, bits=64):
    return np.random.default_rng(seed).integers(0, 2, size=bits).astype(np.uint8)


class TestConstruction:
    def test_72_64_dimensions(self):
        assert SECDED_72_64.data_bits == 64
        assert SECDED_72_64.code_bits == 72

    def test_overhead(self):
        assert SECDED_72_64.overhead_fraction == pytest.approx(8 / 64)

    def test_small_instance(self):
        code = HammingSecded(4)
        # 4 data bits need 3 parity + overall = 8 code bits.
        assert code.code_bits == 8

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            HammingSecded(0)


class TestCleanPath:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_roundtrip(self, seed):
        data = random_word(seed)
        result = SECDED_72_64.decode(SECDED_72_64.encode(data))
        assert result.status == DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)


class TestSingleError:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=71))
    @settings(max_examples=60)
    def test_any_single_flip_corrected(self, seed, position):
        data = random_word(seed)
        codeword = SECDED_72_64.encode(data)
        codeword[position] ^= 1
        result = SECDED_72_64.decode(codeword)
        assert result.status == DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)


class TestDoubleError:
    @given(
        st.integers(min_value=0, max_value=200),
        st.lists(st.integers(min_value=0, max_value=71), min_size=2, max_size=2, unique=True),
    )
    @settings(max_examples=60)
    def test_any_double_flip_detected_not_miscorrected_as_clean(self, seed, positions):
        data = random_word(seed)
        codeword = SECDED_72_64.encode(data)
        codeword[list(positions)] ^= 1
        result = SECDED_72_64.decode(codeword)
        assert result.status == DecodeStatus.DETECTED_UNCORRECTABLE


class TestTripleError:
    def test_triple_flip_usually_miscorrects(self):
        # The SECDED failure mode the paper leans on: >= 3 flips can
        # silently corrupt.  Check ground-truth classification sees it.
        rng = np.random.default_rng(0)
        miscorrected = 0
        trials = 100
        for _ in range(trials):
            data = rng.integers(0, 2, size=64).astype(np.uint8)
            codeword = SECDED_72_64.encode(data)
            positions = rng.choice(72, size=3, replace=False)
            codeword[positions] ^= 1
            result = SECDED_72_64.decode(codeword)
            if classify_against_truth(result, data) == DecodeStatus.MISCORRECTED:
                miscorrected += 1
        assert miscorrected > trials // 4

    def test_classify_against_truth_passthrough(self):
        data = random_word(1)
        result = SECDED_72_64.decode(SECDED_72_64.encode(data))
        assert classify_against_truth(result, data) == DecodeStatus.CLEAN


class TestShapeValidation:
    def test_encode_wrong_shape(self):
        with pytest.raises(ValueError):
            SECDED_72_64.encode(np.zeros(10, dtype=np.uint8))

    def test_decode_wrong_shape(self):
        with pytest.raises(ValueError):
            SECDED_72_64.decode(np.zeros(10, dtype=np.uint8))
