"""The experiment runner: provenance, determinism, caching, seed
derivation, the process-pool fan-out, and batch fault tolerance."""

import json
import multiprocessing
import os
import time

import pytest

from repro import experiments as E
from repro.experiments import ExperimentRunner, Job, derive_seed, execute_job_safe
from repro.experiments.registry import experiment, unregister


@pytest.fixture()
def failing_experiment():
    """A registered experiment that raises for odd seeds."""

    @experiment("_flaky_probe", "fails on odd seeds", section="II", tags=("test",))
    def _flaky_probe(seed: int = 0):
        if seed % 2:
            raise RuntimeError(f"odd seed {seed}")
        return {"seed": seed}

    yield "_flaky_probe"
    unregister("_flaky_probe")


class TestExecuteJob:
    def test_result_carries_provenance(self):
        result = E.execute_job("sidedness_ablation", seed=3)
        assert result.name == "sidedness_ablation"
        assert result.seed == 3
        assert result.duration_s > 0
        assert result.peak_rss_kb > 0
        assert result.version
        assert not result.cache_hit

    def test_payload_is_json_safe(self):
        result = E.execute_job("twostep_study", seed=0)
        json.dumps(result.to_json_dict())  # must not raise

    def test_params_are_bound_and_recorded(self):
        result = E.execute_job("flash_error_sweep",
                               params={"pe_grid": (3000, 20000)}, seed=1)
        assert result.params == {"pe_grid": (3000, 20000)}
        assert len(result.payload) == 2


class TestDeterminism:
    # Three representative experiments spanning DRAM attacks, flash, and
    # PCM: same seed ⇒ byte-identical canonical payload JSON.
    @pytest.mark.parametrize("name", ["sidedness_ablation", "twostep_study", "fcr_study"])
    def test_same_seed_byte_identical_payload(self, name):
        first = E.execute_job(name, seed=5).payload_json()
        second = E.execute_job(name, seed=5).payload_json()
        assert first.encode() == second.encode()

    def test_different_seed_differs(self):
        a = E.execute_job("sidedness_ablation", seed=0).payload_json()
        b = E.execute_job("sidedness_ablation", seed=99).payload_json()
        assert a != b

    def test_derive_seed_stable_and_spread(self):
        seeds = [derive_seed(0, i) for i in range(16)]
        assert seeds == [derive_seed(0, i) for i in range(16)]  # reproducible
        assert len(set(seeds)) == 16  # no collisions in a small sweep
        assert all(0 <= s < 2**31 for s in seeds)
        assert [derive_seed(1, i) for i in range(16)] != seeds  # base matters


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        fresh = runner.run_one("twostep_study", seed=2)
        cached = runner.run_one("twostep_study", seed=2)
        assert not fresh.cache_hit
        assert cached.cache_hit
        assert cached.payload == fresh.payload
        assert cached.duration_s == fresh.duration_s  # original timing preserved

    def test_cache_key_distinguishes_name_params_seed(self, tmp_path):
        cache = E.ResultCache(tmp_path)
        base = cache.key("twostep_study", {}, 0)
        assert cache.key("twostep_study", {}, 1) != base
        assert cache.key("twostep_study", {"pe_cycles": 4000}, 0) != base
        assert cache.key("fcr_study", {}, 0) != base

    def test_cache_key_ignores_params_insertion_order(self, tmp_path):
        # Regression: {"a": 1, "b": 2} and {"b": 2, "a": 1} are the same
        # job and must share one cache entry.
        cache = E.ResultCache(tmp_path)
        forward = cache.key("twostep_study", {"pe_cycles": 4000, "dwell_s": 9.0}, 0)
        reverse = cache.key("twostep_study", {"dwell_s": 9.0, "pe_cycles": 4000}, 0)
        assert forward == reverse
        assert cache.path("twostep_study", {"pe_cycles": 4000, "dwell_s": 9.0}, 0) \
            == cache.path("twostep_study", {"dwell_s": 9.0, "pe_cycles": 4000}, 0)

    def test_alias_and_canonical_share_cache_entries(self, tmp_path):
        cache = E.ResultCache(tmp_path)
        assert cache.key("c12", {}, 0) == cache.key("twostep_study", {}, 0)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run_one("twostep_study", seed=2)
        path = runner.cache.path("twostep_study", {}, 2)
        path.write_text("{not json")
        assert not runner.run_one("twostep_study", seed=2).cache_hit


class TestRunnerBatch:
    def test_batch_preserves_order(self):
        runner = ExperimentRunner()
        results = runner.run([Job("twostep_study", {}, 1),
                              Job("sidedness_ablation", {}, 1)])
        assert [r.name for r in results] == ["twostep_study", "sidedness_ablation"]

    def test_unknown_job_fails_fast(self):
        with pytest.raises(E.UnknownExperimentError):
            ExperimentRunner().run([Job("nonexistent", {}, 0)])

    def test_parallel_matches_inline(self, tmp_path):
        jobs = [Job("sidedness_ablation", {}, s) for s in (0, 1, 2, 3)]
        inline = ExperimentRunner(max_workers=1).run(jobs)
        pooled = ExperimentRunner(max_workers=2).run(jobs)
        assert [r.payload for r in pooled] == [r.payload for r in inline]
        assert all(not r.cache_hit for r in pooled)


class TestFaultTolerance:
    def test_execute_job_safe_converts_exception_to_errored_result(self, failing_experiment):
        result = execute_job_safe(failing_experiment, seed=1)
        assert result.error == "RuntimeError: odd seed 1"
        assert not result.ok
        assert result.payload is None
        assert result.seed == 1
        assert result.duration_s > 0

    def test_execute_job_safe_passes_through_success(self, failing_experiment):
        result = execute_job_safe(failing_experiment, seed=2)
        assert result.ok and result.error is None
        assert result.payload == {"seed": 2}

    def test_execute_job_safe_still_raises_framework_errors(self, failing_experiment):
        with pytest.raises(E.UnknownExperimentError):
            execute_job_safe("nonexistent")
        with pytest.raises(ValueError, match="no parameter"):
            execute_job_safe(failing_experiment, params={"bogus_param": 1})

    def test_execute_job_still_propagates(self, failing_experiment):
        with pytest.raises(RuntimeError, match="odd seed"):
            E.execute_job(failing_experiment, seed=1)

    def test_run_one_still_propagates(self, failing_experiment):
        with pytest.raises(RuntimeError, match="odd seed"):
            ExperimentRunner().run_one(failing_experiment, seed=1)

    def test_batch_keeps_siblings_and_slots_errors(self, failing_experiment):
        runner = ExperimentRunner()
        results = runner.run([Job(failing_experiment, {}, s) for s in (0, 1, 2)])
        assert [r.error is None for r in results] == [True, False, True]
        assert results[1].error == "RuntimeError: odd seed 1"
        assert results[0].payload == {"seed": 0}
        summary = runner.summary(results)
        assert (summary["jobs"], summary["ok"], summary["errors"]) == (3, 2, 1)
        assert summary["errored"][0]["seed"] == 1

    def test_parallel_batch_survives_failures(self, failing_experiment):
        runner = ExperimentRunner(max_workers=2)
        results = runner.run([Job(failing_experiment, {}, s) for s in range(4)])
        assert [r.error is None for r in results] == [True, False, True, False]

    def test_errored_results_never_reach_the_cache(self, tmp_path, failing_experiment):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run([Job(failing_experiment, {}, s) for s in (0, 1)])
        rerun = ExperimentRunner(cache_dir=tmp_path).run(
            [Job(failing_experiment, {}, s) for s in (0, 1)])
        assert rerun[0].cache_hit  # success was cached
        assert not rerun[1].cache_hit  # failure re-ran

    def test_outcome_label_tallies_errors(self, failing_experiment):
        runner = ExperimentRunner(collect_metrics=True)
        runner.run([Job(failing_experiment, {}, s) for s in (0, 1, 2)])
        assert runner.metrics.value("runner_jobs_total",
                                    cache_hit="false", outcome="ok") == 2
        assert runner.metrics.value("runner_jobs_total",
                                    cache_hit="false", outcome="error") == 1

    def test_job_end_trace_distinguishes_outcomes(self, failing_experiment):
        from repro.telemetry import runtime as telem

        recorder = telem.enable_tracing(fresh=True)
        try:
            E.execute_job(failing_experiment, seed=0)
            with pytest.raises(RuntimeError):
                E.execute_job(failing_experiment, seed=1)
        finally:
            telem.disable_tracing()
        ends = [e for e in recorder.events() if e.kind == "job_end"]
        assert len(ends) == 2
        assert ends[0].fields["ok"] is True
        assert "error" not in ends[0].fields
        assert ends[1].fields["ok"] is False
        assert ends[1].fields["error"] == "RuntimeError: odd seed 1"


def _pid_probe(seed: int = 0):
    from repro.telemetry import runtime as telem

    time.sleep(0.05)  # keep one worker from draining the whole queue
    if telem.metrics_on:
        telem.counter("probe_jobs_total", pid=os.getpid()).inc()
    return {"pid": os.getpid()}


@pytest.fixture()
def pid_probe():
    """Register the probe before the pool forks so workers inherit it."""
    experiment("_pid_probe", "reports its worker pid",
               section="II", tags=("test",))(_pid_probe)
    yield "_pid_probe"
    unregister("_pid_probe")


fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool workers must inherit the test-registered experiment",
)


class TestCrossProcessMerge:
    @fork_only
    def test_parent_merges_metrics_from_distinct_workers(self, pid_probe):
        runner = ExperimentRunner(max_workers=3, collect_metrics=True)
        results = runner.run([Job("_pid_probe", {}, s) for s in range(3)])
        pids = {r.payload["pid"] for r in results}
        assert os.getpid() not in pids  # genuinely ran out-of-process
        assert len(pids) >= 2  # more than one worker contributed
        # Every worker's series survived the snapshot/merge round trip.
        assert runner.metrics.total("probe_jobs_total") == 3
        for pid in pids:
            assert runner.metrics.value("probe_jobs_total", pid=pid) >= 1

    @fork_only
    def test_cache_hits_reabsorb_worker_snapshots(self, pid_probe, tmp_path):
        jobs = [Job("_pid_probe", {}, s) for s in range(3)]
        first = ExperimentRunner(cache_dir=tmp_path, max_workers=3,
                                 collect_metrics=True)
        first.run(jobs)
        # A fresh runner re-running the same jobs is all cache hits, yet
        # its merged metrics must equal the original run's: the per-job
        # snapshots survived the on-disk cache and were re-absorbed.
        second = ExperimentRunner(cache_dir=tmp_path, max_workers=3,
                                  collect_metrics=True)
        rerun = second.run(jobs)
        assert all(r.cache_hit for r in rerun)
        assert (second.metrics.total("probe_jobs_total")
                == first.metrics.total("probe_jobs_total") == 3)
        assert second.metrics.value("runner_jobs_total",
                                    cache_hit="true", outcome="ok") == 3

    @fork_only
    def test_parent_merges_profiles_from_workers(self, pid_probe):
        runner = ExperimentRunner(max_workers=2, collect_profile=True)
        runner.run([Job("_pid_probe", {}, s) for s in range(2)])
        assert runner.profile.get("job{name=_pid_probe}")[0] == 2


class TestSweep:
    def test_sweep_runs_derived_seeds_and_caches(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=2)
        first = runner.sweep("twostep_study", seeds=4, base_seed=0)
        assert len(first) == 4
        assert [r.seed for r in first] == [derive_seed(0, i) for i in range(4)]
        assert all(not r.cache_hit for r in first)
        second = runner.sweep("twostep_study", seeds=4, base_seed=0)
        assert all(r.cache_hit for r in second)
        assert [r.payload for r in second] == [r.payload for r in first]

    def test_sweeping_seedless_experiment_is_an_error(self):
        with pytest.raises(ValueError, match="takes no seed"):
            ExperimentRunner().sweep("para_reliability", seeds=4)
