"""The experiment runner: provenance, determinism, caching, seed
derivation, and the process-pool fan-out."""

import json

import pytest

from repro import experiments as E
from repro.experiments import ExperimentRunner, Job, derive_seed


class TestExecuteJob:
    def test_result_carries_provenance(self):
        result = E.execute_job("sidedness_ablation", seed=3)
        assert result.name == "sidedness_ablation"
        assert result.seed == 3
        assert result.duration_s > 0
        assert result.peak_rss_kb > 0
        assert result.version
        assert not result.cache_hit

    def test_payload_is_json_safe(self):
        result = E.execute_job("twostep_study", seed=0)
        json.dumps(result.to_json_dict())  # must not raise

    def test_params_are_bound_and_recorded(self):
        result = E.execute_job("flash_error_sweep",
                               params={"pe_grid": (3000, 20000)}, seed=1)
        assert result.params == {"pe_grid": (3000, 20000)}
        assert len(result.payload) == 2


class TestDeterminism:
    # Three representative experiments spanning DRAM attacks, flash, and
    # PCM: same seed ⇒ byte-identical canonical payload JSON.
    @pytest.mark.parametrize("name", ["sidedness_ablation", "twostep_study", "fcr_study"])
    def test_same_seed_byte_identical_payload(self, name):
        first = E.execute_job(name, seed=5).payload_json()
        second = E.execute_job(name, seed=5).payload_json()
        assert first.encode() == second.encode()

    def test_different_seed_differs(self):
        a = E.execute_job("sidedness_ablation", seed=0).payload_json()
        b = E.execute_job("sidedness_ablation", seed=99).payload_json()
        assert a != b

    def test_derive_seed_stable_and_spread(self):
        seeds = [derive_seed(0, i) for i in range(16)]
        assert seeds == [derive_seed(0, i) for i in range(16)]  # reproducible
        assert len(set(seeds)) == 16  # no collisions in a small sweep
        assert all(0 <= s < 2**31 for s in seeds)
        assert [derive_seed(1, i) for i in range(16)] != seeds  # base matters


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        fresh = runner.run_one("twostep_study", seed=2)
        cached = runner.run_one("twostep_study", seed=2)
        assert not fresh.cache_hit
        assert cached.cache_hit
        assert cached.payload == fresh.payload
        assert cached.duration_s == fresh.duration_s  # original timing preserved

    def test_cache_key_distinguishes_name_params_seed(self, tmp_path):
        cache = E.ResultCache(tmp_path)
        base = cache.key("twostep_study", {}, 0)
        assert cache.key("twostep_study", {}, 1) != base
        assert cache.key("twostep_study", {"pe_cycles": 4000}, 0) != base
        assert cache.key("fcr_study", {}, 0) != base

    def test_cache_key_ignores_params_insertion_order(self, tmp_path):
        # Regression: {"a": 1, "b": 2} and {"b": 2, "a": 1} are the same
        # job and must share one cache entry.
        cache = E.ResultCache(tmp_path)
        forward = cache.key("twostep_study", {"pe_cycles": 4000, "dwell_s": 9.0}, 0)
        reverse = cache.key("twostep_study", {"dwell_s": 9.0, "pe_cycles": 4000}, 0)
        assert forward == reverse
        assert cache.path("twostep_study", {"pe_cycles": 4000, "dwell_s": 9.0}, 0) \
            == cache.path("twostep_study", {"dwell_s": 9.0, "pe_cycles": 4000}, 0)

    def test_alias_and_canonical_share_cache_entries(self, tmp_path):
        cache = E.ResultCache(tmp_path)
        assert cache.key("c12", {}, 0) == cache.key("twostep_study", {}, 0)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run_one("twostep_study", seed=2)
        path = runner.cache.path("twostep_study", {}, 2)
        path.write_text("{not json")
        assert not runner.run_one("twostep_study", seed=2).cache_hit


class TestRunnerBatch:
    def test_batch_preserves_order(self):
        runner = ExperimentRunner()
        results = runner.run([Job("twostep_study", {}, 1),
                              Job("sidedness_ablation", {}, 1)])
        assert [r.name for r in results] == ["twostep_study", "sidedness_ablation"]

    def test_unknown_job_fails_fast(self):
        with pytest.raises(E.UnknownExperimentError):
            ExperimentRunner().run([Job("nonexistent", {}, 0)])

    def test_parallel_matches_inline(self, tmp_path):
        jobs = [Job("sidedness_ablation", {}, s) for s in (0, 1, 2, 3)]
        inline = ExperimentRunner(max_workers=1).run(jobs)
        pooled = ExperimentRunner(max_workers=2).run(jobs)
        assert [r.payload for r in pooled] == [r.payload for r in inline]
        assert all(not r.cache_hit for r in pooled)


class TestSweep:
    def test_sweep_runs_derived_seeds_and_caches(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, max_workers=2)
        first = runner.sweep("twostep_study", seeds=4, base_seed=0)
        assert len(first) == 4
        assert [r.seed for r in first] == [derive_seed(0, i) for i in range(4)]
        assert all(not r.cache_hit for r in first)
        second = runner.sweep("twostep_study", seeds=4, base_seed=0)
        assert all(r.cache_hit for r in second)
        assert [r.payload for r in second] == [r.payload for r in first]

    def test_sweeping_seedless_experiment_is_an_error(self):
        with pytest.raises(ValueError, match="takes no seed"):
            ExperimentRunner().sweep("para_reliability", seeds=4)
