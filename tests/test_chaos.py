"""The chaos plan (parsing, claiming, determinism) and the scenario
harness that proves the hardened runner's recovery paths."""

import multiprocessing
import os

import pytest

from repro import chaos
from repro.chaos import harness
from repro.chaos.plan import ChaosPlan, ChaosTransientError, FaultSpec

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool scenarios rely on fork inheriting the registry",
)


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_CHAOS, raising=False)
    monkeypatch.delenv(chaos.ENV_CHAOS_STATE, raising=False)
    chaos.reset()
    yield
    chaos.reset()


class TestPlanParsing:
    def test_entry_grammar(self):
        plan = ChaosPlan.parse("kill:seed=7,hang:secs=2.5:name=x,exc:rate=0.5,ledger")
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["kill", "hang", "exc", "ledger"]
        assert plan.specs[0].seed == 7
        assert plan.specs[1].secs == 2.5
        assert plan.specs[1].name == "x"
        assert plan.specs[2].rate == 0.5

    def test_bare_seed_sets_plan_seed(self):
        plan = ChaosPlan.parse("seed=42,exc:rate=0.5")
        assert plan.chaos_seed == 42
        assert len(plan.specs) == 1

    def test_unknown_kind_and_field_raise(self):
        with pytest.raises(ValueError):
            ChaosPlan.parse("explode")
        with pytest.raises(ValueError):
            ChaosPlan.parse("kill:frobnicate=1")
        with pytest.raises(ValueError):
            ChaosPlan.parse("exc:rate=1.5")

    def test_env_round_trip_and_cache_invalidation(self, monkeypatch):
        assert not chaos.enabled()
        assert chaos.current_plan() is None
        monkeypatch.setenv(chaos.ENV_CHAOS, "exc")
        assert chaos.enabled()
        first = chaos.current_plan()
        assert [s.kind for s in first.specs] == ["exc"]
        monkeypatch.setenv(chaos.ENV_CHAOS, "ledger")
        assert [s.kind for s in chaos.current_plan().specs] == ["ledger"]


class TestFiring:
    def test_fault_fires_at_most_once(self):
        plan = ChaosPlan.parse("exc")
        assert plan.pick("exc") is not None
        assert plan.pick("exc") is None

    def test_seed_filter_pins_the_victim(self):
        plan = ChaosPlan.parse("exc:seed=5")
        assert plan.pick("exc", "x", 4) is None
        assert plan.pick("exc", "x", 5) is not None
        assert plan.pick("exc", "x", 5) is None  # consumed

    def test_state_dir_claims_cross_instance(self, tmp_path):
        a = ChaosPlan.parse("kill", state_dir=tmp_path)
        b = ChaosPlan.parse("kill", state_dir=tmp_path)
        assert a.pick("kill") is not None
        assert b.pick("kill") is None  # marker already claimed
        assert chaos.injected_counts(tmp_path) == {"kill": 1}

    def test_rate_draws_are_deterministic(self):
        a = ChaosPlan.parse("seed=1,exc:rate=0.5:once=0")
        b = ChaosPlan.parse("seed=1,exc:rate=0.5:once=0")
        fired_a = [a.pick("exc", "x", s) is not None for s in range(32)]
        fired_b = [b.pick("exc", "x", s) is not None for s in range(32)]
        assert fired_a == fired_b
        assert any(fired_a) and not all(fired_a)  # actually probabilistic
        c = ChaosPlan.parse("seed=2,exc:rate=0.5:once=0")
        assert [c.pick("exc", "x", s) is not None for s in range(32)] != fired_a

    def test_on_job_start_raises_transient(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_CHAOS, "exc")
        chaos.reset()
        with pytest.raises(ChaosTransientError):
            chaos.on_job_start("x", 0)
        chaos.on_job_start("x", 0)  # consumed: second call is clean

    def test_kill_never_fires_in_the_parent(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_CHAOS, "kill")
        chaos.reset()
        assert not chaos.in_worker()
        chaos.on_job_start("x", 0)  # would SIGKILL us if the guard failed
        # The kill spec is still armed (unclaimed) for a real worker.
        assert chaos.current_plan().pick("kill") is not None


class TestScenarios:
    """Each harness scenario is a real end-to-end recovery proof."""

    def _run(self, name, tmp_path, workers=2):
        outcome = harness.run_scenario(name, tmp_path, workers=workers)
        failed = [f"{c.label}: {c.observed}" for c in outcome.checks if not c.ok]
        assert outcome.passed, failed
        return outcome

    def test_exc_scenario(self, tmp_path):
        self._run("exc", tmp_path)

    def test_torn_scenario(self, tmp_path):
        self._run("torn", tmp_path)

    def test_ledger_scenario(self, tmp_path):
        self._run("ledger", tmp_path)

    @fork_only
    def test_kill_scenario(self, tmp_path):
        self._run("kill", tmp_path)

    @fork_only
    def test_hang_scenario(self, tmp_path):
        self._run("hang", tmp_path)

    def test_service_torn_scenario(self, tmp_path):
        """A torn journal ``done`` record: replay counts the tear,
        re-enqueues the job, and the re-run is all cache hits."""
        self._run("service_torn", tmp_path)

    def test_service_shed_scenario(self, tmp_path):
        """Queue overflow sheds with 429 + Retry-After; the patient
        client eventually lands the job and nothing runs twice."""
        self._run("service_shed", tmp_path)

    @fork_only
    def test_service_poisoned_scenario(self, tmp_path):
        """A timeout-poisoned submission fails its own fault domain
        (structured ``failed``) while its co-scheduled healthy
        neighbour completes."""
        self._run("service_poisoned", tmp_path)

    @fork_only
    def test_service_journal_race_scenario(self, tmp_path):
        """Two daemons racing one journal/ledger: no torn or
        interleaved records, every job exactly once."""
        self._run("service_journal_race", tmp_path)

    @fork_only
    def test_hang_produces_stale_heartbeat_before_timeout(
            self, tmp_path, monkeypatch):
        """The live-telemetry contract for hangs: the streaming consumer
        must flag the hung job's stale heartbeat strictly *before* the
        timeout reaper produces its structured outcome."""
        from repro.experiments import ExperimentRunner, Job, registry
        from repro.experiments.checkpoint import job_key
        from repro.experiments.runner import derive_seed
        from repro.telemetry import job_id_from_key

        victim = derive_seed(0, 1)
        monkeypatch.setenv(chaos.ENV_CHAOS, f"hang:seed={victim}:secs=20")
        monkeypatch.setenv(chaos.ENV_CHAOS_STATE, str(tmp_path / "state"))
        chaos.reset()
        name = registry.resolve(harness.PROBE_EXPERIMENT)
        runner = ExperimentRunner(cache_dir=None, max_workers=2, ledger=False,
                                  timeout_s=2.0, stream=True,
                                  heartbeat_s=0.1, stale_after_s=0.5)
        results = runner.run([Job(name, {}, derive_seed(0, i))
                              for i in range(4)])
        hung = [r for r in results if r.seed == victim]
        assert hung and hung[0].outcome == "timeout"
        jid = job_id_from_key(job_key(name, {}, victim))
        stale = [e for e in runner.progress.stale_events
                 if e["job_id"] == jid]
        assert stale, "hung job was never flagged stale"
        finished = runner.progress.jobs[jid]["finished_mono"]
        assert stale[0]["at_mono"] < finished, (
            "stale warning did not precede the timeout outcome")

    @fork_only
    def test_combined_acceptance_scenario(self, tmp_path):
        """The pinned acceptance schedule: SIGKILL + hang + torn write in
        a 16-job sweep, exact telemetry, then a resume that re-runs
        exactly one job."""
        self._run("combined", tmp_path, workers=4)

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            harness.run_suite(["no-such-scenario"], workdir=tmp_path)

    def test_scenarios_restore_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(chaos.ENV_CHAOS, "ledger")
        harness.run_scenario("exc", tmp_path)
        assert os.environ[chaos.ENV_CHAOS] == "ledger"
