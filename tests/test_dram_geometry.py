"""Tests for DRAM geometry."""

import pytest

from repro.dram import DDR3_2GB, TINY_GEOMETRY, DramGeometry


class TestDramGeometry:
    def test_defaults_capacity(self):
        geo = DDR3_2GB
        assert geo.capacity_bytes == 2 * 1024**3

    def test_row_bits(self):
        assert TINY_GEOMETRY.row_bits == 128 * 8

    def test_cells_per_bank(self):
        geo = DramGeometry(banks=2, rows=4, row_bytes=16)
        assert geo.cells_per_bank == 4 * 16 * 8

    def test_total_cells(self):
        geo = DramGeometry(banks=2, rows=4, row_bytes=16)
        assert geo.total_cells == 2 * 4 * 16 * 8

    def test_check_bank_accepts(self):
        TINY_GEOMETRY.check_bank(1)

    def test_check_bank_rejects(self):
        with pytest.raises(IndexError):
            TINY_GEOMETRY.check_bank(2)

    def test_check_row_rejects_negative(self):
        with pytest.raises(IndexError):
            TINY_GEOMETRY.check_row(-1)

    def test_rows_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DramGeometry(rows=1000)

    def test_banks_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DramGeometry(banks=3)
