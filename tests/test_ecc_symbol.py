"""Tests for the single-symbol-correcting GF(256) code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import SYMBOL_72_64, DecodeStatus, SingleSymbolCorrectingCode
from repro.ecc.gf256 import gf_div, gf_inv, gf_mul, gf_pow


class TestGf256:
    def test_multiplicative_identity(self):
        for a in (1, 7, 200, 255):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        assert gf_mul(0, 123) == 0

    @given(st.integers(min_value=1, max_value=255))
    @settings(max_examples=50)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(st.integers(min_value=1, max_value=255), st.integers(min_value=1, max_value=255))
    @settings(max_examples=50)
    def test_div_is_mul_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    def test_pow_generator_order(self):
        # alpha = 2 generates the multiplicative group of order 255.
        assert gf_pow(2, 255) == 1
        assert gf_pow(2, 1) == 2

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)


def random_word(seed, bits=64):
    return np.random.default_rng(seed).integers(0, 2, size=bits).astype(np.uint8)


class TestSymbolCode:
    def test_dimensions(self):
        assert SYMBOL_72_64.data_bits == 64
        assert SYMBOL_72_64.code_bits == 80

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40)
    def test_clean_roundtrip(self, seed):
        data = random_word(seed)
        result = SYMBOL_72_64.decode(SYMBOL_72_64.encode(data))
        assert result.status == DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=80)
    def test_any_single_symbol_error_corrected(self, seed, symbol, error_value):
        data = random_word(seed)
        codeword = SYMBOL_72_64.encode(data)
        corrupted = codeword.copy()
        for b in range(8):
            if (error_value >> b) & 1:
                corrupted[symbol * 8 + b] ^= 1
        result = SYMBOL_72_64.decode(corrupted)
        assert result.status == DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)

    def test_whole_byte_corruption_corrected(self):
        data = random_word(9)
        codeword = SYMBOL_72_64.encode(data)
        codeword[24:32] ^= 1
        result = SYMBOL_72_64.decode(codeword)
        assert result.status == DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)

    def test_two_symbol_errors_not_silently_cleaned(self):
        data = random_word(10)
        codeword = SYMBOL_72_64.encode(data)
        codeword[0] ^= 1   # symbol 0
        codeword[12] ^= 1  # symbol 1
        result = SYMBOL_72_64.decode(codeword)
        # Two corrupted symbols are either detected or miscorrected, but
        # never reported CLEAN.
        assert result.status != DecodeStatus.CLEAN

    def test_corrects_strictly_more_byte_errors_than_secded(self):
        from repro.ecc import SECDED_72_64

        data = random_word(11)
        # 4 flips inside one byte: SECDED fails, the symbol code corrects.
        sym_cw = SYMBOL_72_64.encode(data)
        sym_cw[8:12] ^= 1
        assert np.array_equal(SYMBOL_72_64.decode(sym_cw).data, data)
        sec_cw = SECDED_72_64.encode(data)
        sec_cw[8:12] ^= 1
        sec_result = SECDED_72_64.decode(sec_cw)
        assert not (
            sec_result.status == DecodeStatus.CORRECTED
            and np.array_equal(sec_result.data, data)
        ) or sec_result.status == DecodeStatus.DETECTED_UNCORRECTABLE

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            SingleSymbolCorrectingCode(0)
        with pytest.raises(ValueError):
            SingleSymbolCorrectingCode(254)
