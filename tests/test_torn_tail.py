"""Exhaustive torn-tail tolerance: truncate the final record of a
service job journal and of a sweep checkpoint at EVERY byte offset.

A SIGKILL (or power loss) mid-append leaves a prefix of the final line
on disk.  Because every writer in the repo goes through a single
``O_APPEND`` write, *only* the last record can be damaged — and every
reader must (a) never raise, (b) recover every complete record, and
(c) count the torn line instead of silently swallowing it.  This file
proves that byte-for-byte, not just for one lucky cut point.
"""

import json
import multiprocessing

import pytest

from repro.experiments.checkpoint import SweepCheckpoint, job_key
from repro.experiments.result import ExperimentResult
from repro.service import JobJournal, JobSpec
from repro.telemetry import RunLedger
from repro.utils.jsonl import append_record

PROBE = "sidedness_ablation"


def _result(seed):
    return ExperimentResult(name=PROBE, payload={"seed": seed}, seed=seed,
                            duration_s=0.01)


def _build_journal(path, n=3):
    """A journal of n submissions, the first one finished."""
    journal = JobJournal(path)
    specs = [JobSpec.from_payload({"name": PROBE, "seed": i})
             for i in range(n)]
    for spec in specs:
        journal.submit(spec)
    journal.start(specs[0].sid, "r0")
    journal.done(specs[0].sid, "ok", jobs=1, errors=0)
    return journal, specs


def _build_checkpoint(path, n=3):
    checkpoint = SweepCheckpoint(path)
    for seed in range(n):
        assert checkpoint.record(_result(seed))
    return checkpoint


def _line_spans(blob):
    """(start, end) byte spans of each newline-terminated record."""
    spans, start = [], 0
    for i, byte in enumerate(blob):
        if byte == 0x0A:
            spans.append((start, i + 1))
            start = i + 1
    return spans


class TestJournalTornAtEveryOffset:
    def test_replay_recovers_all_complete_records(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        _journal, specs = _build_journal(path)
        blob = path.read_bytes()
        spans = _line_spans(blob)
        assert len(spans) == 5  # 3 submits + start + done
        last_start, last_end = spans[-1]

        # Cut the file at every offset inside the final record — from
        # "record entirely gone" to "all but the newline".  Two offsets
        # are NOT tears: the line boundary (record cleanly absent) and
        # everything-but-the-newline (the record is complete and must
        # be recovered, newline or not).
        for cut in range(last_start, last_end):
            path.write_bytes(blob[:cut])
            state = JobJournal(path).replay()  # must never raise
            # All complete records survive intact.
            assert state.order == [s.sid for s in specs]
            assert specs[0].sid in state.starts
            if cut == last_start:
                assert state.corrupt_lines == 0  # clean line boundary
                assert specs[0].sid not in state.done
                assert state.pending() == [s.sid for s in specs]
            elif cut == last_end - 1:
                assert state.corrupt_lines == 0  # complete, no newline
                assert state.done[specs[0].sid]["outcome"] == "ok"
                assert state.pending() == [s.sid for s in specs[1:]]
            else:
                # A genuinely torn ``done`` record reads as pending
                # (at-least-once; checkpoint/cache make re-runs cheap).
                assert state.corrupt_lines == 1
                assert specs[0].sid not in state.done
                assert state.pending() == [s.sid for s in specs]

    def test_pending_set_is_conservative_under_tears(self, tmp_path):
        """A torn ``done`` record re-enqueues the job — at-least-once,
        never lost; the checkpoint/cache make the re-run idempotent."""
        path = tmp_path / "jobs.jsonl"
        _journal, specs = _build_journal(path, n=1)
        blob = path.read_bytes()
        last_start, last_end = _line_spans(blob)[-1]
        for cut in range(last_start + 1, last_end - 1):
            path.write_bytes(blob[:cut])
            assert JobJournal(path).replay().pending() == [specs[0].sid]

    def test_append_after_every_tear_is_isolated(self, tmp_path):
        """Appending after any tear must start a fresh line, never
        splice bytes onto the torn prefix."""
        path = tmp_path / "jobs.jsonl"
        _journal, specs = _build_journal(path)
        blob = path.read_bytes()
        last_start, last_end = _line_spans(blob)[-1]
        extra = JobSpec.from_payload({"name": PROBE, "seed": 99})
        for cut in range(last_start + 1, last_end - 1):
            path.write_bytes(blob[:cut])
            assert JobJournal(path).submit(extra)
            state = JobJournal(path).replay()
            assert state.order[-1] == extra.sid
            assert state.corrupt_lines == 1


class TestCheckpointTornAtEveryOffset:
    def test_load_recovers_all_complete_records(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _build_checkpoint(path)
        blob = path.read_bytes()
        spans = _line_spans(blob)
        assert len(spans) == 3
        last_start, last_end = spans[-1]
        survivors = {job_key(PROBE, {}, seed) for seed in range(2)}

        for cut in range(last_start, last_end):
            path.write_bytes(blob[:cut])
            checkpoint = SweepCheckpoint(path)
            records = checkpoint.load()  # must never raise
            if cut == last_end - 1:
                # Complete record, only the newline missing: recovered.
                assert set(records) == survivors | {job_key(PROBE, {}, 2)}
                assert checkpoint.corrupt_lines == 0
            else:
                assert set(records) == survivors
                assert checkpoint.corrupt_lines == (
                    0 if cut == last_start else 1)
            # Restored results stay usable, flagged as not re-executed.
            results = checkpoint.results()
            assert len(results) == len(records)
            assert all(r.cache_hit for r in results.values())

    def test_record_after_every_tear_is_isolated_and_resumes(self, tmp_path):
        """After any tear, re-recording the damaged job must append a
        clean record — the resume path after a mid-append SIGKILL."""
        path = tmp_path / "sweep.jsonl"
        _build_checkpoint(path)
        blob = path.read_bytes()
        last_start, last_end = _line_spans(blob)[-1]
        for cut in range(last_start + 1, last_end - 1):
            path.write_bytes(blob[:cut])
            checkpoint = SweepCheckpoint(path)
            assert checkpoint.record(_result(2))
            reread = SweepCheckpoint(path)
            assert len(reread.load()) == 3
            assert reread.corrupt_lines == 1

    def test_every_offset_of_a_single_record_file(self, tmp_path):
        """Degenerate case: the whole file is one (torn) record."""
        path = tmp_path / "solo.jsonl"
        _build_checkpoint(path, n=1)
        blob = path.read_bytes()
        for cut in range(len(blob) - 1):
            path.write_bytes(blob[:cut])
            checkpoint = SweepCheckpoint(path)
            assert checkpoint.load() == {}
            assert checkpoint.corrupt_lines == (1 if cut else 0)


def _hammer_journal(path, worker, per_worker):
    """One process appending ``per_worker`` submissions to a shared
    journal — each a full submit/start/done triple."""
    journal = JobJournal(path)
    for i in range(per_worker):
        spec = JobSpec.from_payload(
            {"name": PROBE, "seed": worker * 10_000 + i})
        journal.submit(spec)
        journal.start(spec.sid, f"run-{worker}-{i}")
        journal.done(spec.sid, "ok", jobs=1, errors=0)


def _hammer_ledger(path, worker, per_worker):
    ledger = RunLedger(path)
    for i in range(per_worker):
        ledger.record(_result(worker * 10_000 + i), command="hammer")


class TestConcurrentAppenders:
    """N processes hammering one journal / ledger: whole-record
    ``O_APPEND`` writes mean ZERO torn or interleaved lines — the
    byte-level guarantee the multi-daemon shared state dir rests on."""

    PROCS = 4
    PER_WORKER = 25

    def _spawn(self, target, path):
        workers = [multiprocessing.Process(
            target=target, args=(path, w, self.PER_WORKER))
            for w in range(self.PROCS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(60.0)
            assert worker.exitcode == 0

    def test_journal_survives_concurrent_appenders(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        self._spawn(_hammer_journal, path)

        # Every line parses on its own: no tears, no interleaving.
        lines = path.read_bytes().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == self.PROCS * self.PER_WORKER * 3

        state = JobJournal(path).replay()
        assert state.corrupt_lines == 0
        assert len(state.order) == self.PROCS * self.PER_WORKER
        assert len(state.done) == self.PROCS * self.PER_WORKER
        assert state.pending() == []

    def test_ledger_survives_concurrent_appenders(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        self._spawn(_hammer_ledger, path)

        lines = path.read_bytes().splitlines()
        assert all(json.loads(line) for line in lines)
        assert len(lines) == self.PROCS * self.PER_WORKER

        ledger = RunLedger(path)
        records = ledger.scan()
        assert ledger.corrupt_lines == 0
        assert len(records) == self.PROCS * self.PER_WORKER
        seeds = sorted(r["seed"] for r in records)
        assert seeds == sorted(w * 10_000 + i for w in range(self.PROCS)
                               for i in range(self.PER_WORKER))


class TestAppendRecordTornTailContract:
    def test_append_prefixes_newline_onto_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_record(path, b'{"a": 1}\n')
        with open(path, "ab") as handle:
            handle.write(b'{"torn": tru')  # no newline: torn tail
        append_record(path, b'{"b": 2}\n')
        lines = path.read_bytes().split(b"\n")
        parsed = []
        for line in lines:
            if not line:
                continue
            try:
                parsed.append(json.loads(line))
            except ValueError:
                parsed.append(None)
        assert parsed == [{"a": 1}, None, {"b": 2}]

    @pytest.mark.parametrize("tail", [b"", b"\n", b'{"x": 1}\n'])
    def test_clean_tails_get_no_spurious_blank_line(self, tmp_path, tail):
        path = tmp_path / "log.jsonl"
        if tail:
            path.write_bytes(tail)
        append_record(path, b'{"y": 2}\n')
        assert b"\n\n" not in path.read_bytes()
