"""Tests for the DramModule facade."""

import numpy as np
import pytest

from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333

GEO = DramGeometry(banks=2, rows=128, row_bytes=256)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.02, hc_first_median=5_000, hc_first_min=1_000
)


def make_module(**kwargs):
    defaults = dict(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=5)
    defaults.update(kwargs)
    return DramModule(**defaults)


class TestModule:
    def test_bank_count(self):
        module = make_module()
        assert len(module.banks) == GEO.banks

    def test_serial_changes_fault_map(self):
        a = make_module(serial="A")
        b = make_module(serial="B")
        a.bank(0).bulk_activate(50, 100_000)
        b.bank(0).bulk_activate(50, 100_000)
        a.settle()
        b.settle()
        flips_a = [(r, b_) for r, b_, *_ in a.bank(0).stats.flip_log]
        flips_b = [(r, b_) for r, b_, *_ in b.bank(0).stats.flip_log]
        assert flips_a != flips_b

    def test_from_vintage_profile(self):
        module = DramModule.from_vintage("B", 2013.0, geometry=GEO)
        assert module.profile.vulnerable
        assert module.manufacturer == "B"

    def test_logical_remap_applied(self):
        module = make_module(remap_scheme="block-swap")
        data = np.zeros(GEO.row_bits, dtype=np.uint8)
        module.write_row(0, 8, data)
        # Physical row is 8 ^ 0b100 = 12 under block-swap.
        assert np.all(module.bank(0).row_bits(12) == 0)

    def test_total_counters(self):
        module = make_module()
        module.activate(0, 10)
        module.activate(1, 20)
        assert module.total_activations() == 2

    def test_refresh_physical_vs_logical(self):
        module = make_module(remap_scheme="block-swap")
        module.bank(0).bulk_activate(12, 50_000)  # physical aggressor
        # Victim physical 13 = logical 9; refreshing logical 9 must hit it.
        flips = module.refresh_row(0, module.remapper.to_logical(13))
        module.settle()
        assert module.bank(0).stats.refreshes == 1
        assert len(flips) >= 0  # materialization path exercised

    def test_settle_materializes(self):
        module = make_module()
        module.bank(0).bulk_activate(50, 200_000)
        count = module.settle()
        assert count == module.total_flips()
        assert count > 0

    def test_repr_contains_identity(self):
        module = make_module(serial="XYZ")
        assert "XYZ" in repr(module)

    def test_bank_bounds(self):
        module = make_module()
        with pytest.raises(IndexError):
            module.bank(GEO.banks)
