"""Tests for DRAM data patterns."""

import numpy as np
import pytest

from repro.dram import PATTERN_NAMES, get_pattern, make_random_pattern, pattern_bits


class TestPatterns:
    def test_all_named_patterns_exist(self):
        for name in PATTERN_NAMES:
            assert get_pattern(name) is not None

    def test_solid_values(self):
        assert np.all(get_pattern("solid0")(0, 16) == 0)
        assert np.all(get_pattern("solid1")(3, 16) == 0xFF)

    def test_rowstripe_alternates(self):
        p = get_pattern("rowstripe")
        assert np.all(p(0, 8) == 0xFF)
        assert np.all(p(1, 8) == 0x00)

    def test_rowstripe_inverse_is_complement(self):
        a = get_pattern("rowstripe")(4, 8)
        b = get_pattern("rowstripe_inv")(4, 8)
        assert np.all(a ^ b == 0xFF)

    def test_checkered_alternates_both_axes(self):
        p = get_pattern("checkered")
        assert np.all(p(0, 4) == 0x55)
        assert np.all(p(1, 4) == 0xAA)

    def test_random_pattern_deterministic_per_row(self):
        p = make_random_pattern(99)
        assert np.array_equal(p(5, 32), p(5, 32))
        assert not np.array_equal(p(5, 32), p(6, 32))

    def test_pattern_bits_width(self):
        bits = pattern_bits("solid1", 0, 16)
        assert bits.shape == (128,)
        assert np.all(bits == 1)

    def test_unknown_pattern_lists_options(self):
        with pytest.raises(KeyError, match="solid0"):
            get_pattern("nonexistent")

    def test_colstripe_bit_structure(self):
        bits = pattern_bits("colstripe", 0, 1)
        # 0x55 LSB-first: 1,0,1,0,...
        assert list(bits) == [1, 0, 1, 0, 1, 0, 1, 0]
