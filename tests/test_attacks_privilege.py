"""Tests for the exploitation models."""

import pytest

from repro.attacks import (
    FlipTemplate,
    default_ffs_predicate,
    drammer_success_probability,
    flip_feng_shui_templates,
    javascript_success_probability,
    pte_spray_success_probability,
    scan_templates,
)
from repro.dram import DramGeometry, DramModule, INVULNERABLE, VulnerabilityProfile
from repro.dram.timing import DDR3_1333

# 4 KiB rows so template byte offsets span a whole OS page.
GEO = DramGeometry(banks=2, rows=1024, row_bytes=4096)
PROFILE = VulnerabilityProfile(weak_cell_density=0.002, hc_first_median=50_000, hc_first_min=10_000)


def make_templates(seed=0, rows=300, pressure=200_000):
    module = DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=seed)
    return scan_templates(module, 0, range(10, 10 + rows), pressure)


class TestScanTemplates:
    def test_scan_finds_templates(self):
        templates = make_templates()
        assert len(templates) > 0

    def test_pressure_monotonic(self):
        few = make_templates(pressure=12_000)
        many = make_templates(pressure=500_000)
        assert len(many) > len(few)

    def test_invulnerable_yields_none(self):
        module = DramModule(geometry=GEO, timing=DDR3_1333, profile=INVULNERABLE, seed=0)
        assert scan_templates(module, 0, range(100), 1e9) == []

    def test_directions_consistent_with_polarity(self):
        templates = make_templates()
        assert {t.direction for t in templates} <= {"1to0", "0to1"}

    def test_word_bit_offset(self):
        t = FlipTemplate(bank=0, row=1, bit=130, direction="1to0", hc_first=1.0)
        assert t.word_bit_offset == 2


class TestPteSpray:
    def test_more_spray_more_success(self):
        # A handful of templates so neither setting saturates at 1.0.
        templates = make_templates(rows=6)
        low = pte_spray_success_probability(templates, spray_fraction=0.05, seed=1)
        high = pte_spray_success_probability(templates, spray_fraction=0.6, seed=1)
        assert high > low

    def test_no_templates_no_success(self):
        assert pte_spray_success_probability([], 0.5) == 0.0

    def test_bit_offset_filter(self):
        # A template outside the PFN field is useless.
        useless = [FlipTemplate(bank=0, row=1, bit=0, direction="1to0", hc_first=1.0)]
        assert pte_spray_success_probability(useless, 0.9) == 0.0
        useful = [FlipTemplate(bank=0, row=1, bit=20, direction="1to0", hc_first=1.0)]
        assert pte_spray_success_probability(useful, 0.9, trials=500) > 0.5

    def test_spray_fraction_validated(self):
        with pytest.raises(ValueError):
            pte_spray_success_probability([], 1.5)


class TestFlipFengShui:
    def test_predicate_filters(self):
        inside = FlipTemplate(bank=0, row=1, bit=1500 * 8, direction="1to0", hc_first=1.0)
        outside = FlipTemplate(bank=0, row=1, bit=10, direction="1to0", hc_first=1.0)
        assert default_ffs_predicate(inside)
        assert not default_ffs_predicate(outside)
        usable = flip_feng_shui_templates([inside, outside])
        assert usable == [inside]

    def test_dedup_placement_deterministic_success(self):
        templates = make_templates()
        usable = flip_feng_shui_templates(templates)
        # On a vulnerable 2013-class module there is always a usable spot.
        assert len(usable) > 0


class TestDrammerAndJs:
    def test_bigger_chunk_more_success(self):
        templates = make_templates()
        small = drammer_success_probability(templates, total_rows=1024, chunk_rows=8, seed=2)
        big = drammer_success_probability(templates, total_rows=1024, chunk_rows=512, seed=2)
        assert big > small

    def test_chunk_too_small_fails(self):
        templates = make_templates()
        assert drammer_success_probability(templates, total_rows=1024, chunk_rows=2) == 0.0

    def test_js_more_attempts_more_success(self):
        templates = make_templates()
        one = javascript_success_probability(templates, total_rows=1024, aggressor_attempts=1, seed=3)
        many = javascript_success_probability(templates, total_rows=1024, aggressor_attempts=200, seed=3)
        assert many > one

    def test_empty_templates(self):
        assert drammer_success_probability([], 1024, 64) == 0.0
        assert javascript_success_probability([], 1024, 10) == 0.0
