"""Tests for controller components: requests, energy, counters, refresh."""

import pytest

from repro.controller import (
    EnergyAccount,
    EnergyParams,
    MemRequest,
    PerfCounters,
    RefreshEngine,
)
from repro.dram import DramGeometry, DramModule, VulnerabilityProfile
from repro.dram.timing import DDR3_1333

GEO = DramGeometry(banks=2, rows=128, row_bytes=256)
PROFILE = VulnerabilityProfile(weak_cell_density=0.02, hc_first_median=5_000, hc_first_min=1_000)


def make_module():
    return DramModule(geometry=GEO, timing=DDR3_1333, profile=PROFILE, seed=2)


class TestMemRequest:
    def test_ordering_by_arrival(self):
        a = MemRequest(arrival_ns=5.0, bank=0, row=1)
        b = MemRequest(arrival_ns=2.0, bank=1, row=9)
        assert sorted([a, b])[0] is b

    def test_latency_requires_completion(self):
        req = MemRequest(arrival_ns=0.0, bank=0, row=0)
        with pytest.raises(ValueError):
            _ = req.latency_ns
        req.completed_ns = 30.0
        assert req.latency_ns == 30.0


class TestEnergyAccount:
    def test_dynamic_energy_sums(self):
        acct = EnergyAccount(params=EnergyParams(act_nj=2.0, pre_nj=1.0))
        acct.record("act", 3)
        acct.record("pre", 3)
        assert acct.dynamic_nj == pytest.approx(9.0)

    def test_unknown_command_rejected(self):
        acct = EnergyAccount()
        with pytest.raises(KeyError):
            acct.record("bogus")

    def test_refresh_share(self):
        acct = EnergyAccount()
        acct.record("refresh_row", 10)
        acct.record("act", 1)
        assert 0 < acct.refresh_share() < 1

    def test_background_energy(self):
        acct = EnergyAccount()
        acct.advance(1000.0)
        assert acct.background_nj == pytest.approx(1000.0 * acct.params.background_nw_per_ns)


class TestPerfCounters:
    def test_windows_close_on_time(self):
        perf = PerfCounters(window_ns=100.0, top_k=2)
        perf.record_activate(0, 1, 10.0)
        perf.record_activate(0, 1, 50.0)
        perf.record_activate(0, 2, 150.0)  # closes first window
        assert len(perf.samples) == 1
        assert perf.samples[0].total_activations == 2
        assert perf.samples[0].hot_rows[0] == ((0, 1), 2)

    def test_flush(self):
        perf = PerfCounters(window_ns=100.0)
        perf.record_activate(0, 1, 10.0)
        perf.flush(350.0)
        assert len(perf.samples) == 3
        assert perf.samples[0].peak_row_count == 1
        assert perf.samples[1].total_activations == 0

    def test_top_k_limits_visibility(self):
        perf = PerfCounters(window_ns=100.0, top_k=1)
        for row in range(5):
            perf.record_activate(0, row, 1.0)
        perf.flush(150.0)
        assert len(perf.samples[0].hot_rows) == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            PerfCounters(window_ns=0)


class TestRefreshEngine:
    def test_covers_all_rows_each_window(self):
        module = make_module()
        engine = RefreshEngine(module, multiplier=1.0)
        window = module.timing.tREFW
        engine.tick(window * 1.001)
        # Every row in every bank refreshed at least once per window.
        assert engine.stats.rows_refreshed >= GEO.rows * GEO.banks

    def test_multiplier_scales_rate(self):
        module = make_module()
        base = RefreshEngine(module, multiplier=1.0)
        fast = RefreshEngine(make_module(), multiplier=4.0)
        assert fast.interval_ns == pytest.approx(base.interval_ns / 4)
        assert fast.refresh_ops_per_second() == pytest.approx(4 * base.refresh_ops_per_second(), rel=0.01)

    def test_refresh_interrupts_hammering(self):
        module = make_module()
        engine = RefreshEngine(module, multiplier=1.0)
        bank = module.bank(0)
        # Accumulate pressure below thresholds, tick a full window of
        # refreshes, continue: no flips because refresh reset victims.
        for chunk in range(4):
            bank.bulk_activate(60, 400)
            engine.tick(engine.next_ref_ns + engine.effective_window_ns)
        module.settle()
        assert module.total_flips() == 0

    def test_bandwidth_overhead_scales(self):
        module = make_module()
        engine = RefreshEngine(module, multiplier=7.0)
        base = RefreshEngine(make_module(), multiplier=1.0)
        assert engine.bandwidth_overhead_fraction() == pytest.approx(
            7 * base.bandwidth_overhead_fraction(), rel=0.01
        )

    def test_due_and_tick_consume(self):
        module = make_module()
        engine = RefreshEngine(module)
        t = engine.next_ref_ns
        assert engine.due(t)
        engine.tick(t)
        assert not engine.due(t)
