"""Sweep checkpointing: crash-safe append, schema validation, resume."""

import json
import os

import pytest

from repro.experiments import ExperimentRunner, Job, derive_seed, execute_job
from repro.experiments.checkpoint import CHECKPOINT_SCHEMA, SweepCheckpoint, job_key
from repro.experiments.registry import experiment, unregister


@pytest.fixture()
def flaky():
    """Registered experiment that raises for odd seeds."""

    @experiment("_ckpt_flaky", "fails on odd seeds", section="II", tags=("test",))
    def _ckpt_flaky(seed: int = 0):
        if seed % 2:
            raise RuntimeError(f"odd seed {seed}")
        return {"seed": seed}

    yield "_ckpt_flaky"
    unregister("_ckpt_flaky")


class TestJobKey:
    def test_matches_cache_key(self, tmp_path):
        from repro.experiments.runner import ResultCache

        cache = ResultCache(tmp_path)
        assert (cache.key("sidedness_ablation", {"a": 1}, 7)
                == job_key("sidedness_ablation", {"a": 1}, 7))

    def test_param_order_does_not_matter(self):
        assert (job_key("sidedness_ablation", {"a": 1, "b": 2}, 0)
                == job_key("sidedness_ablation", {"b": 2, "a": 1}, 0))

    def test_seed_and_params_matter(self):
        base = job_key("sidedness_ablation", {}, 0)
        assert job_key("sidedness_ablation", {}, 1) != base
        assert job_key("sidedness_ablation", {"x": 1}, 0) != base


class TestRecordAndLoad:
    def test_roundtrip_restores_full_result(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        result = execute_job("sidedness_ablation", seed=3)
        assert ckpt.record(result)
        restored = SweepCheckpoint(ckpt.path).results()
        key = job_key(result.name, result.params, result.seed)
        assert restored[key].payload == result.payload
        assert restored[key].cache_hit  # restored, not re-executed
        assert restored[key].seed == 3

    def test_record_is_idempotent(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        result = execute_job("sidedness_ablation", seed=1)
        assert ckpt.record(result)
        assert ckpt.record(result)  # dedup, still True
        assert len(SweepCheckpoint(ckpt.path)) == 1

    def test_errored_results_are_refused(self, tmp_path, flaky):
        from repro.experiments import execute_job_safe

        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        bad = execute_job_safe(flaky, seed=1)
        assert bad.error is not None
        assert not ckpt.record(bad)
        assert len(ckpt) == 0

    def test_corrupt_and_foreign_lines_are_skipped_and_counted(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        ckpt.record(execute_job("sidedness_ablation", seed=0))
        with open(ckpt.path, "a") as handle:
            handle.write('{"torn": tru')  # crash mid-write
            handle.write("\n")
            handle.write(json.dumps({"schema": 999, "key": "x", "result": {}}) + "\n")
        fresh = SweepCheckpoint(ckpt.path)
        assert len(fresh.load()) == 1
        assert fresh.corrupt_lines == 2

    def test_io_failure_reports_false_not_raise(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        ckpt = SweepCheckpoint(target)  # appending to a directory fails
        assert not ckpt.record(execute_job("sidedness_ablation", seed=0))

    def test_schema_version_is_stamped(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.jsonl")
        ckpt.record(execute_job("sidedness_ablation", seed=0))
        record = json.loads(ckpt.path.read_text().splitlines()[0])
        assert record["schema"] == CHECKPOINT_SCHEMA


class TestRunnerIntegration:
    def test_resume_skips_completed_jobs_without_cache(self, tmp_path):
        path = tmp_path / "c.jsonl"
        jobs = [Job("sidedness_ablation", {}, derive_seed(0, i)) for i in range(4)]
        first = ExperimentRunner(checkpoint=path, collect_metrics=True,
                                 ledger=False)
        first.run(jobs[:2])  # partial sweep, then "crash"
        resumed = ExperimentRunner(checkpoint=path, collect_metrics=True,
                                   ledger=False)
        results = resumed.run(jobs)
        assert len(results) == 4
        assert resumed.metrics.value("runner_jobs_total",
                                     cache_hit="true", outcome="ok") == 2
        assert resumed.metrics.value("runner_jobs_total",
                                     cache_hit="false", outcome="ok") == 2

    def test_resume_false_reexecutes_everything(self, tmp_path):
        path = tmp_path / "c.jsonl"
        jobs = [Job("sidedness_ablation", {}, derive_seed(0, i)) for i in range(3)]
        ExperimentRunner(checkpoint=path, ledger=False).run(jobs)
        again = ExperimentRunner(checkpoint=path, resume=False,
                                 collect_metrics=True, ledger=False)
        again.run(jobs)
        assert again.metrics.value("runner_jobs_total",
                                   cache_hit="false", outcome="ok") == 3
        # Re-running did not duplicate checkpoint records.
        assert len(SweepCheckpoint(path)) == 3

    def test_failed_jobs_rerun_on_resume(self, tmp_path, flaky):
        path = tmp_path / "c.jsonl"
        jobs = [Job(flaky, {}, s) for s in (0, 1, 2)]  # seed 1 fails
        first = ExperimentRunner(checkpoint=path, ledger=False)
        results = first.run(jobs)
        assert sum(r.ok for r in results) == 2
        assert len(SweepCheckpoint(path)) == 2  # the failure is not recorded
        resumed = ExperimentRunner(checkpoint=path, collect_metrics=True,
                                   ledger=False)
        resumed.run(jobs)
        # Only the failed job re-executes (and fails again).
        assert resumed.metrics.value("runner_jobs_total",
                                     cache_hit="false", outcome="error") == 1
        assert resumed.metrics.value("runner_jobs_total",
                                     cache_hit="true", outcome="ok") == 2
