"""Tests for DramBank: data, disturbance accounting, bulk path."""

import numpy as np
import pytest

from repro.dram import DisturbanceModel, DramBank, DramGeometry, VulnerabilityProfile

GEO = DramGeometry(banks=2, rows=128, row_bytes=256)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.02,
    hc_first_median=5_000,
    hc_first_min=1_000,
    hc_first_sigma=0.4,
    distance2_weight=0.0,
)


def make_bank(profile=PROFILE, seed=3, pattern="solid1"):
    model = DisturbanceModel(GEO, profile, seed)
    return DramBank(GEO, model, 0, default_pattern=pattern)


class TestDataAccess:
    def test_default_fill(self):
        bank = make_bank()
        assert np.all(bank.row_bits(5) == 1)

    def test_write_read_roundtrip(self):
        bank = make_bank()
        data = np.zeros(GEO.row_bits, dtype=np.uint8)
        data[::7] = 1
        bank.write(10, data)
        assert np.array_equal(bank.read(10), data)

    def test_write_bytes_roundtrip(self):
        bank = make_bank()
        payload = bytes(range(256))
        bank.write_bytes(4, payload)
        assert bank.read_bytes(4) == payload

    def test_write_wrong_shape_rejected(self):
        bank = make_bank()
        with pytest.raises(ValueError):
            bank.write(0, np.ones(10, dtype=np.uint8))

    def test_write_bytes_wrong_size_rejected(self):
        bank = make_bank()
        with pytest.raises(ValueError):
            bank.write_bytes(0, b"short")

    def test_read_returns_copy(self):
        bank = make_bank()
        a = bank.read(3)
        a[:] = 0
        assert np.all(bank.read(3) == 1)

    def test_touched_rows(self):
        bank = make_bank()
        bank.read(7)
        bank.read(3)
        assert bank.touched_rows() == [3, 7]

    def test_open_row_tracking(self):
        bank = make_bank()
        bank.activate(9)
        assert bank.open_row == 9
        bank.precharge()
        assert bank.open_row is None


class TestDisturbanceAccounting:
    def test_activation_pressures_neighbors(self):
        bank = make_bank()
        bank.activate(50)
        assert bank.pressure(49) == 1.0
        assert bank.pressure(51) == 1.0
        assert bank.pressure(50) == 0.0

    def test_own_activation_resets_pressure(self):
        bank = make_bank()
        for _ in range(10):
            bank.activate(50)
        assert bank.pressure(49) == 10.0
        bank.activate(49)
        assert bank.pressure(49) == 0.0

    def test_refresh_resets_pressure(self):
        bank = make_bank()
        bank.activate(50)
        bank.refresh_row(49)
        assert bank.pressure(49) == 0.0

    def test_bulk_activate_equivalent_to_loop(self):
        loop_bank = make_bank(seed=11)
        bulk_bank = make_bank(seed=11)
        for _ in range(3000):
            loop_bank.activate(60)
        bulk_bank.bulk_activate(60, 3000)
        loop_flips = loop_bank.refresh_row(61)
        bulk_flips = bulk_bank.refresh_row(61)
        assert np.array_equal(loop_flips, bulk_flips)
        assert loop_bank.stats.activations == bulk_bank.stats.activations

    def test_hammering_flips_victims(self):
        bank = make_bank()
        bank.bulk_activate(60, 100_000)
        flips = bank.refresh_row(61)
        assert len(flips) > 0

    def test_flips_persist_after_refresh(self):
        bank = make_bank()
        bank.bulk_activate(60, 100_000)
        bank.refresh_row(61)
        after = bank.row_bits(61)
        # Refresh does not restore disturbed data; the flip is persistent.
        assert np.count_nonzero(after == 0) > 0

    def test_write_clears_flips(self):
        bank = make_bank()
        bank.bulk_activate(60, 100_000)
        bank.settle()
        fresh = np.ones(GEO.row_bits, dtype=np.uint8)
        bank.write(61, fresh)
        assert np.all(bank.read(61) == 1)

    def test_refresh_before_threshold_prevents_flips(self):
        bank = make_bank()
        # Hammer in chunks below every threshold, refreshing in between.
        for _ in range(200):
            bank.bulk_activate(60, 500)  # floor is 1000
            bank.refresh_row(61)
            bank.refresh_row(59)
        bank.settle()
        assert bank.stats.flips_materialized == 0

    def test_no_refresh_same_total_does_flip(self):
        bank = make_bank()
        bank.bulk_activate(60, 200 * 500)
        bank.settle()
        assert bank.stats.flips_materialized > 0

    def test_stats_flip_log_matches_counter(self):
        bank = make_bank()
        bank.bulk_activate(60, 100_000)
        bank.settle()
        assert len(bank.stats.flip_log) == bank.stats.flips_materialized

    def test_distance2_coupling(self):
        profile = VulnerabilityProfile(
            weak_cell_density=0.02,
            hc_first_median=5_000,
            hc_first_min=1_000,
            distance2_weight=0.5,
        )
        bank = make_bank(profile=profile)
        bank.activate(50)
        assert bank.pressure(48) == 0.5
        assert bank.pressure(52) == 0.5

    def test_refresh_all_counts(self):
        bank = make_bank()
        bank.bulk_activate(60, 100_000)
        flips = bank.refresh_all()
        assert flips == bank.stats.flips_materialized
        assert flips > 0

    def test_edge_row_activation_safe(self):
        bank = make_bank()
        bank.activate(0)
        bank.activate(GEO.rows - 1)
        assert bank.pressure(1) == 1.0
        assert bank.pressure(GEO.rows - 2) == 1.0
