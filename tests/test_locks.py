"""Advisory file locks: heartbeats, stale takeover, and fencing.

These are the ownership guarantees the multi-daemon service leans on:
a fresh holder excludes contenders, a SIGKILLed holder's lock is taken
over within the stale bound, and a superseded holder detects the newer
fence token and abandons its write instead of corrupting shared state.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.utils.locks import (
    DEFAULT_STALE_AFTER_S,
    FileLock,
    LockLost,
    read_fence,
)


def _backdate(lock, seconds):
    """Fake a holder that stopped heartbeating ``seconds`` ago."""
    past = time.time() - seconds
    os.utime(lock.path, (past, past))


class TestAcquireRelease:
    def test_acquire_writes_an_inspectable_record(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock", owner="svc-1")
        assert lock.try_acquire()
        assert lock.held
        holder = lock.read_holder()
        assert holder["owner"] == "svc-1"
        assert holder["pid"] == os.getpid()
        assert holder["fence"] == lock.fence == 1
        lock.release()
        assert not lock.held
        assert lock.read_holder() is None

    def test_fresh_holder_excludes_contender(self, tmp_path):
        a = FileLock(tmp_path / "a.lock", owner="a")
        b = FileLock(tmp_path / "a.lock", owner="b")
        assert a.try_acquire()
        assert not b.try_acquire()
        assert not b.acquire(timeout_s=0.15, poll_s=0.02)
        a.release()
        assert b.try_acquire()

    def test_reacquire_while_held_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert lock.try_acquire()
        fence = lock.fence
        assert lock.try_acquire()
        assert lock.fence == fence  # no spurious re-issue

    def test_context_manager_raises_when_contended(self, tmp_path):
        holder = FileLock(tmp_path / "a.lock", owner="holder")
        assert holder.try_acquire()
        with pytest.raises(LockLost):
            with FileLock(tmp_path / "a.lock", owner="late"):
                pass  # pragma: no cover
        holder.release()
        with FileLock(tmp_path / "a.lock", owner="late") as lock:
            assert lock.held

    def test_default_stale_bound(self, tmp_path):
        assert FileLock(tmp_path / "a.lock").stale_after_s == \
            DEFAULT_STALE_AFTER_S


class TestFencing:
    def test_fence_tokens_are_monotonic_across_acquisitions(self, tmp_path):
        path = tmp_path / "a.lock"
        tokens = []
        for _ in range(4):
            lock = FileLock(path)
            assert lock.try_acquire()
            tokens.append(lock.fence)
            lock.release()
        assert tokens == [1, 2, 3, 4]
        assert read_fence(path) == 4  # release never rolls the fence back

    def test_read_fence_defaults_to_zero(self, tmp_path):
        assert read_fence(tmp_path / "never.lock") == 0

    def test_superseded_holder_sees_lock_lost(self, tmp_path):
        victim = FileLock(tmp_path / "a.lock", owner="victim",
                          stale_after_s=0.2)
        assert victim.try_acquire()
        _backdate(victim, 5.0)  # victim "stops heartbeating"
        thief = FileLock(tmp_path / "a.lock", owner="thief",
                         stale_after_s=0.2)
        assert thief.try_acquire()
        assert thief.takeovers == 1
        assert thief.fence > victim.fence
        assert not victim.still_mine()
        with pytest.raises(LockLost) as info:
            victim.ensure()
        assert str(thief.fence) in str(info.value)
        assert not victim.held

    def test_superseded_release_is_a_noop(self, tmp_path):
        victim = FileLock(tmp_path / "a.lock", stale_after_s=0.2)
        assert victim.try_acquire()
        _backdate(victim, 5.0)
        thief = FileLock(tmp_path / "a.lock", stale_after_s=0.2)
        assert thief.try_acquire()
        victim.release()  # must NOT unlink the thief's claim
        assert thief.still_mine()

    def test_ensure_passes_while_mine(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert lock.try_acquire()
        lock.ensure()  # no raise


class TestHeartbeatAndTakeover:
    def test_heartbeat_prevents_takeover(self, tmp_path):
        holder = FileLock(tmp_path / "a.lock", stale_after_s=0.3)
        assert holder.try_acquire()
        contender = FileLock(tmp_path / "a.lock", stale_after_s=0.3)
        for _ in range(4):
            time.sleep(0.1)
            assert holder.heartbeat()
            assert not contender.try_acquire()
        assert holder.still_mine()

    def test_stale_lock_taken_over_within_bound(self, tmp_path):
        holder = FileLock(tmp_path / "a.lock", stale_after_s=0.2)
        assert holder.try_acquire()
        _backdate(holder, 1.0)  # the "crash": heartbeats stop
        contender = FileLock(tmp_path / "a.lock", stale_after_s=0.2)
        started = time.monotonic()
        assert contender.acquire(timeout_s=2.0, poll_s=0.02)
        assert time.monotonic() - started < 1.0
        assert contender.takeovers == 1

    def test_heartbeat_after_takeover_reports_loss(self, tmp_path):
        victim = FileLock(tmp_path / "a.lock", stale_after_s=0.2)
        assert victim.try_acquire()
        _backdate(victim, 5.0)
        thief = FileLock(tmp_path / "a.lock", stale_after_s=0.2)
        assert thief.try_acquire()
        assert not victim.heartbeat()
        assert not victim.held
        assert thief.heartbeat()  # the new owner's heartbeat still works

    def test_unparseable_lock_is_not_mine(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert lock.try_acquire()
        lock.path.write_text("garbage{{{")  # torn by a hostile write
        assert lock.read_holder() == {}
        assert not lock.still_mine()

    def test_holder_age_and_staleness(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock", stale_after_s=0.5)
        assert lock.holder_age_s() is None
        assert not lock.is_stale()
        assert lock.try_acquire()
        assert lock.holder_age_s() < 5.0
        _backdate(lock, 2.0)
        assert lock.is_stale()


def _race_for_lock(path, slot, results):
    """One contender process: try once, report the fence it won (or 0)."""
    lock = FileLock(path, owner=f"proc-{slot}", stale_after_s=30.0)
    won = lock.try_acquire()
    results[slot] = lock.fence if won else 0
    # Winners keep holding until the parent inspects the result.
    if won:
        time.sleep(0.5)
        lock.release()


class TestMultiprocessRace:
    def test_exactly_one_winner_among_racing_processes(self, tmp_path):
        path = tmp_path / "race.lock"
        procs = 6
        with multiprocessing.Manager() as manager:
            results = manager.list([None] * procs)
            workers = [multiprocessing.Process(
                target=_race_for_lock, args=(path, i, results))
                for i in range(procs)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(10.0)
            fences = list(results)
        winners = [f for f in fences if f]
        assert len(winners) == 1, fences
        assert winners[0] == 1
        record = json.loads(path.read_text()) if path.exists() else None
        assert record is None  # winner released on its way out
