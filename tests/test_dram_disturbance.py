"""Tests for the RowHammer disturbance fault model."""

import numpy as np
import pytest

from repro.dram import (
    INVULNERABLE,
    DisturbanceModel,
    DramGeometry,
    VulnerabilityProfile,
)

GEO = DramGeometry(banks=2, rows=128, row_bytes=512)
PROFILE = VulnerabilityProfile(
    weak_cell_density=0.01,
    hc_first_median=50_000,
    hc_first_min=10_000,
    hc_first_sigma=0.4,
)


def make_model(profile=PROFILE, seed=1):
    return DisturbanceModel(GEO, profile, seed)


class TestWeakCellGeneration:
    def test_deterministic(self):
        a = make_model().weak_cells(0, 5)
        b = DisturbanceModel(GEO, PROFILE, 1).weak_cells(0, 5)
        assert np.array_equal(a.bits, b.bits)
        assert np.array_equal(a.hc_first, b.hc_first)

    def test_seed_changes_map(self):
        a = make_model(seed=1).weak_cells(0, 5)
        b = make_model(seed=2).weak_cells(0, 5)
        assert not (
            len(a) == len(b) and np.array_equal(a.bits, b.bits)
        )

    def test_rows_differ(self):
        model = make_model()
        a = model.weak_cells(0, 5)
        b = model.weak_cells(0, 6)
        assert not (len(a) == len(b) and np.array_equal(a.bits, b.bits))

    def test_density_scaling(self):
        model = make_model()
        counts = [len(model.weak_cells(0, r)) for r in range(64)]
        mean = np.mean(counts)
        expected = GEO.row_bits * PROFILE.weak_cell_density
        assert 0.7 * expected < mean < 1.3 * expected

    def test_thresholds_respect_floor(self):
        model = make_model()
        for row in range(32):
            cells = model.weak_cells(0, row)
            if len(cells):
                assert np.all(cells.hc_first >= PROFILE.hc_first_min)

    def test_invulnerable_has_no_cells(self):
        model = make_model(profile=INVULNERABLE)
        for row in range(16):
            assert len(model.weak_cells(0, row)) == 0

    def test_bits_sorted_unique(self):
        cells = make_model().weak_cells(1, 3)
        assert np.all(np.diff(cells.bits) > 0)

    def test_bounds_checked(self):
        model = make_model()
        with pytest.raises(IndexError):
            model.weak_cells(0, GEO.rows)
        with pytest.raises(IndexError):
            model.weak_cells(GEO.banks, 0)


class TestFlipEvaluation:
    def test_no_pressure_no_flips(self):
        model = make_model()
        data = np.ones(GEO.row_bits, dtype=np.uint8)
        assert len(model.flip_mask(0, 5, 0.0, data)) == 0

    def test_huge_pressure_flips_all_flippable(self):
        model = make_model()
        cells = model.weak_cells(0, 5)
        data = np.ones(GEO.row_bits, dtype=np.uint8)
        flips = model.flip_mask(0, 5, 1e12, data)
        # Only true cells (charged when storing 1) flip under all-ones.
        expected = cells.bits[~cells.anti]
        assert np.array_equal(np.sort(flips), np.sort(expected))

    def test_all_zeros_flips_only_anti_cells(self):
        model = make_model()
        cells = model.weak_cells(0, 5)
        data = np.zeros(GEO.row_bits, dtype=np.uint8)
        flips = model.flip_mask(0, 5, 1e12, data)
        expected = cells.bits[cells.anti]
        assert np.array_equal(np.sort(flips), np.sort(expected))

    def test_monotonic_in_pressure(self):
        model = make_model()
        data = np.ones(GEO.row_bits, dtype=np.uint8)
        low = set(model.flip_mask(0, 7, 20_000, data))
        high = set(model.flip_mask(0, 7, 200_000, data))
        assert low <= high

    def test_aggressor_pattern_relief(self):
        # Aggressor storing the same value as the victim relieves
        # aggressor-sensitive cells (higher effective threshold).
        profile = VulnerabilityProfile(
            weak_cell_density=0.05,
            hc_first_median=50_000,
            hc_first_min=10_000,
            aggressor_sensitive_fraction=1.0,
            dpd_relief=10.0,
        )
        model = make_model(profile=profile)
        data = np.ones(GEO.row_bits, dtype=np.uint8)
        same = model.flip_mask(0, 5, 60_000, data, aggressor_bits=data)
        opposing = model.flip_mask(0, 5, 60_000, data, aggressor_bits=1 - data)
        assert len(same) < len(opposing)

    def test_apply_flips_mutates(self):
        model = make_model()
        data = np.ones(GEO.row_bits, dtype=np.uint8)
        flips = model.apply_flips(0, 5, 1e12, data)
        assert np.all(data[flips] == 0)

    def test_apply_flips_idempotent_direction(self):
        # Once flipped (discharged), a cell cannot flip again.
        model = make_model()
        data = np.ones(GEO.row_bits, dtype=np.uint8)
        first = model.apply_flips(0, 5, 1e12, data)
        second = model.apply_flips(0, 5, 1e12, data)
        assert len(first) > 0 and len(second) == 0

    def test_min_threshold(self):
        model = make_model()
        t = model.min_threshold(0, range(32))
        assert t >= PROFILE.hc_first_min
        assert t < float("inf")

    def test_min_threshold_invulnerable_is_inf(self):
        model = make_model(profile=INVULNERABLE)
        assert model.min_threshold(0, range(8)) == float("inf")


class TestProfileValidation:
    def test_min_over_median_rejected(self):
        with pytest.raises(ValueError):
            VulnerabilityProfile(weak_cell_density=0.1, hc_first_median=100, hc_first_min=200)

    def test_density_bounds(self):
        with pytest.raises(ValueError):
            VulnerabilityProfile(weak_cell_density=1.5)

    def test_vulnerable_flag(self):
        assert not INVULNERABLE.vulnerable
        assert PROFILE.vulnerable
