"""Tests for the CPU cache substrate and user-level attack programs."""

import pytest

from repro.core.scenarios import scaled_scenario
from repro.cpu import CpuMemorySystem, SetAssociativeCache, build_eviction_set


class TestCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(size_bytes=4096, line_bytes=64, ways=2)
        assert not cache.access(0)
        assert cache.access(0)

    def test_lru_eviction(self):
        cache = SetAssociativeCache(size_bytes=4096, line_bytes=64, ways=2)
        sets = cache.n_sets
        stride = 64 * sets  # same set, different tags
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts tag of address 0 (LRU)
        assert not cache.contains(0)
        assert cache.contains(stride)
        assert cache.contains(2 * stride)

    def test_access_refreshes_lru(self):
        cache = SetAssociativeCache(size_bytes=4096, line_bytes=64, ways=2)
        stride = 64 * cache.n_sets
        cache.access(0)
        cache.access(stride)
        cache.access(0)             # 0 becomes MRU
        cache.access(2 * stride)    # evicts `stride`, not 0
        assert cache.contains(0)
        assert not cache.contains(stride)

    def test_flush(self):
        cache = SetAssociativeCache(size_bytes=4096, line_bytes=64, ways=2)
        cache.access(128)
        assert cache.flush(128)
        assert not cache.contains(128)
        assert not cache.flush(128)

    def test_miss_rate(self):
        cache = SetAssociativeCache(size_bytes=4096, line_bytes=64, ways=2)
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, line_bytes=64, ways=2)

    def test_eviction_set_congruent(self):
        cache = SetAssociativeCache(size_bytes=64 * 1024, line_bytes=64, ways=4)
        target = 4096
        ev_set = build_eviction_set(cache, target, region_base=1 << 20, region_bytes=1 << 22)
        assert len(ev_set) == cache.ways
        assert all(cache.set_index(a) == cache.set_index(target) for a in ev_set)
        assert target not in ev_set

    def test_eviction_set_region_too_small(self):
        cache = SetAssociativeCache(size_bytes=1 << 20, line_bytes=64, ways=16)
        with pytest.raises(ValueError):
            build_eviction_set(cache, 0, region_base=1 << 20, region_bytes=4096)

    def test_eviction_set_actually_evicts(self):
        cache = SetAssociativeCache(size_bytes=64 * 1024, line_bytes=64, ways=4)
        target = 4096
        ev_set = build_eviction_set(cache, target, region_base=1 << 20, region_bytes=1 << 22)
        cache.access(target)
        for address in ev_set:
            cache.access(address)
        assert not cache.contains(target)


class TestUserLevelHammer:
    @pytest.fixture(scope="class")
    def scenario(self):
        return scaled_scenario(scale=20.0)

    def _system(self, scenario, seed=7):
        return CpuMemorySystem(
            scenario.make_module(serial="cpu-test", seed=seed),
            cache=SetAssociativeCache(size_bytes=1 << 20, ways=8),
        )

    def test_naive_loads_absorbed_by_cache(self, scenario):
        stats = self._system(scenario).naive_hammer(0, [999, 1001], 5_000)
        assert stats.target_activations <= len([999, 1001])
        assert stats.flips == 0

    def test_flush_hammer_reaches_dram_every_load(self, scenario):
        stats = self._system(scenario).flush_hammer(
            0, [999, 1001], 10**9, time_budget_ns=scenario.timing.tREFW
        )
        assert stats.activation_efficiency == pytest.approx(1.0)
        assert stats.flips > 0

    def test_eviction_hammer_pays_rate_penalty(self, scenario):
        window = scenario.timing.tREFW
        flush = self._system(scenario).flush_hammer(0, [999, 1001], 10**9, time_budget_ns=window)
        evict = self._system(scenario).eviction_hammer(0, [999, 1001], 10**9, time_budget_ns=window)
        assert 0 < evict.activation_efficiency < 0.5
        assert evict.target_activations < flush.target_activations / 3

    def test_time_budget_respected(self, scenario):
        window = scenario.timing.tREFW
        stats = self._system(scenario).flush_hammer(0, [999, 1001], 10**9, time_budget_ns=window)
        assert stats.elapsed_ns <= window * 1.01

    def test_row_address_roundtrip(self, scenario):
        system = self._system(scenario)
        address = system.row_address(1, 42)
        coord = system.mapping.decode(address)
        assert (coord.bank, coord.row) == (1, 42)
