"""From user-space loads to kernel compromise — §II-A/§II-B end to end.

Run:  python examples/userlevel_attack.py

Part 1: what a user program can do through a real cache — plain loads
(absorbed), the released CLFLUSH test loop (full hammer rate), and the
flush-free JavaScript strategy (eviction sets, rate penalty).

Part 2: the Project-Zero exploit chain executed concretely: page-table
pages sprayed into physical frames, one refresh window of double-sided
hammering, and the corrupted PTEs decoded — the ones that now point at
attacker-owned page tables are the kernel compromise.
"""

from repro.analysis import format_table
from repro.experiments import userlevel_attack_study
from repro.core.scenarios import full_scale_scenario
from repro.os import KernelExploitSimulation


def main() -> None:
    print("Part 1 — hammer strategies behind an 8-way LLC (one refresh window each):")
    study = userlevel_attack_study(seed=0)
    rows = study["rows"] + [dict(study["eviction_on_weak_module"], strategy="eviction (weaker part)")]
    print(format_table(
        ["strategy", "loads issued", "aggressor acts", "efficiency", "flips"],
        [[r["strategy"], r["loads"], r["target_activations"],
          f"{100 * r['efficiency']:.1f}%", r["flips"]] for r in rows],
    ))
    print("  - plain loads never reach DRAM after the first touch;")
    print("  - CLFLUSH achieves the full activation budget;")
    print("  - eviction sets pay ~9x in rate, succeeding only on weaker parts.\n")

    print("Part 2 — the concrete kernel exploit (2013-class module):")
    scenario = full_scale_scenario("B", 2013.2)
    sim = KernelExploitSimulation(scenario.make_module(serial="pz", seed=1), frames=768)
    outcome = sim.run(spray_fraction=0.5, pressure=scenario.attack_budget)
    print(format_table(
        ["stage", "result"],
        [
            ["page-table frames sprayed", outcome.sprayed_frames],
            ["PTEs corrupted by hammering", len(outcome.corrupted_ptes)],
            ["PTEs now mapping attacker page tables", len(outcome.exploitable_ptes)],
            ["kernel compromise", "YES" if outcome.success else "no"],
        ],
    ))
    if outcome.exploitable_ptes:
        frame, index = outcome.exploitable_ptes[0]
        print(f"\nexample: sprayed frame {frame}, PTE {index} flipped to point at an")
        print("attacker-owned page table — the attacker can now forge any mapping.")


if __name__ == "__main__":
    main()
