"""The §II-B attack gallery: from bit flips to system compromise.

Run:  python examples/attack_gallery.py

Scans a vulnerable module for flip templates, then evaluates each
demonstrated attack class: kernel privilege escalation via PTE spray,
Flip Feng Shui (dedup placement), Drammer (contiguity-constrained),
and blind JavaScript hammering.
"""

from repro import full_scale_scenario
from repro.analysis import format_table
from repro.attacks import (
    check_read_isolation,
    drammer_success_probability,
    flip_feng_shui_templates,
    javascript_success_probability,
    pte_spray_success_probability,
    scan_templates,
)


def main() -> None:
    scenario = full_scale_scenario(manufacturer="B", date=2013.0)
    module = scenario.make_module(serial="victim", seed=11)
    budget = scenario.attack_budget

    print("Step 1 — the invariant violation (what makes this an attack):")
    report = check_read_isolation(module, bank=0, accessed_row=500, read_count=budget)
    print(f"  {budget} *read* accesses to row 500 corrupted "
          f"{report.total_corrupted_bits} bits in rows {sorted(report.corrupted_rows)}")
    print(f"  row 500 itself unchanged: {not report.accessed_row_changed}")

    print("\nStep 2 — templating: map the repeatable flips.")
    rows_scanned = 3000
    templates = scan_templates(module, 0, range(64, 64 + rows_scanned), budget)
    print(f"  {len(templates)} flip templates in {rows_scanned} rows "
          f"({len(templates) / rows_scanned:.1f} per row)")

    print("\nStep 3 — exploitation models:")
    pte = pte_spray_success_probability(templates, spray_fraction=0.35, seed=1)
    ffs = flip_feng_shui_templates(templates)
    drm = drammer_success_probability(templates, total_rows=rows_scanned, chunk_rows=256, seed=1)
    js = javascript_success_probability(templates, total_rows=rows_scanned, aggressor_attempts=200, seed=1)
    print(format_table(
        ["attack", "mechanism", "success"],
        [
            ["kernel PTE spray", "flip in sprayed PTE's PFN field", f"{pte:.3f}"],
            ["Flip Feng Shui", "dedup places victim page on a template", f"{len(ffs)} usable templates"],
            ["Drammer", "double-sided inside one contiguous chunk", f"{drm:.3f}"],
            ["JavaScript", "blind aggressor picks, 200 attempts", f"{js:.3f}"],
        ],
    ))


if __name__ == "__main__":
    main()
