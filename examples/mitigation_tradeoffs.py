"""Compare every RowHammer mitigation on one attack (§II-C in one table).

Run:  python examples/mitigation_tradeoffs.py
"""

from repro.analysis import MITIGATION_TABLE_HEADERS, format_table, report_rows
from repro.experiments import mitigation_comparison, para_reliability, refresh_multiplier_sweep


def main() -> None:
    print("Refresh-rate scaling (the deployed immediate fix):")
    sweep = refresh_multiplier_sweep()
    print(format_table(
        ["multiplier", "errors", "bandwidth overhead", "refresh energy"],
        [[f"{r['multiplier']:.0f}x", r["errors"], f"{100 * r['bandwidth_overhead']:.1f}%",
          f"{r['refresh_energy_factor']:.0f}x"] for r in sweep["rows"]],
    ))
    print(f"exact elimination multiplier: {sweep['exact_elimination_multiplier']:.2f}"
          " (paper: 7x)\n")

    print("All mitigations vs the same double-sided attack (scaled scenario):")
    reports = mitigation_comparison()
    print(format_table(list(MITIGATION_TABLE_HEADERS), report_rows(reports)))
    print()

    print("PARA's closed-form guarantee (the paper's advocated solution):")
    para = para_reliability()
    print(format_table(
        ["p", "log10 failures/yr", "decades safer than a disk", "perf overhead"],
        [[f"{r['p']:g}", f"{r['log10_failures_per_year']:.1f}",
          f"{r['log10_margin_vs_disk']:.1f}", f"{100 * r['perf_overhead']:.2f}%"]
         for r in para["rows"]],
    ))


if __name__ == "__main__":
    main()
