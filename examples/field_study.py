"""Regenerate Figure 1: the 129-module RowHammer test campaign.

Run:  python examples/field_study.py

Prints the per-year error-rate series for each manufacturer and an
ASCII log-scale scatter resembling the paper's figure.
"""

from repro.analysis import ascii_log_scatter, format_table
from repro.fieldstudy import run_campaign


def ascii_scatter(results) -> str:
    """Log-scale scatter of per-module error rates, Figure 1 style."""
    points = [
        (r.year, r.errors_per_billion, r.manufacturer) for r in results if r.errors > 0
    ]
    return ascii_log_scatter(points, x_buckets=range(2008, 2015), decades=range(7, -1, -1))


def main() -> None:
    summary = run_campaign(seed=0)
    print(f"modules tested:      {summary.modules_tested}")
    print(f"modules vulnerable:  {summary.modules_vulnerable}  (paper: 110)")
    print(f"earliest vulnerable: {summary.earliest_vulnerable_date}  (paper: 2010)")
    print(f"all 2012-2013 vulnerable: {summary.all_vulnerable_between(2012.0, 2014.0)}")
    print()

    years = range(2008, 2015)
    rows = []
    for mfr in "ABC":
        yearly = summary.yearly_mean_rate(mfr)
        rows.append([mfr] + [f"{yearly.get(y, 0.0):.3g}" for y in years])
    print(format_table(
        ["mfr"] + [str(y) for y in years], rows,
        title="Mean errors per 10^9 cells by manufacture year (Figure 1 series)",
    ))
    print()
    print("Errors/10^9 cells, log scale (letters mark manufacturers present):")
    print(ascii_scatter(summary.results))


if __name__ == "__main__":
    main()
