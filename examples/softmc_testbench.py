"""Drive the simulated DRAM with SoftMC-style test programs.

Run:  python examples/softmc_testbench.py

Reproduces the programming model of the FPGA infrastructure the paper
credits (footnote 1; released as SoftMC, HPCA 2017): raw DDR command
sequences with explicit refresh control — shown here running the two
showcase studies, a RowHammer test and a refresh-paused retention
observation.
"""

from repro import full_scale_scenario
from repro.analysis import format_table
from repro.softmc import DramProgram, SoftMcInterpreter, hammer_program


def main() -> None:
    scenario = full_scale_scenario(manufacturer="B", date=2013.0)
    module = scenario.make_module(serial="dut", seed=5)
    interpreter = SoftMcInterpreter(module)

    print("Program 1 — double-sided RowHammer test on victim row 1000:")
    program = hammer_program(
        bank=0,
        aggressors=[999, 1001],
        iterations=scenario.attack_budget // 2,
        victims_to_init=[1000],
        pattern="rowstripe",
    )
    result = interpreter.run(program)
    print(f"  instructions: {len(program)}, commands executed: {result.commands}")
    print(f"  simulated time: {result.cycles_ns / 1e6:.1f} ms")
    flips = result.mismatches.get((0, 1000), [])
    print(f"  victim bit flips: {len(flips)} at row-bit offsets {flips[:8]}"
          f"{' ...' if len(flips) > 8 else ''}")

    print("\nProgram 2 — the same hammering split by a full refresh pass:")
    halved = DramProgram("hammer-with-ref")
    halved.wr(0, 1000, "rowstripe")
    half = scenario.attack_budget // 4
    halved.loop(half).act(0, 999).pre(0).act(0, 1001).pre(0).end_loop()
    halved.loop(module.geometry.rows // max(1, module.geometry.rows // module.timing.refresh_commands_per_window)).ref().end_loop()
    halved.loop(half).act(0, 999).pre(0).act(0, 1001).pre(0).end_loop()
    halved.rd(0, 1000)
    module2 = scenario.make_module(serial="dut", seed=5)
    result2 = SoftMcInterpreter(module2).run(halved)
    print(f"  victim bit flips: {result2.total_flips} "
          "(refresh inside the window resets the disturbance)")

    print()
    print(format_table(
        ["program", "activations", "flips"],
        [["uninterrupted window", result.commands.get("act", 0), len(flips)],
         ["split by refresh", result2.commands.get("act", 0), result2.total_flips]],
    ))


if __name__ == "__main__":
    main()
