"""DRAM retention: why profiling is hard, and what multi-rate refresh risks.

Run:  python examples/retention_profiling.py

Demonstrates §III-A1: Data Pattern Dependence and Variable Retention
Time let cells escape a multi-round retention test; RAIDR-style
multi-rate refresh inherits those escapes; AVATAR's ECC-scrub upgrade
path drives the escape rate down over deployment days.
"""

from repro.analysis import format_table
from repro.retention import (
    CellPopulation,
    RetentionParams,
    assign_bins,
    field_escapes,
    profile_population,
    runtime_escape_cells,
    simulate_avatar,
)


def main() -> None:
    params = RetentionParams(
        tail_fraction=1e-3, vrt_fraction=1e-3, dpd_fraction=0.6, dpd_min_factor=0.2
    )
    population = CellPopulation(rows=2048, cells_per_row=512, params=params, seed=0)
    print(f"population: {population.n_cells} cells, "
          f"{len(population.vrt_indices)} VRT cells")

    profiling = profile_population(
        population, test_interval_s=0.512, rounds=4, pattern_coverage=0.35, seed=0
    )
    print(f"profiling at 512 ms, 4 rounds: {len(profiling.discovered)} failing cells found")
    print(f"  new discoveries per round: {profiling.round_discoveries}")

    escapes = field_escapes(population, profiling, field_refresh_interval_s=0.256)
    print(f"field escapes at 256 ms refresh over one day: {len(escapes)}  <- the §III-A1 risk")

    assignment = assign_bins(population, profiling.observed_retention_s)
    print()
    print(format_table(
        ["bin", "interval", "rows"],
        [[i, f"{interval * 1000:.0f} ms", count]
         for i, (interval, count) in enumerate(zip(assignment.bins_s, assignment.bin_counts()))],
        title="RAIDR binning",
    ))
    print(f"refresh operations saved: {100 * assignment.savings_fraction():.1f}%")
    raidr_escapes = runtime_escape_cells(population, assignment, observation_s=6 * 3600)
    print(f"RAIDR runtime escape cells (6h): {len(raidr_escapes)}")

    avatar = simulate_avatar(population, assignment, days=5, seed=0)
    print()
    print(format_table(
        ["day", "escapes", "rows upgraded"],
        [[d + 1, e, u] for d, (e, u) in enumerate(zip(avatar.daily_escapes, avatar.daily_upgrades))],
        title="AVATAR scrub-and-upgrade",
    ))
    print(f"final refresh rate: {avatar.refreshes_per_second_final:.0f} rows/s "
          f"(RAIDR: {assignment.refreshes_per_second():.0f}, "
          f"baseline: {assignment.baseline_refreshes_per_second():.0f})")


if __name__ == "__main__":
    main()
