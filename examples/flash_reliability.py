"""NAND flash reliability walk-through (§III-A2 and §III-B).

Run:  python examples/flash_reliability.py

Covers: the error-mechanism breakdown vs wear, FCR lifetime extension,
Retention Failure Recovery, neighbor-assisted correction, and the
two-step programming vulnerability.
"""

from repro.analysis import format_table
from repro.experiments import (
    fcr_study,
    flash_error_sweep,
    recovery_study,
    twostep_lifetime_study,
    twostep_study,
)


def main() -> None:
    print("Error mechanisms vs wear (1 year retention, 20K reads):")
    rows = flash_error_sweep()
    print(format_table(
        ["P/E cycles", "wear+interf", "retention", "read disturb", "dominant"],
        [[r["pe_cycles"], r["wear_and_interference"], r["retention"], r["read_disturb"], r["dominant"]]
         for r in rows],
    ))
    print()

    print("Flash Correct-and-Refresh (FCR) lifetime sweep:")
    fcr = fcr_study()
    print(format_table(
        ["refresh interval", "lifetime (P/E)"],
        [[p.refresh_interval_days or "none", p.raw_lifetime_pe] for p in fcr["points"]],
    ))
    print(f"lifetime multiplier: {fcr['lifetime_multiplier']:.1f}x\n")

    print("Offline recovery mechanisms:")
    rec = recovery_study()
    print(format_table(
        ["mechanism", "errors before", "errors after"],
        [
            ["Retention Failure Recovery", rec["rfr"].errors_before, rec["rfr"].errors_after],
            ["read-disturb recovery", rec["read_disturb_recovery"].errors_before,
             rec["read_disturb_recovery"].errors_after],
            ["neighbor-cell assisted", rec["nac"].errors_before, rec["nac"].errors_after],
        ],
    ))
    print("  (RFR's power is also the §III-A2 privacy warning: a discarded")
    print("   'failed' device's data is probabilistically recoverable.)\n")

    print("Two-step programming vulnerability (HPCA'17):")
    ts = twostep_study()
    print(format_table(
        ["configuration", "LSB errors"],
        [["exposed window", ts["exposed_errors"]],
         ["LSB buffering mitigation", ts["mitigated_errors"]],
         ["control (no window)", ts["control_errors"]]],
    ))
    gain = twostep_lifetime_study()["lifetime_gain_fraction"]
    print(f"lifetime gain from hardening: {100 * gain:.1f}% (paper: ~16%)")


if __name__ == "__main__":
    main()
