"""§III beyond DRAM and flash: STT-MRAM and RRAM vulnerabilities.

Run:  python examples/emerging_memories.py

Quantifies the paper's closing warning — emerging memories "are likely
to exhibit similar and perhaps even more exacerbated reliability
issues" — with two models: STT-MRAM error scaling as the thermal
stability factor shrinks with density, and the RRAM crossbar's
half-select disturb, a literal RowHammer analogue.
"""

from repro.analysis import format_table
from repro.emerging import RramCrossbar, crossbar_hammer_study, scaling_study


def main() -> None:
    print("STT-MRAM: density scaling (lower thermal stability) raises every error class:")
    rows = scaling_study(deltas=(70.0, 60.0, 50.0, 40.0), cells=1 << 18)
    print(format_table(
        ["delta", "read-disturb errors (1M reads)", "retention errors (10 years)"],
        [[r["delta"], f"{r['read_disturb_errors']:.3g}", f"{r['retention_errors_10y']:.3g}"]
         for r in rows],
    ))
    print()

    print("RRAM crossbar: hammering one address disturbs its shared-line neighbors")
    print("(the §II-A isolation violation, in a different technology):")
    study = crossbar_hammer_study(accesses=(1e5, 1e6, 1e7), rows=128, cols=128)
    print(format_table(
        ["accesses to one cell", "victims", "all victims on shared lines"],
        [[r["accesses"], r["victims"], r["all_on_shared_lines"]] for r in study],
    ))
    print()

    tile = RramCrossbar(rows=128, cols=128, seed=0)
    tile.access(64, 64, 10_000_000)
    victims = tile.flipped_cells()[:6]
    print(f"example victim coordinates after 10M accesses of (64, 64): {victims}")
    print("note every victim shares row 64 or column 64 with the hammered cell.")


if __name__ == "__main__":
    main()
