"""Quickstart: hammer a simulated DRAM module, then protect it with PARA.

Run:  python examples/quickstart.py
"""

from repro import MemorySystem, scaled_scenario
from repro.analysis import format_table


def main() -> None:
    # A 2013-vintage manufacturer-B module (the most vulnerable class in
    # the paper's population), in the time-scaled scenario so every
    # command goes through the full controller pipeline in seconds.
    scenario = scaled_scenario(scale=20.0, manufacturer="B", date=2013.0)
    iterations = scenario.attack_budget // 2  # one refresh window, double-sided

    print("== Unprotected system ==")
    bare = MemorySystem(scenario.make_module(serial="demo", seed=7))
    flips = bare.hammer_double_sided(victim=1000, iterations=iterations)
    report = bare.report()
    print(f"double-sided hammering for one refresh window: {flips} bit flips")
    print(f"activations issued: {report.activations}, simulated time: {report.time_ns / 1e6:.2f} ms")

    print("\n== Same module, PARA installed ==")
    protected = MemorySystem(
        scenario.make_module(serial="demo", seed=7),
        mitigation="para",
        mitigation_kwargs={"p": 0.02},
    )
    flips_para = protected.hammer_double_sided(victim=1000, iterations=iterations)
    para_report = protected.report()
    print(f"same attack under PARA: {flips_para} bit flips")
    print(f"victim refreshes injected: {para_report.mitigation_refreshes}")
    overhead = para_report.time_ns / report.time_ns - 1.0
    print(f"time overhead: {100 * overhead:.2f}%")

    print()
    print(format_table(
        ["system", "flips", "energy (uJ)", "refresh share"],
        [
            ["unprotected", flips, report.dynamic_energy_nj / 1000, f"{100 * report.refresh_energy_share:.1f}%"],
            ["PARA p=0.02", flips_para, para_report.dynamic_energy_nj / 1000, f"{100 * para_report.refresh_energy_share:.1f}%"],
        ],
        title="Summary",
    ))


if __name__ == "__main__":
    main()
