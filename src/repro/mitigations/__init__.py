"""RowHammer mitigations: PARA, CRA, ANVIL, TRR, refresh scaling, retirement, ECC."""

from repro.mitigations.anvil import AnvilMitigation
from repro.mitigations.cra import CounterBasedMitigation, storage_overhead_table
from repro.mitigations.ecc_eval import (
    EccLadderEntry,
    evaluate_ladder,
    flip_histogram_from_hammer,
    hammer_flip_positions,
    multi_flip_word_fraction,
)
from repro.mitigations.para import (
    Para,
    failures_per_year,
    log10_failures_per_year,
    log10_survival_probability,
    performance_overhead_fraction,
    recommended_p,
    simulate_attempt_survival,
    survival_probability,
)
from repro.mitigations.refresh_scaling import (
    RefreshCost,
    attack_budget,
    eliminating_multiplier_rounded,
    multiplier_to_eliminate,
    refresh_cost,
    sweep_costs,
)
from repro.mitigations.retire import RetirementResult, residual_flips, retire_vulnerable_rows
from repro.mitigations.trr import TrrMitigation

__all__ = [
    "AnvilMitigation",
    "CounterBasedMitigation",
    "storage_overhead_table",
    "EccLadderEntry",
    "evaluate_ladder",
    "flip_histogram_from_hammer",
    "hammer_flip_positions",
    "multi_flip_word_fraction",
    "Para",
    "failures_per_year",
    "log10_failures_per_year",
    "log10_survival_probability",
    "performance_overhead_fraction",
    "recommended_p",
    "simulate_attempt_survival",
    "survival_probability",
    "RefreshCost",
    "attack_budget",
    "eliminating_multiplier_rounded",
    "multiplier_to_eliminate",
    "refresh_cost",
    "sweep_costs",
    "RetirementResult",
    "residual_flips",
    "retire_vulnerable_rows",
    "TrrMitigation",
]
