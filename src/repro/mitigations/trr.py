"""In-DRAM Targeted Row Refresh (TRR-like sampler).

Models the DRAM-chip-side mitigation family the paper points to via
Intel's targeted-refresh-command patent [11]: the device itself keeps a
small sampler of recent aggressors and, periodically, refreshes the
physical neighbors of the hottest tracked rows.  Because it lives in
the DRAM, it uses **true physical adjacency** — no SPD needed — which
is exactly the deployment advantage §II-C describes for in-chip PARA.

The known structural weakness is the bounded sampler: access patterns
with more simultaneous aggressors than ``tracker_entries`` (many-sided
hammering) can evict each other from the sampler and slip through —
the TRRespass-style bypass the extension bench demonstrates.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.telemetry import physics as phys
from repro.utils.validation import check_positive


class TrrMitigation:
    """Sampler-based in-DRAM targeted refresh.

    Args:
        tracker_entries: aggressor slots per bank.
        refresh_period_acts: every this many activations (per bank), the
            top tracked aggressor's neighbors get a targeted refresh.
    """

    def __init__(self, tracker_entries: int = 4, refresh_period_acts: int = 2048) -> None:
        check_positive("tracker_entries", tracker_entries)
        check_positive("refresh_period_acts", refresh_period_acts)
        self.name = f"trr(k={tracker_entries},T={refresh_period_acts})"
        self.tracker_entries = tracker_entries
        self.refresh_period_acts = refresh_period_acts
        self._trackers: Dict[int, Dict[int, int]] = {}
        self._acts_since_refresh: Dict[int, int] = {}
        self._extra_refreshes = 0
        self.targeted_refreshes = 0
        self.evictions = 0

    def on_activate(self, controller, bank: int, logical_row: int, time_ns: float) -> None:
        """Track the (physical) aggressor; fire targeted refresh periodically."""
        physical = controller.module.remapper.to_physical(logical_row)
        tracker = self._trackers.setdefault(bank, {})
        if phys.physics_on:
            phys.get_collector().audit_count("trr", "sample")
        if physical in tracker:
            tracker[physical] += 1
        elif len(tracker) < self.tracker_entries:
            tracker[physical] = 1
        else:
            # Replace the coldest tracked aggressor (decay-and-swap sampler).
            coldest = min(tracker, key=tracker.get)
            if tracker[coldest] <= 1:
                del tracker[coldest]
                tracker[physical] = 1
                self.evictions += 1
                if phys.physics_on:
                    phys.get_collector().audit(
                        "trr", "evict", time_ns, bank=bank,
                        evicted=coldest, inserted=physical)
            else:
                tracker[coldest] -= 1
        acts = self._acts_since_refresh.get(bank, 0) + 1
        if acts >= self.refresh_period_acts:
            acts = 0
            self._fire(controller, bank, tracker)
        self._acts_since_refresh[bank] = acts

    def _fire(self, controller, bank: int, tracker: Dict[int, int]) -> None:
        if not tracker:
            return
        hottest = max(tracker, key=tracker.get)
        module = controller.module
        victims = list(module.remapper.physical_neighbors(hottest, 1))
        for victim in victims:
            module.refresh_physical_row(bank, victim, controller.time_ns)
            controller.time_ns += module.timing.tRC
            controller.energy.record("refresh_row")
            self._extra_refreshes += 1
        tracker[hottest] = 0
        self.targeted_refreshes += 1
        if phys.physics_on:
            phys.get_collector().audit(
                "trr", "targeted_refresh", controller.time_ns, bank=bank,
                aggressor=hottest, victims=victims)

    def extra_refresh_ops(self) -> int:
        """Victim refreshes injected so far."""
        return self._extra_refreshes
