"""Counter-based aggressor identification (CRA / "sixth solution").

§II-C: "accurately identifying a row as a hammered row requires
keeping track of access counters for a large number of rows in the
memory controller, leading to very large hardware area and power
consumption, and potentially performance, overheads."

Two variants are modeled:

* **Full counters** — one counter per row: perfect detection, maximal
  storage (the overhead the paper criticizes).
* **Counter table** — a bounded CAM of (row -> count) entries with
  evict-minimum replacement; cheaper, but a many-aggressor access
  pattern can thrash the table and let aggressors escape, which the
  ablation bench (C6) quantifies.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.telemetry import physics as phys
from repro.utils.validation import check_positive


class CounterBasedMitigation:
    """Track per-row activation counts; refresh neighbors at a threshold.

    Args:
        threshold: activations within one refresh window that mark a row
            as an aggressor (set below the module's weakest ``hc_first``
            with a safety margin).
        window_ns: counter-reset period (one refresh window).
        table_entries: CAM capacity; ``None`` = full per-row counters.
    """

    def __init__(
        self,
        threshold: int = 32_768,
        window_ns: float = 64e6,
        table_entries: Optional[int] = None,
    ) -> None:
        check_positive("threshold", threshold)
        check_positive("window_ns", window_ns)
        if table_entries is not None:
            check_positive("table_entries", table_entries)
        kind = "full" if table_entries is None else f"table{table_entries}"
        self.name = f"cra({kind},th={threshold})"
        self.threshold = threshold
        self.window_ns = window_ns
        self.table_entries = table_entries
        self._counts: Dict[Tuple[int, int], int] = {}
        self._window_start = 0.0
        self._extra_refreshes = 0
        self.detections = 0
        self.evictions = 0

    def on_activate(self, controller, bank: int, logical_row: int, time_ns: float) -> None:
        """Count the activation; trigger victim refresh at the threshold."""
        if time_ns - self._window_start >= self.window_ns:
            self._counts.clear()
            self._window_start += self.window_ns * math.floor((time_ns - self._window_start) / self.window_ns)
            if phys.physics_on:
                phys.get_collector().audit_count("cra", "window_reset")
        key = (bank, logical_row)
        count = self._counts.get(key, 0) + 1
        if key not in self._counts and self.table_entries is not None and len(self._counts) >= self.table_entries:
            # Evict the coldest entry; its history is lost (undercounting).
            coldest = min(self._counts, key=self._counts.get)
            del self._counts[coldest]
            self.evictions += 1
            if phys.physics_on:
                phys.get_collector().audit_count("cra", "evict")
        self._counts[key] = count
        if count >= self.threshold:
            self.detections += 1
            if phys.physics_on:
                phys.get_collector().audit(
                    "cra", "detect", time_ns, bank=bank,
                    aggressor=logical_row, count=count,
                    threshold=self.threshold)
            self._extra_refreshes += controller.refresh_neighbors(bank, logical_row, 1)
            self._counts[key] = 0

    def extra_refresh_ops(self) -> int:
        """Victim refreshes injected so far."""
        return self._extra_refreshes

    # ------------------------------------------------------------------
    # Hardware-cost analysis
    # ------------------------------------------------------------------
    def counter_bits(self) -> int:
        """Width of one activation counter."""
        return max(1, math.ceil(math.log2(self.threshold + 1)))

    def storage_bits(self, rows: int, banks: int) -> int:
        """Total counter storage for a module of ``banks x rows``.

        Full variant: one counter per row.  Table variant: each entry
        additionally stores a (bank, row) tag.
        """
        check_positive("rows", rows)
        check_positive("banks", banks)
        counter = self.counter_bits()
        if self.table_entries is None:
            return rows * banks * counter
        tag = math.ceil(math.log2(rows)) + math.ceil(math.log2(banks))
        return self.table_entries * (counter + tag)


def storage_overhead_table(rows: int, banks: int, thresholds, table_sizes) -> list:
    """Sweep (threshold, table size) -> storage bits, for the C6 bench.

    ``table_sizes`` may include ``None`` for the full-counter variant.
    """
    out = []
    for th in thresholds:
        for size in table_sizes:
            mit = CounterBasedMitigation(threshold=th, table_entries=size)
            out.append(
                {
                    "threshold": th,
                    "table_entries": size if size is not None else rows * banks,
                    "variant": "full" if size is None else "table",
                    "storage_bits": mit.storage_bits(rows, banks),
                }
            )
    return out
