"""PARA: Probabilistic Adjacent Row Activation.

The paper's advocated long-term solution (§II-C): every time the
controller closes a row, with a low probability ``p`` it refreshes the
adjacent rows.  No counters, no storage; protection is statistical.

The closed-form analysis mirrors the ISCA 2014 treatment: for a victim
to flip, an adjacent aggressor must be activated ``N_th`` times while
the victim receives *no* PARA refresh.  Each aggressor activation
refreshes the victim with probability ``p`` (this implementation
refreshes both neighbors when it triggers), so one hammering attempt
survives with probability ``(1 - p)^N_th`` — astronomically small for
practical ``p`` and observed thresholds, yielding failure rates far
below hard-disk annualized failure rates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.telemetry import physics as phys
from repro.telemetry import runtime as telem
from repro.utils.rng import derive_rng
from repro.utils.units import SECONDS_PER_YEAR
from repro.utils.validation import check_positive, check_probability


class Para:
    """The PARA mitigation hook.

    Args:
        p: per-activation neighbor-refresh probability.
        distance: adjacency distance to refresh (1 = immediate neighbors).
        seed: randomness for the trigger coin.
    """

    def __init__(self, p: float = 0.001, distance: int = 1, seed: int = 0) -> None:
        check_probability("p", p)
        self.name = f"para(p={p:g})"
        self.p = p
        self.distance = distance
        self._rng = derive_rng(seed, "para")
        self.triggers = 0
        self._extra_refreshes = 0

    def on_activate(self, controller, bank: int, logical_row: int, time_ns: float) -> None:
        """With probability ``p``, refresh the aggressor's neighbors."""
        if phys.physics_on:
            # Draws are one-per-activation, so they stay an audit count;
            # the (rare) trigger below gets a full typed event.
            phys.get_collector().audit_count("para", "draw")
        if self._rng.random() < self.p:
            self.triggers += 1
            if telem.metrics_on:
                telem.counter("para_triggers_total").inc()
            if telem.trace_on:
                telem.trace("para_refresh", t=time_ns, bank=bank, aggressor=logical_row)
            if phys.physics_on:
                phys.get_collector().audit(
                    "para", "refresh", time_ns, bank=bank,
                    aggressor=logical_row, distance=self.distance)
            self._extra_refreshes += controller.refresh_neighbors(bank, logical_row, self.distance)

    def extra_refresh_ops(self) -> int:
        """Victim refreshes injected so far."""
        return self._extra_refreshes


# ----------------------------------------------------------------------
# Closed-form reliability analysis
# ----------------------------------------------------------------------
def survival_probability(p: float, n_th: float) -> float:
    """Probability one hammering attempt reaches ``n_th`` activations
    without the victim ever being PARA-refreshed."""
    check_probability("p", p)
    check_positive("n_th", n_th)
    if p >= 1.0:
        return 0.0
    # Computed in log space: (1-p)^n_th underflows for practical values.
    return math.exp(n_th * math.log1p(-p))


def log10_survival_probability(p: float, n_th: float) -> float:
    """Base-10 logarithm of :func:`survival_probability` (underflow-safe)."""
    check_probability("p", p)
    check_positive("n_th", n_th)
    if p >= 1.0:
        return -math.inf
    return n_th * math.log1p(-p) / math.log(10.0)


def failures_per_year(p: float, n_th: float, tRC_ns: float = 49.5, duty_cycle: float = 1.0) -> float:
    """Expected RowHammer-induced failures per year of continuous hammering.

    Args:
        p: PARA probability.
        n_th: victim hammer threshold (activations).
        tRC_ns: per-activation cost, setting the attempt rate.
        duty_cycle: fraction of wall-clock spent hammering.
    """
    check_positive("tRC_ns", tRC_ns)
    check_probability("duty_cycle", duty_cycle)
    acts_per_year = duty_cycle * SECONDS_PER_YEAR * 1e9 / tRC_ns
    attempts_per_year = acts_per_year / n_th
    log10_fail = log10_survival_probability(p, n_th) + math.log10(max(attempts_per_year, 1e-300))
    if log10_fail < -300:
        return 0.0
    return 10.0 ** log10_fail


def log10_failures_per_year(p: float, n_th: float, tRC_ns: float = 49.5, duty_cycle: float = 1.0) -> float:
    """Log10 of :func:`failures_per_year`, stable for astronomically small rates."""
    acts_per_year = duty_cycle * SECONDS_PER_YEAR * 1e9 / tRC_ns
    attempts_per_year = acts_per_year / n_th
    return log10_survival_probability(p, n_th) + math.log10(attempts_per_year)


def recommended_p(n_th: float, target_log10_failures_per_year: float = -15.0, tRC_ns: float = 49.5) -> float:
    """Smallest ``p`` meeting a yearly failure-rate target.

    Solves ``log10_failures_per_year(p, n_th) <= target`` for ``p``.
    """
    check_positive("n_th", n_th)
    acts_per_year = SECONDS_PER_YEAR * 1e9 / tRC_ns
    attempts = acts_per_year / n_th
    # n_th * log10(1-p) <= target - log10(attempts)
    needed = (target_log10_failures_per_year - math.log10(attempts)) / n_th
    return float(1.0 - 10.0 ** needed)


def performance_overhead_fraction(p: float, victim_rows: int = 2) -> float:
    """Fraction of extra row activations PARA injects.

    Each activation triggers with probability ``p`` and refreshes
    ``victim_rows`` rows, each costing one activation-equivalent.
    """
    check_probability("p", p)
    return p * victim_rows


def simulate_attempt_survival(p: float, n_th: int, attempts: int, seed: int = 0) -> int:
    """Monte-Carlo cross-check of the closed form: run ``attempts``
    hammering attempts of ``n_th`` activations each; return how many
    complete without a single PARA trigger.

    Only feasible for deliberately weakened (small ``n_th``·``p``)
    parameters — which is the point of pairing it with the closed form.
    """
    rng = derive_rng(seed, "para-mc")
    survived = 0
    for _ in range(attempts):
        if not np.any(rng.random(n_th) < p):
            survived += 1
    return survived
