"""ANVIL-style software mitigation (Aweke+, ASPLOS 2016).

A software agent samples hardware performance counters at a fixed
interval; when the activation rate to a single row exceeds a threshold,
it explicitly refreshes (reads) that row's neighbors.  The paper calls
this "a promising area of research" but notes it is intrusive and
requires system-software changes.

Modeled costs and weaknesses:

* detection happens only at **sample boundaries** — an attacker gets a
  free window of ``sample_interval_ns`` before the first response;
* each sample consumes CPU time (``sample_cost_ns``), an overhead the
  mitigation-comparison bench charges;
* detection relies on the counters' top-k visibility — more parallel
  aggressor pairs than ``top_k`` can hide below the reporting cutoff.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

from repro.telemetry import physics as phys
from repro.utils.validation import check_positive


class AnvilMitigation:
    """Sampling-based software RowHammer detector.

    Args:
        sample_interval_ns: time between counter samples.
        rate_threshold: per-sample activation count that flags a row.
        top_k: rows visible per sample (counter hardware limit).
        sample_cost_ns: CPU time charged per sample.
    """

    def __init__(
        self,
        sample_interval_ns: float = 1_000_000.0,
        rate_threshold: int = 3000,
        top_k: int = 4,
        sample_cost_ns: float = 2_000.0,
    ) -> None:
        check_positive("sample_interval_ns", sample_interval_ns)
        check_positive("rate_threshold", rate_threshold)
        check_positive("top_k", top_k)
        self.name = f"anvil(int={sample_interval_ns:g}ns,th={rate_threshold})"
        self.sample_interval_ns = sample_interval_ns
        self.rate_threshold = rate_threshold
        self.top_k = top_k
        self.sample_cost_ns = sample_cost_ns
        self._window_start = 0.0
        self._counts: Counter = Counter()
        self._extra_refreshes = 0
        self.samples = 0
        self.detections = 0

    def on_activate(self, controller, bank: int, logical_row: int, time_ns: float) -> None:
        """Accumulate counts; evaluate the detector at sample boundaries."""
        while time_ns >= self._window_start + self.sample_interval_ns:
            self._sample(controller)
        self._counts[(bank, logical_row)] += 1

    def _sample(self, controller) -> None:
        self.samples += 1
        if phys.physics_on:
            phys.get_collector().audit_count("anvil", "sample")
        controller.time_ns += self.sample_cost_ns
        visible = self._counts.most_common(self.top_k)
        for (bank, row), count in visible:
            if count >= self.rate_threshold:
                self.detections += 1
                if phys.physics_on:
                    phys.get_collector().audit(
                        "anvil", "detect", self._window_start, bank=bank,
                        aggressor=row, count=count,
                        threshold=self.rate_threshold)
                self._extra_refreshes += controller.refresh_neighbors(bank, row, 1)
        self._counts.clear()
        self._window_start += self.sample_interval_ns

    def extra_refresh_ops(self) -> int:
        """Victim refreshes injected so far."""
        return self._extra_refreshes

    def cpu_overhead_ns(self) -> float:
        """Total CPU time spent sampling."""
        return self.samples * self.sample_cost_ns
