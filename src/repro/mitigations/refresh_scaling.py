"""Refresh-rate scaling: the deployed immediate mitigation.

System vendors responded to RowHammer with BIOS patches that raise the
DRAM refresh rate.  Raising the rate by ``k`` shrinks the refresh
window to ``tREFW / k`` and with it the attacker's per-window
activation budget; once the budget drops below the module's weakest
``hc_first`` threshold, *no* error is inducible.  The paper reports
that eliminating every error seen across the 129 tested modules takes
roughly a **7x** increase — and stresses the energy/performance price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.dram.timing import TimingParams
from repro.telemetry import physics as phys
from repro.utils.validation import check_positive


def attack_budget(timing: TimingParams, multiplier: float = 1.0) -> int:
    """Max single-aggressor-pair activations inside one (scaled) window."""
    check_positive("multiplier", multiplier)
    return int(timing.tREFW / multiplier / timing.tRC)


def multiplier_to_eliminate(hc_min: float, timing: TimingParams) -> float:
    """Smallest refresh multiplier that denies ``hc_min`` activations.

    The attacker needs ``hc_min`` activations before the victim's next
    refresh; the window must shrink below ``hc_min * tRC``.
    """
    check_positive("hc_min", hc_min)
    return timing.tREFW / (timing.tRC * hc_min)


@dataclass(frozen=True)
class RefreshCost:
    """Overheads of running refresh at a given multiplier.

    Attributes:
        multiplier: the refresh-rate multiplier.
        bandwidth_overhead: fraction of time the rank is blocked by REF.
        refresh_energy_factor: refresh energy relative to 1x.
        budget: residual attacker activation budget per window.
    """

    multiplier: float
    bandwidth_overhead: float
    refresh_energy_factor: float
    budget: int


def refresh_cost(timing: TimingParams, multiplier: float) -> RefreshCost:
    """Compute the cost/protection point at ``multiplier``."""
    check_positive("multiplier", multiplier)
    cost = RefreshCost(
        multiplier=multiplier,
        bandwidth_overhead=timing.tRFC / (timing.tREFI / multiplier),
        refresh_energy_factor=multiplier,
        budget=attack_budget(timing, multiplier),
    )
    if phys.physics_on:
        phys.get_collector().audit(
            "refresh_scaling", "epoch", multiplier=cost.multiplier,
            bandwidth_overhead=cost.bandwidth_overhead,
            budget=cost.budget)
    return cost


def sweep_costs(timing: TimingParams, multipliers: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8)) -> list:
    """Cost table across multipliers (bench C3's cost columns)."""
    return [refresh_cost(timing, k) for k in multipliers]


def eliminating_multiplier_rounded(hc_min: float, timing: TimingParams) -> int:
    """The integral multiplier a vendor would ship (ceil of the exact need)."""
    return math.ceil(multiplier_to_eliminate(hc_min, timing) - 1e-9)
