"""Post-manufacture victim-row retirement (solutions 4/5 of §II-C).

A manufacturing-time (or user-level, during operation) test campaign
hammers the array with a bounded activation budget and remaps every
row in which a flip was observed to a spare region.  The structural
weakness the paper implies: coverage is bounded by the *test* budget —
weak cells whose thresholds exceed it survive retirement and remain
exploitable by a field attacker with a larger effective budget (e.g.
double-sided hammering vs a single-sided test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Set

from repro.dram.module import DramModule


@dataclass
class RetirementResult:
    """Outcome of a test-and-retire campaign.

    Attributes:
        tested_rows: physical rows examined.
        retired_rows: rows remapped to spares.
        spare_budget: spare rows available.
        spares_exhausted: whether retirement ran out of spares.
    """

    tested_rows: int = 0
    retired_rows: Set[int] = field(default_factory=set)
    spare_budget: int = 0
    spares_exhausted: bool = False


def retire_vulnerable_rows(
    module: DramModule,
    bank: int,
    rows: Sequence[int],
    test_pressure: float,
    spare_budget: int = 256,
) -> RetirementResult:
    """Identify victim rows at ``test_pressure`` and retire them.

    Uses the device-level fault model directly (the test controls the
    array, so no controller is simulated): a row is retired if any of
    its weak cells has a threshold within the test budget, using
    worst-case aggressor data (the test writes adversarial patterns).
    """
    result = RetirementResult(spare_budget=spare_budget)
    model = module.model
    for row in rows:
        result.tested_rows += 1
        cells = model.weak_cells(bank, row)
        if len(cells) and float(cells.hc_first.min()) <= test_pressure:
            if len(result.retired_rows) >= spare_budget:
                result.spares_exhausted = True
                break
            result.retired_rows.add(int(row))
    return result


def residual_flips(
    module: DramModule,
    bank: int,
    rows: Sequence[int],
    retired: Set[int],
    field_pressure: float,
) -> int:
    """Weak cells an attacker with ``field_pressure`` still flips.

    Counts threshold crossings in non-retired rows — the retirement
    escapes.  ``field_pressure > test_pressure`` (double-sided attack,
    longer window abuse) yields nonzero residuals.
    """
    model = module.model
    escapes = 0
    for row in rows:
        if int(row) in retired:
            continue
        cells = model.weak_cells(bank, row)
        if len(cells):
            escapes += int((cells.hc_first <= field_pressure).sum())
    return escapes
