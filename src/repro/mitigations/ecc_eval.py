"""ECC as a RowHammer mitigation: the §II-C SECDED (in)sufficiency study.

Hammers a module, gathers the per-64-bit-word flip-count histogram of
the induced errors, and scores a ladder of codes (none / parity /
SECDED / single-symbol) against it.  The paper's claim C4 is that the
histogram has mass at >= 2 flips per word, which SECDED cannot correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.dram.module import DramModule
from repro.dram.stream import CommandStream
from repro.ecc.accounting import EccEvaluation, evaluate_code_against_histogram, flips_per_word
from repro.ecc.base import EccCode
from repro.utils.rng import derive_rng


def hammer_flip_positions(
    module: DramModule,
    bank: int,
    aggressor_pairs: Iterable[tuple],
    pressure: float,
) -> List[int]:
    """Device-level hammer over aggressor pairs; return flipped bit positions.

    Each ``(low, high)`` pair brackets a victim at ``low + 1``; both
    aggressors receive ``pressure`` activations via the exact bulk path
    and the bank is then settled.  The whole session is one command
    stream, so the columnar engine executes it batched.
    """
    stream = CommandStream()
    for low, high in aggressor_pairs:
        stream.act(low, int(pressure)).act(high, int(pressure))
    stream.settle()
    dev_bank = module.bank(bank)
    dev_bank.execute(stream)
    return [bit for _row, bit, *_prov in dev_bank.stats.flip_log]


def flip_histogram_from_hammer(
    module: DramModule,
    bank: int,
    victim_count: int,
    pressure: float,
    start_row: int = 64,
    word_bits: int = 64,
) -> Dict[int, int]:
    """Hammer ``victim_count`` disjoint victims; histogram flips per word.

    One stream carries every pair with its per-pair settle (the settle
    barriers keep the per-victim materialization points identical to
    the old per-pair loop); flips are attributed afterwards by their
    globally unique ``row * row_bits + bit`` key, which offsets each
    victim's bits so words of different rows don't merge.
    """
    stream = CommandStream()
    for i in range(victim_count):
        low = start_row + 3 * i
        stream.act(low, int(pressure)).act(low + 2, int(pressure)).settle()
    dev_bank = module.bank(bank)
    before = len(dev_bank.stats.flip_log)
    dev_bank.execute(stream)
    row_bits = module.geometry.row_bits
    all_bits = [row * row_bits + bit
                for row, bit, *_prov in dev_bank.stats.flip_log[before:]]
    return flips_per_word(all_bits, word_bits)


@dataclass
class EccLadderEntry:
    """One code's score against a flip histogram."""

    code_name: str
    overhead_fraction: float
    evaluation: EccEvaluation


def evaluate_ladder(
    histogram: Dict[int, int],
    codes: Sequence[tuple],
    seed: int = 0,
    trials_per_class: int = 300,
) -> List[EccLadderEntry]:
    """Score (name, code) pairs against one flip histogram."""
    out = []
    for name, code in codes:
        rng = derive_rng(seed, "ecc-eval", name)
        evaluation = evaluate_code_against_histogram(code, histogram, rng, trials_per_class)
        out.append(
            EccLadderEntry(
                code_name=name,
                overhead_fraction=code.overhead_fraction,
                evaluation=evaluation,
            )
        )
    return out


def multi_flip_word_fraction(histogram: Dict[int, int]) -> float:
    """Fraction of erroneous words with >= 2 flips (the SECDED killer)."""
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    multi = sum(count for flips, count in histogram.items() if flips >= 2)
    return multi / total
