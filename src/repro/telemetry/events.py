"""Live worker→parent event streaming for pool sweeps.

Post-hoc telemetry (snapshots riding inside ``ExperimentResult``) makes
a long sweep a black box until it ends.  This module adds the live
half: pool workers periodically flush **incremental metric deltas**
and **heartbeat events** over a ``multiprocessing`` queue, and the
parent folds them into a live registry, maintains a
:class:`SweepProgress` view, and flags workers whose heartbeat goes
stale *before* their timeout deadline fires.

Guard idiom matches :mod:`repro.telemetry.runtime`: the module global
``stream_on`` is False by default and every hook costs one attribute
read plus a falsy branch when streaming is off, so the ≤5% disabled-
overhead contract of the telemetry bench still holds.

Heartbeats deliberately piggyback on *metric activity* (the
:class:`StreamingRegistry` accessors rate-limit-flush on every
instrument touch) rather than on a side thread: a wedged or sleeping
job touches no instruments, so its heartbeat stops — which is exactly
the signal a liveness thread would mask.

Staleness is judged with **parent-side receive timestamps**
(``time.monotonic()`` in the parent); monotonic clocks are not
comparable across processes.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry import ids
from repro.telemetry.metrics import Histogram, MetricsRegistry

__all__ = [
    "stream_on",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_STALE_AFTER_S",
    "WorkerStream",
    "StreamingRegistry",
    "SweepProgress",
    "StreamConsumer",
    "EventStream",
    "job_registry",
    "worker_init",
    "arm_local",
    "disarm",
]

#: Hot-path guard: read by job-registry construction and the bench.
stream_on: bool = False
_sink: Optional["WorkerStream"] = None

#: Default minimum interval between metric-delta flushes.
DEFAULT_HEARTBEAT_S = 0.5
#: Default heartbeat age past which a running job is flagged stale.
DEFAULT_STALE_AFTER_S = 2.0

#: Job states tracked by :class:`SweepProgress`.
JOB_STATES = ("pending", "running", "ok", "errored", "timeout", "cached")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class WorkerStream:
    """Worker-side half: computes metric deltas against the last flush
    and pushes small dict events through ``put`` (best-effort — a dead
    queue must never kill the job).
    """

    def __init__(self, put: Callable[[Dict[str, Any]], None],
                 interval_s: float = DEFAULT_HEARTBEAT_S):
        self._put = put
        self.interval_s = interval_s
        self.pid = os.getpid()
        self.job_id: Optional[str] = None
        self._last_flush = 0.0
        self._counter_base: Dict[Tuple[str, Any], float] = {}
        self._gauge_sent: Dict[Tuple[str, Any], float] = {}
        self._hist_base: Dict[Tuple[str, Any], Tuple[List[int], float, int]] = {}

    # -- job lifecycle -------------------------------------------------
    def on_job_start(self, job_id: str, name: str, seed: int) -> None:
        self.job_id = job_id
        self._counter_base.clear()
        self._gauge_sent.clear()
        self._hist_base.clear()
        self._last_flush = time.monotonic()
        self._send({"kind": "job_start", "name": name, "seed": seed})

    def on_job_end(self, job_id: str, outcome: str,
                   duration_s: Optional[float] = None) -> None:
        self.job_id = job_id
        self._flush()
        self._send({"kind": "job_end", "outcome": outcome,
                    "duration_s": duration_s})
        self.job_id = None

    def tick(self, force: bool = False) -> None:
        """Rate-limited flush; instrument sites call this constantly."""
        now = time.monotonic()
        if not force and now - self._last_flush < self.interval_s:
            return
        self._last_flush = now
        self._flush()

    # -- internals -----------------------------------------------------
    def _flush(self) -> None:
        event: Dict[str, Any] = {"kind": "heartbeat"}
        delta = self._metric_delta()
        if delta is not None:
            event["metrics"] = delta
        spans = self._top_spans()
        if spans:
            event["spans"] = spans
        self._send(event)

    def _send(self, event: Dict[str, Any]) -> None:
        event.setdefault("pid", self.pid)
        event.setdefault("ts", time.time())
        if self.job_id is not None:
            event.setdefault("job_id", self.job_id)
        run_id = ids.current_run_id()
        if run_id:
            event.setdefault("run_id", run_id)
        try:
            self._put(event)
        except Exception:
            pass

    def _metric_delta(self) -> Optional[Dict[str, Any]]:
        from repro.telemetry import runtime as telem

        counters: List[Dict[str, Any]] = []
        gauges: List[Dict[str, Any]] = []
        histograms: List[Dict[str, Any]] = []
        for metric in telem.get_registry():
            key = (metric.name, metric.labels)
            if isinstance(metric, Histogram):
                base = self._hist_base.get(key)
                if base is None or base[2] > metric.count:
                    # first sight or a registry reset: full value is the delta
                    base = ([0] * len(metric.counts), 0.0, 0)
                delta_count = metric.count - base[2]
                if delta_count:
                    histograms.append({
                        "name": metric.name, "labels": dict(metric.labels),
                        "edges": list(metric.edges),
                        "counts": [c - b for c, b in zip(metric.counts, base[0])],
                        "sum": metric.sum - base[1], "count": delta_count,
                    })
                self._hist_base[key] = (list(metric.counts), metric.sum,
                                        metric.count)
            elif metric.kind == "gauge":
                if self._gauge_sent.get(key) != metric.value:
                    gauges.append({"name": metric.name,
                                   "labels": dict(metric.labels),
                                   "value": metric.value})
                    self._gauge_sent[key] = metric.value
            else:
                base_v = self._counter_base.get(key, 0.0)
                delta_v = metric.value - base_v
                if delta_v < 0:
                    delta_v = metric.value  # counter reset (registry swap)
                if delta_v:
                    counters.append({"name": metric.name,
                                     "labels": dict(metric.labels),
                                     "value": delta_v})
                self._counter_base[key] = metric.value
        if not (counters or gauges or histograms):
            return None
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def _top_spans(self, n: int = 5) -> Optional[List[Dict[str, Any]]]:
        from repro.telemetry import runtime as telem

        if not telem.spans_on:
            return None
        by_leaf: Dict[str, float] = {}
        for path, (count, total_s, self_s) in telem.get_profiler().profile().entries.items():
            leaf = path[-1]
            by_leaf[leaf] = by_leaf.get(leaf, 0.0) + self_s
        top = sorted(by_leaf.items(), key=lambda kv: -kv[1])[:n]
        return [{"span": leaf, "self_s": self_s} for leaf, self_s in top]


class StreamingRegistry(MetricsRegistry):
    """Job registry whose accessors piggyback a rate-limited stream
    flush on every instrument touch — progress heartbeats for free,
    and silence exactly when the job stops making progress.
    """

    def counter(self, name: str, **labels: Any):
        metric = super().counter(name, **labels)
        if _sink is not None:
            _sink.tick()
        return metric

    def gauge(self, name: str, **labels: Any):
        metric = super().gauge(name, **labels)
        if _sink is not None:
            _sink.tick()
        return metric

    def histogram(self, name: str, edges: Any = None, **labels: Any):
        metric = super().histogram(name, edges=edges, **labels)
        if _sink is not None:
            _sink.tick()
        return metric


def job_registry() -> MetricsRegistry:
    """The registry a fresh job should use: streaming when armed."""
    if stream_on and _sink is not None:
        return StreamingRegistry()
    return MetricsRegistry()


def worker_init(q: Any, interval_s: float, run_id: Optional[str]) -> None:
    """``ProcessPoolExecutor`` initializer: arm streaming in a worker."""
    global stream_on, _sink
    if run_id:
        ids.set_run_id(run_id)
    _sink = WorkerStream(q.put, interval_s)
    stream_on = True


def arm_local(handler: Callable[[Dict[str, Any]], None],
              interval_s: float = DEFAULT_HEARTBEAT_S) -> WorkerStream:
    """Arm streaming in-process (serial runner path): events go straight
    to ``handler`` instead of through a queue."""
    global stream_on, _sink
    _sink = WorkerStream(handler, interval_s)
    stream_on = True
    return _sink

def disarm() -> None:
    global stream_on, _sink
    stream_on = False
    _sink = None


def sink() -> Optional[WorkerStream]:
    return _sink


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class SweepProgress:
    """Parent-side live view of one batch: per-job states, per-worker
    heartbeats, retries, stale warnings, and an ETA estimated from the
    wall-clock distribution of completed jobs.

    All ``*_mono`` fields are parent ``time.monotonic()`` readings.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id
        self.started_mono = time.monotonic()
        self.jobs: Dict[str, Dict[str, Any]] = {}
        self.workers: Dict[int, Dict[str, Any]] = {}
        self.stale_events: List[Dict[str, Any]] = []
        self.retries = 0
        self.job_spans: Dict[str, List[Dict[str, Any]]] = {}

    # -- job state transitions ----------------------------------------
    def add_job(self, job_id: str, name: str, seed: int) -> None:
        self.jobs.setdefault(job_id, {
            "job_id": job_id, "name": name, "seed": seed, "state": "pending",
            "pid": None, "started_mono": None, "finished_mono": None,
            "last_beat_mono": None, "duration_s": None, "stale_warned": False,
        })

    def mark_running(self, job_id: str, pid: Optional[int] = None) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            return
        job["state"] = "running"
        if pid is not None:
            job["pid"] = pid
        now = time.monotonic()
        if job["started_mono"] is None:
            job["started_mono"] = now
        job["last_beat_mono"] = now

    def mark_pending(self, job_id: str) -> None:
        """Back to the queue (retry or pool rebuild requeue)."""
        job = self.jobs.get(job_id)
        if job is None:
            return
        job.update(state="pending", pid=None, started_mono=None,
                   last_beat_mono=None, stale_warned=False)

    def mark_done(self, job_id: str, outcome: str, cache_hit: bool = False,
                  duration_s: Optional[float] = None) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            return
        if cache_hit:
            job["state"] = "cached"
        elif outcome == "ok":
            job["state"] = "ok"
        elif outcome == "timeout":
            job["state"] = "timeout"
        else:
            job["state"] = "errored"
        job["finished_mono"] = time.monotonic()
        job["duration_s"] = duration_s
        self.job_spans.pop(job_id, None)

    def beat(self, job_id: Optional[str], pid: Optional[int],
             now_mono: Optional[float] = None) -> None:
        now = time.monotonic() if now_mono is None else now_mono
        if pid is not None:
            worker = self.workers.setdefault(pid, {"pid": pid})
            worker["last_seen_mono"] = now
            worker["job_id"] = job_id
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is not None:
                job["last_beat_mono"] = now
                if pid is not None:
                    job["pid"] = pid

    # -- derived views -------------------------------------------------
    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job["state"]] += 1
        counts["total"] = len(self.jobs)
        counts["done"] = counts["ok"]
        counts["errored"] += counts["timeout"]
        return counts

    def finished(self) -> int:
        return sum(1 for j in self.jobs.values()
                   if j["state"] in ("ok", "errored", "timeout", "cached"))

    def elapsed_s(self, now_mono: Optional[float] = None) -> float:
        now = time.monotonic() if now_mono is None else now_mono
        return max(0.0, now - self.started_mono)

    def eta_s(self, workers: int = 1,
              now_mono: Optional[float] = None) -> Optional[float]:
        """Remaining wall-clock estimate: mean completed-job duration
        times outstanding jobs, divided by the worker count."""
        durations = [j["duration_s"] for j in self.jobs.values()
                     if j["state"] in ("ok", "errored", "timeout")
                     and j["duration_s"] is not None]
        if not durations:
            return None
        remaining = [j for j in self.jobs.values()
                     if j["state"] in ("pending", "running")]
        if not remaining:
            return 0.0
        mean = sum(durations) / len(durations)
        now = time.monotonic() if now_mono is None else now_mono
        eta = 0.0
        for job in remaining:
            spent = (now - job["started_mono"]
                     if job["started_mono"] is not None else 0.0)
            eta += max(mean - spent, 0.0)
        return eta / max(workers, 1)

    def heartbeat_ages(self, now_mono: Optional[float] = None) -> Dict[int, float]:
        now = time.monotonic() if now_mono is None else now_mono
        return {pid: max(0.0, now - w["last_seen_mono"])
                for pid, w in self.workers.items()
                if w.get("last_seen_mono") is not None}


class StreamConsumer:
    """Parent-side half: folds worker events into a progress view and
    per-job in-flight delta registries.  Thread-safe — the metrics HTTP
    exporter reads through :meth:`live_registry` from its own thread.
    """

    def __init__(self, progress: Optional[SweepProgress] = None):
        self.progress = progress or SweepProgress()
        self.lock = threading.Lock()
        self.inflight: Dict[str, MetricsRegistry] = {}
        self.events_seen = 0

    def attach(self, progress: SweepProgress) -> None:
        with self.lock:
            self.progress = progress
            self.inflight.clear()
            self.events_seen = 0

    def handle(self, event: Dict[str, Any]) -> None:
        with self.lock:
            self.events_seen += 1
            kind = event.get("kind")
            pid = event.get("pid")
            job_id = event.get("job_id")
            now = time.monotonic()
            self.progress.beat(job_id if kind != "job_end" else None, pid, now)
            if kind == "job_start" and job_id:
                if job_id not in self.progress.jobs:
                    self.progress.add_job(job_id, event.get("name", "?"),
                                          event.get("seed", -1))
                self.progress.mark_running(job_id, pid)
            elif kind == "job_end" and job_id:
                self.inflight.pop(job_id, None)
            elif kind == "heartbeat":
                delta = event.get("metrics")
                if delta and job_id:
                    self._fold(self.inflight.setdefault(job_id, MetricsRegistry()),
                               delta)
                spans = event.get("spans")
                if spans and job_id:
                    self.progress.job_spans[job_id] = spans

    @staticmethod
    def _fold(registry: MetricsRegistry, delta: Dict[str, Any]) -> None:
        for entry in delta.get("counters", ()):
            registry.counter(entry["name"], **entry.get("labels", {})).inc(entry["value"])
        for entry in delta.get("gauges", ()):
            registry.gauge(entry["name"], **entry.get("labels", {})).set(entry["value"])
        for entry in delta.get("histograms", ()):
            hist = registry.histogram(entry["name"], edges=entry["edges"],
                                      **entry.get("labels", {}))
            if len(entry["counts"]) != len(hist.counts):
                continue
            for i, c in enumerate(entry["counts"]):
                hist.counts[i] += c
            hist.sum += entry["sum"]
            hist.count += entry["count"]

    def drain(self, q: Any) -> int:
        """Non-blocking: consume every queued event; return the count."""
        n = 0
        while True:
            try:
                if q.empty():
                    break
                event = q.get()
            except (queue_mod.Empty, OSError, EOFError):
                break
            if isinstance(event, dict):
                self.handle(event)
            n += 1
        return n

    def check_stale(self, stale_after_s: float,
                    now_mono: Optional[float] = None) -> List[Dict[str, Any]]:
        """Flag running jobs whose heartbeat age exceeds the threshold.

        Each job is flagged at most once; returns the newly stale ones.
        """
        now = time.monotonic() if now_mono is None else now_mono
        newly: List[Dict[str, Any]] = []
        with self.lock:
            for job_id, job in self.progress.jobs.items():
                if job["state"] != "running" or job["stale_warned"]:
                    continue
                last = job["last_beat_mono"] or job["started_mono"]
                if last is None:
                    continue
                age = now - last
                if age >= stale_after_s:
                    job["stale_warned"] = True
                    record = {"job_id": job_id, "pid": job["pid"],
                              "age_s": age, "at_mono": now, "ts": time.time()}
                    self.progress.stale_events.append(record)
                    newly.append(record)
        return newly

    def live_registry(self, base: Optional[MetricsRegistry] = None
                      ) -> MetricsRegistry:
        """A fresh registry merging finalized metrics with every
        in-flight job's streamed deltas."""
        with self.lock:
            merged = MetricsRegistry()
            if base is not None:
                merged.merge(base.snapshot())
            for registry in self.inflight.values():
                merged.merge(registry.snapshot())
            return merged


class EventStream:
    """One live-telemetry session: the queue, the consumer, the knobs.

    The runner owns one of these per :class:`ExperimentRunner` when
    streaming is requested; ``pool_initargs()`` wires workers up and
    :meth:`drain`/:meth:`check_stale` run in the parent's wait loop.
    """

    def __init__(self, heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 stale_after_s: Optional[float] = None,
                 progress: Optional[SweepProgress] = None):
        self.heartbeat_s = heartbeat_s
        if stale_after_s is None:
            stale_after_s = max(4 * heartbeat_s, DEFAULT_STALE_AFTER_S)
        self.stale_after_s = stale_after_s
        self.consumer = StreamConsumer(progress)
        self._queue: Any = None

    @property
    def progress(self) -> SweepProgress:
        return self.consumer.progress

    def attach(self, progress: SweepProgress) -> None:
        self.consumer.attach(progress)

    @property
    def queue(self) -> Any:
        if self._queue is None:
            import multiprocessing
            self._queue = multiprocessing.SimpleQueue()
        return self._queue

    def pool_initializer(self) -> Callable[..., None]:
        return worker_init

    def pool_initargs(self) -> Tuple[Any, float, Optional[str]]:
        return (self.queue, self.heartbeat_s, ids.current_run_id())

    def arm_local(self) -> WorkerStream:
        return arm_local(self.consumer.handle, self.heartbeat_s)

    def drain(self) -> int:
        if self._queue is None:
            return 0
        return self.consumer.drain(self._queue)

    def check_stale(self, now_mono: Optional[float] = None) -> List[Dict[str, Any]]:
        return self.consumer.check_stale(self.stale_after_s, now_mono)

    def close(self) -> None:
        disarm()
        if self._queue is not None:
            try:
                self._queue.close()
            except Exception:
                pass
            self._queue = None
