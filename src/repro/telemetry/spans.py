"""Wall-clock span profiling: where does an experiment spend its time?

A *span* is one named, possibly labeled phase of execution — ``job``,
``dram.bulk_activate``, ``ecc.evaluate`` — opened and closed around a
region of simulator code.  Spans nest: the profiler keeps a stack, so
every completed span is attributed to its full call path, and a parent
distinguishes *total* time (everything under it) from *self* time
(total minus its children).

Two layers live here:

* :class:`SpanProfiler` — the recording device: a frame stack fed by
  ``push``/``pop`` (instrument sites reach it through
  :func:`repro.telemetry.runtime.span`), aggregating per-path
  count/total/self as it goes;
* :class:`SpanProfile` — the mergeable result: a JSON-safe mapping
  from span paths to aggregates, with the same snapshot/merge
  protocol metrics use (so per-job profiles travel inside
  :class:`~repro.experiments.result.ExperimentResult`, survive the
  result cache, and add up across process-pool workers), plus the
  renderers behind ``repro profile``: a top-down tree and a
  flamegraph-style folded-stack export.

Like every other telemetry signal, profiling is **off by default** and
instrument sites are guarded on ``telem.spans_on`` — one
module-attribute read and a falsy branch when disabled.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["SpanProfile", "SpanProfiler", "span_name"]

#: A span's identity: the names of every open span above it, then its own.
SpanPath = Tuple[str, ...]


def span_name(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Fold labels into the span's display name (``io{file=x}``).

    Labels are part of span identity — two label sets aggregate as two
    distinct phases — and are rendered sorted so identity is stable.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class SpanProfiler:
    """The active recording stack plus running per-path aggregates.

    Not thread-safe by design (simulators are single-threaded per
    process); cross-process aggregation goes through
    :meth:`profile` → :meth:`SpanProfile.merge`.
    """

    def __init__(self) -> None:
        # Open frames: [name, start_s, child_s] — child_s accumulates
        # the total time of already-closed direct children.
        self._stack: List[List[Any]] = []
        # path -> [count, total_s, self_s]
        self._agg: Dict[SpanPath, List[float]] = {}

    def __len__(self) -> int:
        return len(self._agg)

    @property
    def depth(self) -> int:
        """Currently open (unclosed) spans."""
        return len(self._stack)

    def push(self, name: str) -> None:
        """Open a span named ``name`` under whatever is currently open."""
        self._stack.append([name, time.perf_counter(), 0.0])

    def pop(self) -> float:
        """Close the innermost open span; return its elapsed seconds.

        A pop with nothing open is a no-op (the profiler may have been
        swapped mid-span at a job boundary) rather than an error.
        """
        if not self._stack:
            return 0.0
        name, start, child_s = self._stack.pop()
        elapsed = time.perf_counter() - start
        path = tuple(frame[0] for frame in self._stack) + (name,)
        agg = self._agg.get(path)
        if agg is None:
            self._agg[path] = [1, elapsed, elapsed - child_s]
        else:
            agg[0] += 1
            agg[1] += elapsed
            agg[2] += elapsed - child_s
        if self._stack:
            self._stack[-1][2] += elapsed
        return elapsed

    def clear(self) -> None:
        self._stack.clear()
        self._agg.clear()

    def profile(self) -> "SpanProfile":
        """The aggregates recorded so far, as a mergeable profile."""
        return SpanProfile(
            {path: (int(c), float(t), float(s))
             for path, (c, t, s) in self._agg.items()}
        )

    def snapshot(self) -> Dict[str, Any]:
        """Shorthand for ``profiler.profile().snapshot()``."""
        return self.profile().snapshot()


class SpanProfile:
    """Mergeable per-path span aggregates: ``path -> (count, total, self)``."""

    def __init__(self, entries: Optional[Dict[SpanPath, Tuple[int, float, float]]] = None):
        self.entries: Dict[SpanPath, Tuple[int, float, float]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def total_s(self) -> float:
        """Wall clock attributed to root (depth-1) spans — the tree's
        whole coverage, free of double counting."""
        return sum(t for path, (_, t, _s) in self.entries.items() if len(path) == 1)

    def get(self, *path: str) -> Tuple[int, float, float]:
        """(count, total_s, self_s) of one path; zeros if never recorded."""
        return self.entries.get(tuple(path), (0, 0.0, 0.0))

    # ------------------------------------------------------------------
    # Snapshot / merge (the cross-process protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump, sorted by path for stable output."""
        return {
            "spans": [
                {"path": list(path), "count": c, "total_s": t, "self_s": s}
                for path, (c, t, s) in sorted(self.entries.items())
            ]
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Absorb a snapshot: counts and times add per path."""
        for entry in snapshot.get("spans", ()):
            path = tuple(entry["path"])
            count, total, self_s = self.entries.get(path, (0, 0.0, 0.0))
            self.entries[path] = (
                count + int(entry["count"]),
                total + float(entry["total_s"]),
                self_s + float(entry["self_s"]),
            )

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "SpanProfile":
        profile = cls()
        profile.merge(snapshot)
        return profile

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[Optional[Mapping[str, Any]]]
                       ) -> "SpanProfile":
        profile = cls()
        for snapshot in snapshots:
            if snapshot:
                profile.merge(snapshot)
        return profile

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_tree(self) -> str:
        """Top-down tree, siblings sorted by total time descending::

            span                            count     total      self    %
            job{name=rowhammer_basic}           1   2.301 s   0.012 s  100.0
              dram.bulk_activate              128   2.105 s   2.105 s   91.5
        """
        if not self.entries:
            return "(no spans recorded)"
        whole = self.total_s() or 1e-12
        ordered = self._ordered_paths()
        name_w = max(len("  " * (len(p) - 1) + p[-1]) for p in ordered)
        name_w = max(name_w, len("span"))
        lines = [f"{'span':<{name_w}}  {'count':>7}  {'total':>10}  "
                 f"{'self':>10}  {'%':>5}"]
        for path in ordered:
            count, total, self_s = self.entries[path]
            name = "  " * (len(path) - 1) + path[-1]
            lines.append(
                f"{name:<{name_w}}  {count:>7}  {_fmt_s(total):>10}  "
                f"{_fmt_s(self_s):>10}  {100.0 * total / whole:>5.1f}"
            )
        return "\n".join(lines)

    def render_folded(self) -> str:
        """Flamegraph folded stacks: ``a;b;c <self-microseconds>``.

        Feed the output straight to ``flamegraph.pl`` or speedscope.
        """
        lines = []
        for path in self._ordered_paths():
            _count, _total, self_s = self.entries[path]
            micros = int(round(self_s * 1e6))
            if micros > 0:
                lines.append(";".join(path) + f" {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def _ordered_paths(self) -> List[SpanPath]:
        """Depth-first order, children under parents, heaviest first."""
        children: Dict[SpanPath, List[SpanPath]] = {}
        for path in self.entries:
            children.setdefault(path[:-1], []).append(path)
        for sibs in children.values():
            sibs.sort(key=lambda p: -self.entries[p][1])
        ordered: List[SpanPath] = []

        def walk(prefix: SpanPath) -> None:
            for path in children.get(prefix, ()):
                ordered.append(path)
                walk(path)

        walk(())
        # Paths whose parents were never closed (profiler swapped
        # mid-span) are unreachable from the root walk; append them flat.
        seen = set(ordered)
        ordered.extend(p for p in sorted(self.entries) if p not in seen)
        return ordered


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} µs"
