"""Typed event tracing with a bounded ring buffer and JSONL spill.

A :class:`TraceRecorder` captures :class:`TraceEvent` records —
``activate``, ``refresh``, ``bit_flip``, ``ecc_eval``,
``mitigation_refresh``, ``para_refresh``, ``read_disturb``,
``job_start``/``job_end``, … — emitted by instrumented simulator code.

Memory is bounded: at most ``capacity`` events are held.  Without a
spill path the recorder behaves as a ring buffer (oldest events are
evicted, counted in :attr:`TraceRecorder.dropped`); with one, a full
buffer is flushed to the spill file as JSON Lines and recording
continues, so arbitrarily long traces cost O(capacity) memory.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One typed event: a kind, a simulated timestamp, and free fields."""

    kind: str
    t: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": self.kind}
        if self.t is not None:
            record["t"] = self.t
        record.update(self.fields)
        return record

    def to_jsonl(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"), default=repr)


class TraceRecorder:
    """Bounded in-memory event recorder.

    Args:
        capacity: maximum events held in memory.
        spill_path: optional JSONL file; when set, a full buffer is
            appended there instead of evicting old events.
    """

    def __init__(self, capacity: int = 65536,
                 spill_path: Optional[Union[str, Path]] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self._buffer: deque = deque()
        self.emitted = 0
        self.dropped = 0
        self.spilled = 0
        #: Fields merged into every event (explicit fields win); the
        #: runner stamps ``run_id``/``job_id`` here so any trace event
        #: joins the ledger line, checkpoint record, and capture bundle
        #: of the job that emitted it.
        self.context: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._buffer)

    def emit(self, kind: str, t: Optional[float] = None, **fields: Any) -> None:
        """Record one event (evicting or spilling if the buffer is full)."""
        if len(self._buffer) >= self.capacity:
            if self.spill_path is not None:
                self.flush()
            else:
                self._buffer.popleft()
                self.dropped += 1
        if self.context:
            fields = {**self.context, **fields}
        self._buffer.append(TraceEvent(kind, t, fields))
        self.emitted += 1

    def events(self) -> List[TraceEvent]:
        """The buffered (not yet spilled/dropped) events, oldest first."""
        return list(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of buffered events by kind."""
        counts: Dict[str, int] = {}
        for event in self._buffer:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def flush(self) -> int:
        """Append all buffered events to the spill file; return how many."""
        if self.spill_path is None:
            raise RuntimeError("no spill path configured")
        n = len(self._buffer)
        if n:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.spill_path, "a") as handle:
                for event in self._buffer:
                    handle.write(event.to_jsonl() + "\n")
            self._buffer.clear()
            self.spilled += n
        return n

    def dump_jsonl(self, path: Union[str, Path]) -> int:
        """Write the buffered events to ``path`` as JSON Lines."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            for event in self._buffer:
                handle.write(event.to_jsonl() + "\n")
        return len(self._buffer)

    def write_jsonl(self, handle) -> int:
        """Stream the buffered events to an open text handle."""
        n = 0
        for event in self._buffer:
            handle.write(event.to_jsonl() + "\n")
            n += 1
        return n

    def clear(self) -> None:
        self._buffer.clear()
        self.emitted = 0
        self.dropped = 0
        self.spilled = 0
