"""Process-global telemetry state and the hot-path guard flags.

Instrumented simulator code imports this module once and guards every
metric/trace touch on the two module globals::

    from repro.telemetry import runtime as telem

    if telem.metrics_on:
        telem.counter("dram_activations_total", bank=self.index).inc()
    if telem.trace_on:
        telem.trace("activate", t=time, bank=self.index, row=row)

When telemetry is disabled (the default) each site costs exactly one
module-attribute read and a falsy branch — the "near-zero when off"
contract the overhead benchmark enforces.

This module is a leaf: it imports nothing from the rest of ``repro``,
so any simulator layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.telemetry import physics as _physics
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import SpanProfiler, span_name
from repro.telemetry.trace import TraceRecorder

__all__ = [
    "metrics_on",
    "trace_on",
    "spans_on",
    "enable_metrics",
    "disable_metrics",
    "enable_tracing",
    "disable_tracing",
    "enable_profiling",
    "disable_profiling",
    "disable_all",
    "get_registry",
    "swap_registry",
    "get_tracer",
    "swap_tracer",
    "get_profiler",
    "swap_profiler",
    "counter",
    "gauge",
    "histogram",
    "trace",
    "span",
    "profiled",
]

#: Hot-path guards. Read directly (``telem.metrics_on``) by instrument
#: sites; mutate only through the enable/disable helpers below.
metrics_on: bool = False
trace_on: bool = False
spans_on: bool = False

_registry = MetricsRegistry()
_tracer = TraceRecorder()
_profiler = SpanProfiler()

#: Distinguishes "argument not passed" from an explicit ``None``.
_UNSET: Any = object()


# ----------------------------------------------------------------------
# Switches
# ----------------------------------------------------------------------
def enable_metrics(fresh: bool = False) -> MetricsRegistry:
    """Turn metric collection on; optionally start from an empty registry."""
    global metrics_on, _registry
    if fresh:
        _registry = MetricsRegistry()
    metrics_on = True
    return _registry


def disable_metrics() -> None:
    global metrics_on
    metrics_on = False


def enable_tracing(capacity: Optional[int] = None,
                   spill_path: Any = _UNSET,
                   fresh: bool = False) -> TraceRecorder:
    """Turn event tracing on, optionally rebuilding the recorder.

    The recorder is rebuilt (with an empty buffer) when ``fresh`` is
    set or when any field is passed; fields *not* passed carry over
    from the current recorder, so re-enabling with only ``spill_path``
    keeps the configured capacity.  Pass ``spill_path=None`` explicitly
    to drop an existing spill destination.
    """
    global trace_on, _tracer
    if capacity is not None and capacity < 1:
        raise ValueError(f"trace capacity must be >= 1, got {capacity}")
    if fresh or capacity is not None or spill_path is not _UNSET:
        _tracer = TraceRecorder(
            capacity=capacity if capacity is not None else _tracer.capacity,
            spill_path=spill_path if spill_path is not _UNSET else _tracer.spill_path,
        )
    trace_on = True
    return _tracer


def disable_tracing() -> None:
    global trace_on
    trace_on = False


def enable_profiling(fresh: bool = False) -> SpanProfiler:
    """Turn span profiling on; optionally start from an empty profiler."""
    global spans_on, _profiler
    if fresh:
        _profiler = SpanProfiler()
    spans_on = True
    return _profiler


def disable_profiling() -> None:
    global spans_on
    spans_on = False


def disable_all() -> None:
    disable_metrics()
    disable_tracing()
    disable_profiling()
    _physics.disable_physics()


# ----------------------------------------------------------------------
# Current sinks
# ----------------------------------------------------------------------
def get_registry() -> MetricsRegistry:
    return _registry


def swap_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process sink; return the previous one.

    The runner uses this to give each in-process job an isolated
    registry whose snapshot travels inside the job's result.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_tracer() -> TraceRecorder:
    return _tracer


def swap_tracer(tracer: TraceRecorder) -> TraceRecorder:
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def get_profiler() -> SpanProfiler:
    return _profiler


def swap_profiler(profiler: SpanProfiler) -> SpanProfiler:
    """Install ``profiler`` as the process sink; return the previous one.

    The runner uses this (like :func:`swap_registry`) to give each
    in-process job an isolated profiler whose snapshot travels inside
    the job's result.
    """
    global _profiler
    previous = _profiler
    _profiler = profiler
    return previous


# ----------------------------------------------------------------------
# Recording helpers (call only behind the guards)
# ----------------------------------------------------------------------
def counter(name: str, **labels: Any) -> Counter:
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _registry.gauge(name, **labels)


def histogram(name: str, edges: Optional[Sequence[float]] = None,
              **labels: Any) -> Histogram:
    return _registry.histogram(name, edges=edges, **labels)


def trace(kind: str, t: Optional[float] = None, **fields: Any) -> None:
    _tracer.emit(kind, t, **fields)


# ----------------------------------------------------------------------
# Span profiling (see repro.telemetry.spans)
# ----------------------------------------------------------------------
class _Span:
    """One open span; created per ``with`` entry, never shared."""

    __slots__ = ("name", "_profiler")

    def __init__(self, name: str):
        self.name = name
        self._profiler: Optional[SpanProfiler] = None

    def __enter__(self) -> "_Span":
        if spans_on:
            # Pin the sink so a profiler swap mid-span cannot unbalance
            # the new profiler's stack.
            self._profiler = _profiler
            self._profiler.push(self.name)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._profiler is not None:
            self._profiler.pop()
            self._profiler = None


class _NullSpan:
    """Shared no-op context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(_name: str, **labels: Any):
    """Open a profiling span: ``with telem.span("ecc.evaluate", code=c):``.

    Near-zero when profiling is off: one flag check, then a shared
    no-op context manager (no allocation, no clock reads).  The span
    name is positional-only in spirit (``_name``) so any label key —
    including ``name`` — stays usable.
    """
    if not spans_on:
        return _NULL_SPAN
    return _Span(span_name(_name, labels))


def profiled(_name: str, **labels: Any):
    """Decorator form of :func:`span` for whole-function phases::

        @telem.profiled("retention.profile")
        def profile_population(...): ...

    The flag is checked per call, so decorated functions stay on the
    undecorated fast path while profiling is off.
    """
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not spans_on:
                return fn(*args, **kwargs)
            with _Span(span_name(_name, labels)):
                return fn(*args, **kwargs)
        return wrapper

    return decorate
