"""Process-global telemetry state and the hot-path guard flags.

Instrumented simulator code imports this module once and guards every
metric/trace touch on the two module globals::

    from repro.telemetry import runtime as telem

    if telem.metrics_on:
        telem.counter("dram_activations_total", bank=self.index).inc()
    if telem.trace_on:
        telem.trace("activate", t=time, bank=self.index, row=row)

When telemetry is disabled (the default) each site costs exactly one
module-attribute read and a falsy branch — the "near-zero when off"
contract the overhead benchmark enforces.

This module is a leaf: it imports nothing from the rest of ``repro``,
so any simulator layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.trace import TraceRecorder

__all__ = [
    "metrics_on",
    "trace_on",
    "enable_metrics",
    "disable_metrics",
    "enable_tracing",
    "disable_tracing",
    "disable_all",
    "get_registry",
    "swap_registry",
    "get_tracer",
    "swap_tracer",
    "counter",
    "gauge",
    "histogram",
    "trace",
]

#: Hot-path guards. Read directly (``telem.metrics_on``) by instrument
#: sites; mutate only through the enable/disable helpers below.
metrics_on: bool = False
trace_on: bool = False

_registry = MetricsRegistry()
_tracer = TraceRecorder()


# ----------------------------------------------------------------------
# Switches
# ----------------------------------------------------------------------
def enable_metrics(fresh: bool = False) -> MetricsRegistry:
    """Turn metric collection on; optionally start from an empty registry."""
    global metrics_on, _registry
    if fresh:
        _registry = MetricsRegistry()
    metrics_on = True
    return _registry


def disable_metrics() -> None:
    global metrics_on
    metrics_on = False


def enable_tracing(capacity: Optional[int] = None,
                   spill_path: Optional[Any] = None,
                   fresh: bool = False) -> TraceRecorder:
    """Turn event tracing on; optionally with a fresh, resized recorder."""
    global trace_on, _tracer
    if fresh or capacity is not None or spill_path is not None:
        _tracer = TraceRecorder(capacity=capacity or 65536, spill_path=spill_path)
    trace_on = True
    return _tracer


def disable_tracing() -> None:
    global trace_on
    trace_on = False


def disable_all() -> None:
    disable_metrics()
    disable_tracing()


# ----------------------------------------------------------------------
# Current sinks
# ----------------------------------------------------------------------
def get_registry() -> MetricsRegistry:
    return _registry


def swap_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process sink; return the previous one.

    The runner uses this to give each in-process job an isolated
    registry whose snapshot travels inside the job's result.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_tracer() -> TraceRecorder:
    return _tracer


def swap_tracer(tracer: TraceRecorder) -> TraceRecorder:
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


# ----------------------------------------------------------------------
# Recording helpers (call only behind the guards)
# ----------------------------------------------------------------------
def counter(name: str, **labels: Any) -> Counter:
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _registry.gauge(name, **labels)


def histogram(name: str, edges: Optional[Sequence[float]] = None,
              **labels: Any) -> Histogram:
    return _registry.histogram(name, edges=edges, **labels)


def trace(kind: str, t: Optional[float] = None, **fields: Any) -> None:
    _tracer.emit(kind, t, **fields)
