"""Telemetry: counters, histograms, and event tracing for the simulators.

The paper's claims are statements about *rates and distributions* —
activations per refresh window, flips per vintage, errors vs. P/E
cycles — so the simulators carry a first-class observability layer:

* :mod:`repro.telemetry.metrics` — :class:`Counter`, :class:`Gauge`,
  and fixed-bucket :class:`Histogram` series in a process-local
  :class:`MetricsRegistry`, snapshot/merge-able across pool workers;
* :mod:`repro.telemetry.trace` — a bounded :class:`TraceRecorder`
  ring buffer of typed :class:`TraceEvent` records with JSONL spill;
* :mod:`repro.telemetry.runtime` — the process-global sinks and the
  ``metrics_on`` / ``trace_on`` hot-path guards instrument sites read.

Everything is **off by default**; a disabled instrument site costs one
module-attribute read.  Enable via the CLI (``repro run --metrics``,
``repro trace``) or programmatically::

    from repro import telemetry

    telemetry.enable_metrics(fresh=True)
    ...  # run simulator code
    print(telemetry.get_registry().render_table())
"""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.events import EventStream, SweepProgress
from repro.telemetry.ids import (
    current_run_id,
    environment_fingerprint,
    job_id_from_key,
    new_run_id,
    run_scope,
)
from repro.telemetry.ledger import RunLedger, build_record, default_ledger
from repro.telemetry.physics import (
    AuditEvent,
    PhysicsCollector,
    disable_physics,
    enable_physics,
    get_collector,
    swap_collector,
)
from repro.telemetry.runtime import (
    counter,
    disable_all,
    disable_metrics,
    disable_profiling,
    disable_tracing,
    enable_metrics,
    enable_profiling,
    enable_tracing,
    gauge,
    get_profiler,
    get_registry,
    get_tracer,
    histogram,
    profiled,
    span,
    swap_profiler,
    swap_registry,
    swap_tracer,
    trace,
)
from repro.telemetry.spans import SpanProfile, SpanProfiler
from repro.telemetry.trace import TraceEvent, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "TraceEvent",
    "TraceRecorder",
    "SpanProfile",
    "SpanProfiler",
    "AuditEvent",
    "PhysicsCollector",
    "enable_physics",
    "disable_physics",
    "get_collector",
    "swap_collector",
    "RunLedger",
    "build_record",
    "default_ledger",
    "EventStream",
    "SweepProgress",
    "new_run_id",
    "current_run_id",
    "run_scope",
    "job_id_from_key",
    "environment_fingerprint",
    "enable_metrics",
    "disable_metrics",
    "enable_tracing",
    "disable_tracing",
    "enable_profiling",
    "disable_profiling",
    "disable_all",
    "get_registry",
    "swap_registry",
    "get_tracer",
    "swap_tracer",
    "get_profiler",
    "swap_profiler",
    "counter",
    "gauge",
    "histogram",
    "trace",
    "span",
    "profiled",
]
