"""Domain (physics) observability: where flips happen and why.

The generic telemetry layers count *how much* happened —
activations, refreshes, flips.  This module records the paper's
actual story, which is spatial and causal:

* **per-row disturbance heat maps** — compact per-bank accumulators
  of activations, peak hammer pressure, and bit flips per row;
* **flip provenance aggregates** — flips grouped by (bank, victim
  row, dominant aggressor row, data pattern), with the peak hammer
  count and the refresh-epoch window they were observed in;
* **mitigation decision audit trail** — typed events (plus cheap
  counters for high-volume decisions) from PARA draws/refreshes, TRR
  samples/triggers, ANVIL/CRA detections, refresh-scaling epochs,
  and ECC correct-vs-detect outcomes.

Like every other telemetry signal the collector is **off by
default**: instrument sites guard on the module global
``physics_on`` — one attribute read and a falsy branch when
disabled (the overhead benchmark covers this guard too).  The
collector speaks the same snapshot/merge protocol as
:class:`~repro.telemetry.metrics.MetricsRegistry`, so per-job
physics travels inside :class:`~repro.experiments.result.ExperimentResult`,
survives the result cache, and adds up across process-pool workers.

This module is a leaf: it imports only the metrics primitives (for
Prometheus exposition of the aggregates), never the simulator.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "physics_on",
    "AuditEvent",
    "PhysicsCollector",
    "enable_physics",
    "disable_physics",
    "get_collector",
    "swap_collector",
]

#: Hot-path guard.  Read directly (``phys.physics_on``) by instrument
#: sites; mutate only through :func:`enable_physics`/:func:`disable_physics`.
physics_on: bool = False

ENV_AUDIT_CAP = "REPRO_AUDIT_CAP"
DEFAULT_AUDIT_CAP = 10_000


def _audit_cap_from_env() -> Optional[int]:
    raw = os.environ.get(ENV_AUDIT_CAP, "").strip().lower()
    if not raw:
        return DEFAULT_AUDIT_CAP
    if raw in ("none", "off", "unlimited"):
        return None
    return max(0, int(raw))


@dataclass(frozen=True)
class AuditEvent:
    """One mitigation decision: who decided what, when, about which rows.

    ``mitigation`` names the deciding module (``para``, ``trr``,
    ``anvil``, ``cra``, ``refresh_scaling``, ``ecc``), ``decision``
    the outcome class (``refresh``, ``detect``, ``evict``, …), and
    ``detail`` carries the decision-specific JSON-safe payload (rows,
    thresholds, multipliers).
    """

    mitigation: str
    decision: str
    time_ns: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mitigation": self.mitigation,
            "decision": self.decision,
            "time_ns": self.time_ns,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "AuditEvent":
        return cls(
            mitigation=str(record["mitigation"]),
            decision=str(record["decision"]),
            time_ns=record.get("time_ns"),
            detail=dict(record.get("detail") or {}),
        )


class PhysicsCollector:
    """Per-row heat, flip provenance, and the mitigation audit trail.

    All accumulators are mergeable: counts add, peaks max-merge,
    epoch windows widen.  The audit *counts* are always complete;
    the audit *event list* is bounded by ``audit_cap`` (env
    ``REPRO_AUDIT_CAP``, default 10 000) with overflow counted in
    ``audit_dropped`` — the same drop-don't-lie contract as the
    flip log cap.
    """

    def __init__(self, audit_cap: Optional[int] = None) -> None:
        # (bank, row) -> [activations, peak_pressure, flips]
        self._heat: Dict[Tuple[int, int], List[float]] = {}
        # (bank, victim, aggressor, pattern)
        #   -> [flips, max_hammer, first_epoch, last_epoch]
        self._prov: Dict[Tuple[int, int, int, str], List[float]] = {}
        # (mitigation, decision) -> count
        self._audit_counts: Dict[Tuple[str, str], int] = {}
        self._audit_events: List[AuditEvent] = []
        self.audit_cap = _audit_cap_from_env() if audit_cap is None else audit_cap
        self.audit_dropped = 0

    def __bool__(self) -> bool:
        return bool(self._heat or self._prov or self._audit_counts
                    or self._audit_events or self.audit_dropped)

    # ------------------------------------------------------------------
    # Recording (call only behind the ``physics_on`` guard)
    # ------------------------------------------------------------------
    def record_activation(self, bank: int, row: int, count: int = 1) -> None:
        """Row ``row`` of ``bank`` was activated ``count`` times."""
        cell = self._heat.get((bank, row))
        if cell is None:
            self._heat[(bank, row)] = [count, 0.0, 0]
        else:
            cell[0] += count

    def record_activation_batch(self, bank: int,
                                rows: Iterable[int],
                                counts: Iterable[int]) -> None:
        """Batched form of :meth:`record_activation` (columnar engine)."""
        heat = self._heat
        for row, count in zip(rows, counts):
            cell = heat.get((bank, row))
            if cell is None:
                heat[(bank, row)] = [int(count), 0.0, 0]
            else:
                cell[0] += int(count)

    def record_flip_window(self, bank: int, row: int, flips: int,
                           hammer: float, aggressor: int,
                           pattern: str, epoch: int) -> None:
        """``flips`` bits flipped in one materialization window of
        ``row``, under ``hammer`` accumulated pressure dominated by
        ``aggressor`` (``-1`` when none), while ``pattern`` was the
        stored data pattern, during refresh epoch ``epoch``."""
        cell = self._heat.get((bank, row))
        if cell is None:
            self._heat[(bank, row)] = [0, hammer, flips]
        else:
            if hammer > cell[1]:
                cell[1] = hammer
            cell[2] += flips
        key = (bank, row, aggressor, pattern)
        agg = self._prov.get(key)
        if agg is None:
            self._prov[key] = [flips, hammer, epoch, epoch]
        else:
            agg[0] += flips
            if hammer > agg[1]:
                agg[1] = hammer
            if epoch < agg[2]:
                agg[2] = epoch
            if epoch > agg[3]:
                agg[3] = epoch

    def audit_count(self, mitigation: str, decision: str, n: int = 1) -> None:
        """Count a high-volume decision without materializing an event
        (PARA per-activation draws, ECC per-word outcomes)."""
        key = (mitigation, decision)
        self._audit_counts[key] = self._audit_counts.get(key, 0) + n

    def audit(self, mitigation: str, decision: str,
              time_ns: Optional[float] = None, **detail: Any) -> None:
        """Record a typed audit event (and bump its count)."""
        self.audit_count(mitigation, decision)
        cap = self.audit_cap
        if cap is not None and len(self._audit_events) >= cap:
            self.audit_dropped += 1
            return
        self._audit_events.append(
            AuditEvent(mitigation, decision, time_ns, detail))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def heat_rows(self) -> List[Tuple[int, int, int, float, int]]:
        """``(bank, row, activations, peak_pressure, flips)`` sorted by
        flips then pressure, hottest first."""
        rows = [(bank, row, int(acts), float(peak), int(flips))
                for (bank, row), (acts, peak, flips) in self._heat.items()]
        rows.sort(key=lambda r: (-r[4], -r[3], r[0], r[1]))
        return rows

    def provenance_rows(self) -> List[Tuple[int, int, int, str, int, float, int, int]]:
        """``(bank, victim, aggressor, pattern, flips, max_hammer,
        first_epoch, last_epoch)`` sorted by flips, heaviest first."""
        rows = [(bank, victim, agg, pattern, int(flips), float(hammer),
                 int(first), int(last))
                for (bank, victim, agg, pattern), (flips, hammer, first, last)
                in self._prov.items()]
        rows.sort(key=lambda r: (-r[4], r[0], r[1], r[2], r[3]))
        return rows

    def audit_counts(self) -> Dict[Tuple[str, str], int]:
        return dict(self._audit_counts)

    def audit_events(self) -> List[AuditEvent]:
        return list(self._audit_events)

    def total_flips(self) -> int:
        return sum(int(cell[2]) for cell in self._heat.values())

    def total_provenance_flips(self) -> int:
        return sum(int(agg[0]) for agg in self._prov.values())

    def total_activations(self) -> int:
        return sum(int(cell[0]) for cell in self._heat.values())

    # ------------------------------------------------------------------
    # Snapshot / merge (the cross-process protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump, sorted for stable output."""
        return {
            "heat": [
                [bank, row, int(acts), float(peak), int(flips)]
                for (bank, row), (acts, peak, flips) in sorted(self._heat.items())
            ],
            "provenance": [
                [bank, victim, agg, pattern, int(flips), float(hammer),
                 int(first), int(last)]
                for (bank, victim, agg, pattern), (flips, hammer, first, last)
                in sorted(self._prov.items())
            ],
            "audit_counts": [
                [mitigation, decision, int(n)]
                for (mitigation, decision), n in sorted(self._audit_counts.items())
            ],
            "audit_events": [event.to_dict() for event in self._audit_events],
            "audit_dropped": int(self.audit_dropped),
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Absorb a snapshot: counts add, peaks max-merge, epoch
        windows widen, bounded event lists concatenate (overflow goes
        to ``audit_dropped``)."""
        for bank, row, acts, peak, flips in snapshot.get("heat", ()):
            key = (int(bank), int(row))
            cell = self._heat.get(key)
            if cell is None:
                self._heat[key] = [int(acts), float(peak), int(flips)]
            else:
                cell[0] += int(acts)
                if peak > cell[1]:
                    cell[1] = float(peak)
                cell[2] += int(flips)
        for bank, victim, agg, pattern, flips, hammer, first, last in \
                snapshot.get("provenance", ()):
            key = (int(bank), int(victim), int(agg), str(pattern))
            entry = self._prov.get(key)
            if entry is None:
                self._prov[key] = [int(flips), float(hammer), int(first), int(last)]
            else:
                entry[0] += int(flips)
                if hammer > entry[1]:
                    entry[1] = float(hammer)
                if first < entry[2]:
                    entry[2] = int(first)
                if last > entry[3]:
                    entry[3] = int(last)
        for mitigation, decision, n in snapshot.get("audit_counts", ()):
            key = (str(mitigation), str(decision))
            self._audit_counts[key] = self._audit_counts.get(key, 0) + int(n)
        cap = self.audit_cap
        for record in snapshot.get("audit_events", ()):
            if cap is not None and len(self._audit_events) >= cap:
                self.audit_dropped += 1
                continue
            self._audit_events.append(AuditEvent.from_dict(record))
        self.audit_dropped += int(snapshot.get("audit_dropped", 0))

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "PhysicsCollector":
        collector = cls()
        collector.merge(snapshot)
        return collector

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[Optional[Mapping[str, Any]]]
                       ) -> "PhysicsCollector":
        collector = cls()
        for snapshot in snapshots:
            if snapshot:
                collector.merge(snapshot)
        return collector

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------
    def to_registry(self) -> MetricsRegistry:
        """Bank-level aggregates as a metrics registry, ready for
        :func:`repro.telemetry.export.render_exposition` (per-row
        series would explode scrape cardinality, so rows aggregate
        per bank; the full resolution lives in the snapshot)."""
        registry = MetricsRegistry()
        per_bank: Dict[int, List[float]] = {}
        for (bank, _row), (acts, peak, flips) in self._heat.items():
            agg = per_bank.setdefault(bank, [0, 0.0, 0, 0])
            agg[0] += int(acts)
            if peak > agg[1]:
                agg[1] = float(peak)
            agg[2] += int(flips)
            if flips:
                agg[3] += 1
        for bank in sorted(per_bank):
            acts, peak, flips, disturbed = per_bank[bank]
            registry.counter("physics_row_activations_total", bank=bank).inc(int(acts))
            registry.counter("physics_flips_total", bank=bank).inc(int(flips))
            registry.gauge("physics_row_peak_pressure", bank=bank).set(float(peak))
            registry.gauge("physics_rows_disturbed", bank=bank).set(int(disturbed))
        for (mitigation, decision), n in sorted(self._audit_counts.items()):
            registry.counter("physics_audit_events_total",
                             mitigation=mitigation, decision=decision).inc(n)
        if self.audit_dropped:
            registry.counter("physics_audit_dropped_total").inc(self.audit_dropped)
        return registry


_collector = PhysicsCollector()


# ----------------------------------------------------------------------
# Switches and sink management (mirrors repro.telemetry.runtime)
# ----------------------------------------------------------------------
def enable_physics(fresh: bool = False) -> PhysicsCollector:
    """Turn physics collection on; optionally start from an empty collector."""
    global physics_on, _collector
    if fresh:
        _collector = PhysicsCollector()
    physics_on = True
    return _collector


def disable_physics() -> None:
    global physics_on
    physics_on = False


def get_collector() -> PhysicsCollector:
    return _collector


def swap_collector(collector: PhysicsCollector) -> PhysicsCollector:
    """Install ``collector`` as the process sink; return the previous
    one.  The runner uses this (like ``swap_registry``) to give each
    in-process job an isolated collector whose snapshot travels inside
    the job's result."""
    global _collector
    previous = _collector
    _collector = collector
    return previous
