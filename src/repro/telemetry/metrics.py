"""Metric primitives: counters, gauges, fixed-bucket histograms.

Everything here is designed around two constraints the simulators
impose:

* **near-zero cost when disabled** — instrument sites guard on the
  module-level flags in :mod:`repro.telemetry.runtime`, so the
  primitives themselves only pay when telemetry is on;
* **mergeable across processes** — experiment jobs run in pool
  workers, so every metric can :meth:`~MetricsRegistry.snapshot` to a
  JSON-safe dict and be re-absorbed with :meth:`~MetricsRegistry.merge`
  in the parent.  Counters and histograms merge by addition; gauges
  merge by maximum (the useful cross-worker semantics for peaks like
  queue depth).

Histograms are fixed-bucket: a sorted tuple of upper edges, one count
per bucket plus an overflow bucket, and running sum/count.  Two
histograms merge iff their edges match exactly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Fallback histogram edges (powers of four): fine enough for counts
#: and wide enough for latencies in ns.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(labels: LabelKey) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


def _fmt(value: float) -> str:
    """Full-precision value rendering: integral values as integers
    (large counters must not round through %g), floats via repr."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value; merges across processes by maximum."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with an overflow (+Inf) bucket.

    ``edges`` are inclusive upper bounds, strictly increasing.  A value
    ``v`` lands in the first bucket whose edge satisfies ``v <= edge``,
    or in the overflow bucket past the last edge.
    """

    __slots__ = ("name", "labels", "edges", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (),
                 edges: Sequence[float] = DEFAULT_BUCKETS):
        edges = tuple(float(e) for e in edges)
        if not edges or any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be non-empty and strictly increasing")
        self.name = name
        self.labels = labels
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)  # last = overflow
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the q-th observation; +Inf bucket reports the last edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.edges[min(i, len(self.edges) - 1)]
        return self.edges[-1]


Metric = Any  # Counter | Gauge | Histogram


class MetricsRegistry:
    """A process-local collection of named, labeled metrics.

    Metrics are identified by ``(name, labels)``; the first touch
    creates the series, later touches return the same object.  The
    registry is intentionally not thread-safe: the simulators are
    single-threaded per process, and cross-process aggregation happens
    via :meth:`snapshot` / :meth:`merge`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: (m.name, m.labels)))

    def clear(self) -> None:
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Series accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, Any], **kwargs) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], edges=edges or DEFAULT_BUCKETS)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        elif edges is not None and tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(f"histogram {name!r} re-declared with different edges")
        return metric

    def get(self, name: str, **labels: Any) -> Optional[Metric]:
        """Look up an existing series without creating it."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: the value of a counter/gauge series (0 if absent)."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0

    def total(self, name: str) -> float:
        """Sum of a counter/gauge name across all its label sets."""
        return sum(m.value for m in self._metrics.values()
                   if m.name == name and not isinstance(m, Histogram))

    # ------------------------------------------------------------------
    # Snapshot / merge (the cross-process protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every series, stable ordering."""
        counters, gauges, histograms = [], [], []
        for metric in self:
            entry: Dict[str, Any] = {"name": metric.name, "labels": dict(metric.labels)}
            if isinstance(metric, Histogram):
                entry.update(edges=list(metric.edges), counts=list(metric.counts),
                             sum=metric.sum, count=metric.count)
                histograms.append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                gauges.append(entry)
            else:
                entry["value"] = metric.value
                counters.append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Absorb a snapshot: counters/histograms add, gauges take max."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry.get("labels", {})).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry.get("labels", {})).set_max(entry["value"])
        for entry in snapshot.get("histograms", ()):
            hist = self.histogram(entry["name"], edges=entry["edges"],
                                  **entry.get("labels", {}))
            if len(entry["counts"]) != len(hist.counts):
                raise ValueError(f"histogram {entry['name']!r} bucket count mismatch")
            for i, c in enumerate(entry["counts"]):
                hist.counts[i] += c
            hist.sum += entry["sum"]
            hist.count += entry["count"]

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[Optional[Mapping[str, Any]]]
                       ) -> "MetricsRegistry":
        registry = cls()
        for snapshot in snapshots:
            if snapshot:
                registry.merge(snapshot)
        return registry

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Delegates to :mod:`repro.telemetry.export`, the single renderer
        shared with the live ``--serve-metrics`` exporter (HELP/TYPE
        lines, name sanitization, label escaping, ``_total`` suffix).
        """
        from repro.telemetry.export import render_exposition

        return render_exposition(self)

    def render_table(self) -> str:
        """Human-readable fixed-width table (the ``repro stats`` default)."""
        rows: List[Tuple[str, str, str]] = []
        for metric in self:
            series = metric.name + _label_str(metric.labels)
            if isinstance(metric, Histogram):
                detail = (f"count={metric.count} sum={_fmt(metric.sum)} "
                          f"mean={metric.mean:.4g} p50~{metric.quantile(0.5):g} "
                          f"p99~{metric.quantile(0.99):g}")
                rows.append((series, metric.kind, detail))
            else:
                rows.append((series, metric.kind, _fmt(metric.value)))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(r[0]) for r in rows)
        kind_w = max(len(r[1]) for r in rows)
        return "\n".join(f"{name:<{width}}  {kind:<{kind_w}}  {value}"
                         for name, kind, value in rows)
