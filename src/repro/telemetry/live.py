"""``repro sweep --live``: a top(1)-style progress view.

Repaints a compact dashboard from the runner's :class:`SweepProgress`
— overall bar, per-state counts, ETA, per-worker heartbeat ages, and
the hottest span phases streamed from in-flight jobs.  On a TTY the
block is redrawn in place with ANSI cursor moves; on a pipe it
degrades to an occasional plain status line, so CI logs stay sane.

Everything is written to *stderr*: stdout stays reserved for result
payloads (``--json`` and friends).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

__all__ = ["LiveRenderer", "format_progress_lines"]

_BAR_WIDTH = 28


def _bar(done: int, total: int, width: int = _BAR_WIDTH) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(done, total) / total)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "eta --"
    if eta_s >= 3600:
        return f"eta {eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"eta {int(eta_s // 60)}m{int(eta_s % 60):02d}s"
    return f"eta {eta_s:.1f}s"


def format_progress_lines(progress: Any, workers: int = 1,
                          now_mono: Optional[float] = None,
                          top_spans: int = 4) -> List[str]:
    """Render the dashboard block for one repaint."""
    counts = progress.counts()
    finished = progress.finished()
    total = counts["total"]
    head = (f"run {progress.run_id or '-'}  "
            f"{_bar(finished, total)} {finished}/{total}  "
            f"ok={counts['done']} cached={counts['cached']} "
            f"err={counts['errored']} run={counts['running']}")
    if progress.retries:
        head += f" retry={progress.retries}"
    if progress.stale_events:
        head += f" stale={len(progress.stale_events)}"
    head += (f"  {progress.elapsed_s(now_mono):.1f}s elapsed  "
             f"{_fmt_eta(progress.eta_s(workers=workers, now_mono=now_mono))}")
    lines = [head]

    running = {j["job_id"]: j for j in progress.jobs.values()
               if j["state"] == "running"}
    ages = progress.heartbeat_ages(now_mono)
    for pid in sorted(progress.workers):
        worker = progress.workers[pid]
        job_id = worker.get("job_id")
        job = running.get(job_id)
        if job is not None:
            desc = f"{job['name']}[seed={job['seed']}] ({job_id})"
            if job.get("stale_warned"):
                desc += "  ! stale heartbeat"
        else:
            desc = "idle"
        age = ages.get(pid)
        age_s = f"{age:.1f}s" if age is not None else "--"
        lines.append(f"  worker {pid:<8} beat {age_s:<7} {desc}")

    span_totals: Dict[str, float] = {}
    for spans in progress.job_spans.values():
        for entry in spans:
            span_totals[entry["span"]] = (span_totals.get(entry["span"], 0.0)
                                          + entry["self_s"])
    if span_totals:
        top = sorted(span_totals.items(), key=lambda kv: -kv[1])[:top_spans]
        lines.append("  spans " + "  ".join(f"{name}={self_s:.2f}s"
                                            for name, self_s in top))
    return lines


class LiveRenderer:
    """Throttled repainter driven by the runner's progress callback."""

    def __init__(self, out: Any = None, interval_s: float = 0.5,
                 plain_interval_s: float = 2.0):
        self.out = out if out is not None else sys.stderr
        self.interval_s = interval_s
        self.plain_interval_s = plain_interval_s
        self.isatty = bool(getattr(self.out, "isatty", lambda: False)())
        self._last_paint = 0.0
        self._painted_lines = 0

    def update(self, runner: Any) -> None:
        progress = getattr(runner, "progress", None)
        if progress is None:
            return
        now = time.monotonic()
        interval = self.interval_s if self.isatty else self.plain_interval_s
        if now - self._last_paint < interval:
            return
        self._last_paint = now
        self._paint(progress, getattr(runner, "max_workers", None) or 1)

    def finish(self, runner: Any) -> None:
        """Final paint (uncapped) so the last state is always shown."""
        progress = getattr(runner, "progress", None)
        if progress is None:
            return
        self._paint(progress, getattr(runner, "max_workers", None) or 1)
        if self.isatty:
            self.out.write("\n")
            self.out.flush()

    def _paint(self, progress: Any, workers: int) -> None:
        lines = format_progress_lines(progress, workers=workers)
        if self.isatty:
            if self._painted_lines:
                self.out.write(f"\x1b[{self._painted_lines}F")
            self.out.write("".join(f"\x1b[2K{line}\n" for line in lines))
            self._painted_lines = len(lines)
        else:
            self.out.write(lines[0] + "\n")
        self.out.flush()
