"""Run and job identity: the correlation scheme for all artifacts.

Every sweep gets one **run ID** (``rYYYYMMDD-HHMMSS-xxxxxx``, wall
clock plus random suffix) and every job a deterministic **job ID** —
the first 12 hex chars of the existing ``job_key`` digest, so the same
(experiment, params, seed) triple always maps to the same job ID and
artifacts written in different sessions still join.

The pair is stamped into trace events, ledger lines, checkpoint
records, failure-capture bundles, and ``ExperimentResult`` metadata;
``repro ledger diff <run_a> <run_b>`` and the live exporter both join
on it.

The current run ID lives in a module global *and* in the
``REPRO_RUN_ID`` environment variable so pool workers (fork or spawn)
inherit it without any extra plumbing.

This module is a leaf: importable from any layer without cycles.
"""

from __future__ import annotations

import os
import platform
import socket
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "ENV_RUN_ID",
    "new_run_id",
    "current_run_id",
    "set_run_id",
    "clear_run_id",
    "run_scope",
    "job_id_from_key",
    "environment_fingerprint",
]

#: Environment mirror of the active run ID (inherited by pool workers).
ENV_RUN_ID = "REPRO_RUN_ID"

#: Length of a job ID: a 12-hex-char prefix of the 24-char job_key,
#: matching the ledger's record-id width.
JOB_ID_LEN = 12

_run_id: Optional[str] = None


def new_run_id(prefix: str = "r") -> str:
    """Mint a fresh run ID: readable timestamp + 3 random bytes.

    ``prefix`` distinguishes ID namespaces sharing the format — ``r``
    for runs, ``s`` for experiment-service instances — so artifacts
    stay greppable by origin.
    """
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime())
    return f"{prefix}{stamp}-{os.urandom(3).hex()}"


def current_run_id() -> Optional[str]:
    """The active run ID, or None outside any run scope.

    Falls back to ``REPRO_RUN_ID`` so forked/spawned pool workers see
    the parent's run without explicit argument passing.
    """
    if _run_id:
        return _run_id
    env = os.environ.get(ENV_RUN_ID, "").strip()
    return env or None


def set_run_id(run_id: str) -> None:
    """Install ``run_id`` as the active run (global + env mirror)."""
    global _run_id
    _run_id = run_id
    os.environ[ENV_RUN_ID] = run_id


def clear_run_id() -> None:
    global _run_id
    _run_id = None
    os.environ.pop(ENV_RUN_ID, None)


@contextmanager
def run_scope(run_id: str) -> Iterator[str]:
    """Scope ``run_id`` as the active run; restores the previous one."""
    global _run_id
    prev_global = _run_id
    prev_env = os.environ.get(ENV_RUN_ID)
    set_run_id(run_id)
    try:
        yield run_id
    finally:
        _run_id = prev_global
        if prev_env is None:
            os.environ.pop(ENV_RUN_ID, None)
        else:
            os.environ[ENV_RUN_ID] = prev_env


def job_id_from_key(job_key: str) -> str:
    """Job ID = 12-hex-char prefix of the cache/checkpoint job_key."""
    return job_key[:JOB_ID_LEN]


def environment_fingerprint() -> Dict[str, Any]:
    """Where a report came from: enough to spot apples-vs-oranges
    comparisons (different host, interpreter, numpy, or DRAM engine).
    """
    from repro.telemetry.ledger import git_sha  # local: keep this module a leaf

    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is baked into the image
        numpy_version = ""
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "hostname": socket.gethostname(),
        "dram_engine": os.environ.get("REPRO_DRAM_ENGINE", "").strip() or "columnar",
    }
