"""Prometheus text exposition (format 0.0.4) and the live exporter.

One renderer serves both consumers: ``repro stats --format
prometheus`` (post-hoc snapshots) and the ``--serve-metrics`` HTTP
endpoint (mid-sweep).  Compliance details handled here:

* ``# HELP`` / ``# TYPE`` comment lines per metric family;
* metric/label **name sanitization** to ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* **label-value escaping** of ``\\``, ``\\n`` and ``"``;
* the ``_total`` suffix convention for counters (appended only when
  missing, so existing names like ``dram_activations_total`` and
  non-counter families are untouched).

:class:`MetricsHTTPServer` is a stdlib ``http.server`` daemon thread
serving ``/metrics`` from a ``collect()`` callable — no third-party
client library, scrape it with anything that speaks HTTP.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.metrics import Histogram, MetricsRegistry, _fmt

__all__ = [
    "DEFAULT_EXPORT_PORT",
    "sanitize_metric_name",
    "sanitize_label_name",
    "escape_label_value",
    "escape_help_text",
    "exposition_name",
    "render_exposition",
    "progress_registry",
    "MetricsHTTPServer",
]

#: Default ``--serve-metrics`` port (the conventional OTel-Prometheus one).
DEFAULT_EXPORT_PORT = 9464

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHAR = re.compile(r"[^a-zA-Z0-9_]")

#: Help strings for the families the repo emits; anything else gets a
#: generated fallback so every family still carries a HELP line.
METRIC_HELP: Dict[str, str] = {
    "dram_activations_total": "DRAM row activations issued.",
    "dram_refreshes_total": "DRAM refresh operations issued.",
    "dram_bit_flips_total": "Disturbance bit flips injected by the DRAM model.",
    "runner_jobs_total": "Experiment jobs finished, by cache_hit and outcome.",
    "runner_retries_total": "Experiment job retry attempts.",
    "runner_stale_heartbeats_total": "Running jobs flagged for a stale heartbeat.",
    "cache_write_errors_total": "Result-cache writes that failed and degraded to uncached execution.",
    "service_queue_depth": "Jobs waiting in the experiment service's admission queue.",
    "service_admissions_total": "Service job submissions accepted, by kind.",
    "service_rejections_total": "Service job submissions rejected, by reason (overflow/draining/invalid).",
    "service_duplicates_total": "Idempotent re-submissions answered from the journal.",
    "service_jobs_total": "Service jobs finished, by outcome.",
    "service_cancels_total": "Service jobs cancelled on client request.",
    "service_drains_total": "Graceful drains the service has performed.",
    "service_journal_replays_total": "Journal replays performed at service startup.",
    "service_jobs_recovered_total": "Pending jobs re-enqueued from the journal after a restart.",
    "service_journal_corrupt_lines": "Unparseable journal lines skipped by the latest replay.",
    "service_draining": "1 while the service is draining, else 0.",
    "service_degraded": "1 once any runner degraded to serial execution, else 0.",
    "sanitizer_violations_total": "Sanitizer invariant violations, by subsystem.",
    "ledger_corrupt_lines": "Unparseable lines skipped by the latest run-ledger scan.",
    "repro_sweep_jobs": "Sweep jobs by state (total/done/running/errored/cached/pending).",
    "repro_sweep_retries": "Retries consumed so far in the live sweep.",
    "repro_sweep_elapsed_seconds": "Wall-clock seconds since the sweep started.",
    "repro_sweep_eta_seconds": "Estimated seconds until the sweep completes.",
    "repro_sweep_stale_heartbeats": "Stale-heartbeat warnings raised during the sweep.",
    "repro_worker_heartbeat_age_seconds": "Seconds since each pool worker's last event.",
    "physics_row_activations_total": "Activations recorded by the per-row heat map, per bank.",
    "physics_flips_total": "Bit flips recorded by the per-row heat map, per bank.",
    "physics_rows_disturbed": "Rows with at least one recorded flip, per bank.",
    "physics_row_peak_pressure": "Highest per-row hammer pressure observed at a flip, per bank.",
    "physics_audit_events_total": "Mitigation audit decisions, by mitigation and decision.",
    "physics_audit_dropped_total": "Typed audit events dropped by the bounded event list.",
}


def sanitize_metric_name(name: str) -> str:
    """Clamp a metric name to the exposition grammar."""
    name = _INVALID_NAME_CHAR.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label_name(name: str) -> str:
    """Clamp a label name (no colons allowed, unlike metric names)."""
    name = _INVALID_LABEL_CHAR.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def escape_help_text(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def exposition_name(name: str, kind: str) -> str:
    """The family name on the wire: sanitized, counters get ``_total``."""
    name = sanitize_metric_name(name)
    if kind == "counter" and not name.endswith("_total"):
        name += "_total"
    return name


def _labels_str(labels, extra: Optional[List] = None) -> str:
    pairs = [(sanitize_label_name(k), escape_label_value(v))
             for k, v in labels]
    if extra:
        pairs += [(k, v) for k, v in extra]
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _help_for(raw_name: str, family: str) -> str:
    text = METRIC_HELP.get(raw_name) or METRIC_HELP.get(family)
    return text if text else f"repro metric {family}."


def render_exposition(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    announced: set = set()
    for metric in registry:
        family = exposition_name(metric.name, metric.kind)
        if family not in announced:
            announced.add(family)
            lines.append(f"# HELP {family} "
                         f"{escape_help_text(_help_for(metric.name, family))}")
            lines.append(f"# TYPE {family} {metric.kind}")
        if isinstance(metric, Histogram):
            base = _labels_str(metric.labels)
            cumulative = 0
            for edge, count in zip(metric.edges, metric.counts):
                cumulative += count
                le = _labels_str(metric.labels, extra=[("le", f"{edge:g}")])
                lines.append(f"{family}_bucket{le} {cumulative}")
            inf = _labels_str(metric.labels, extra=[("le", "+Inf")])
            lines.append(f"{family}_bucket{inf} {metric.count}")
            lines.append(f"{family}_sum{base} {_fmt(metric.sum)}")
            lines.append(f"{family}_count{base} {metric.count}")
        else:
            lines.append(f"{family}{_labels_str(metric.labels)} "
                         f"{_fmt(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def progress_registry(progress: Any, workers: int = 1,
                      now_mono: Optional[float] = None) -> MetricsRegistry:
    """Sweep progress as gauges, labeled with the run ID for joining."""
    registry = MetricsRegistry()
    labels: Dict[str, Any] = {}
    if getattr(progress, "run_id", None):
        labels["run_id"] = progress.run_id
    counts = progress.counts()
    for state in ("total", "done", "running", "errored", "cached", "pending"):
        registry.gauge("repro_sweep_jobs", state=state, **labels).set(counts[state])
    registry.gauge("repro_sweep_retries", **labels).set(progress.retries)
    registry.gauge("repro_sweep_elapsed_seconds", **labels).set(
        round(progress.elapsed_s(now_mono), 3))
    eta = progress.eta_s(workers=workers, now_mono=now_mono)
    if eta is not None:
        registry.gauge("repro_sweep_eta_seconds", **labels).set(round(eta, 3))
    registry.gauge("repro_sweep_stale_heartbeats", **labels).set(
        len(progress.stale_events))
    for pid, age in progress.heartbeat_ages(now_mono).items():
        registry.gauge("repro_worker_heartbeat_age_seconds",
                       pid=pid, **labels).set(round(age, 3))
    return registry


class MetricsHTTPServer:
    """Serve ``/metrics`` (and ``/healthz``) from a collect callable.

    ``collect()`` must return the exposition text; it runs on the HTTP
    thread, so it must be thread-safe (the stream consumer's
    ``live_registry`` is).  ``port=0`` binds an ephemeral port — the
    resolved one is in :attr:`port` / :attr:`url`.
    """

    def __init__(self, collect: Callable[[], str],
                 port: int = DEFAULT_EXPORT_PORT, host: str = "127.0.0.1"):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?", 1)[0] == "/metrics":
                    try:
                        body = collect().encode("utf-8")
                    except Exception as exc:
                        self.send_error(500, f"collect failed: {exc}")
                        return
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the sweep's stderr

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-metrics-exporter",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
