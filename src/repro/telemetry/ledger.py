"""The run ledger: an append-only JSONL manifest of every experiment run.

Field-scale characterization campaigns (the paper's Figure 1 is one)
live and die by provenance: which jobs ran, with what parameters and
seeds, on which code, how long they took, and what they measured.  The
ledger answers those questions *longitudinally* — every
:class:`~repro.experiments.runner.ExperimentRunner` job appends one
JSON line to a machine-local file, so ``repro ledger list|show|diff``
can reconstruct and compare months of runs.

One record carries: schema version, timestamp, hostname, git SHA and
package version, the job's name/params/seed, duration, peak RSS,
cache-hit and ok/error status, a digest of the payload, and a digest
plus headline totals of the job's metric snapshot.

Configuration is environment-first so it works under any entry point:

* ``REPRO_LEDGER_PATH`` — where the JSONL lives
  (default ``~/.cache/repro/ledger.jsonl``);
* ``REPRO_LEDGER=off`` (also ``0``/``false``/``no``) — the off switch.

Appends are best-effort: a read-only home directory must never take
down an experiment run.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "ENV_LEDGER_PATH",
    "ENV_LEDGER_SWITCH",
    "RunLedger",
    "build_record",
    "default_ledger",
    "git_sha",
    "ledger_enabled",
]

LEDGER_SCHEMA = 1
DEFAULT_LEDGER_PATH = "~/.cache/repro/ledger.jsonl"
ENV_LEDGER_PATH = "REPRO_LEDGER_PATH"
ENV_LEDGER_SWITCH = "REPRO_LEDGER"

#: At most this many per-counter totals are inlined into a record; the
#: full snapshot is represented by its digest.
_MAX_METRIC_TOTALS = 48

_git_sha_cache: Optional[str] = None


def ledger_enabled() -> bool:
    """The ``REPRO_LEDGER`` off switch (default: on)."""
    return os.environ.get(ENV_LEDGER_SWITCH, "").strip().lower() not in (
        "off", "0", "false", "no", "disabled",
    )


def ledger_path() -> Path:
    return Path(os.environ.get(ENV_LEDGER_PATH) or DEFAULT_LEDGER_PATH).expanduser()


def default_ledger() -> Optional["RunLedger"]:
    """The environment-configured ledger, or ``None`` when switched off."""
    if not ledger_enabled():
        return None
    return RunLedger(ledger_path())


def git_sha() -> str:
    """Short git SHA of the source tree, cached; empty when unavailable."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=5,
            ).stdout.strip()
        except Exception:
            _git_sha_cache = ""
    return _git_sha_cache


def _digest(blob: str) -> str:
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def build_record(result: Any, command: str = "runner") -> Dict[str, Any]:
    """One ledger record for an :class:`ExperimentResult`-shaped object.

    Digests make runs comparable without storing payloads: two records
    with equal ``payload_digest`` produced byte-identical canonical
    payload JSON.  ``metrics_totals`` inlines per-counter sums (capped)
    so ``repro ledger diff`` can show *which* hardware activity moved.
    """
    import repro
    from repro.experiments.result import canonical_json
    from repro.telemetry import ids

    job_id = getattr(result, "job_id", None)
    if not job_id:
        try:
            from repro.experiments.checkpoint import job_key

            job_id = ids.job_id_from_key(
                job_key(result.name, result.params, result.seed))
        except Exception:  # unregistered name: identity stays best-effort
            job_id = ""
    metrics_digest = ""
    metrics_totals: Dict[str, float] = {}
    if result.metrics:
        metrics_digest = _digest(canonical_json(result.metrics))
        for entry in result.metrics.get("counters", ()):
            name = entry["name"]
            metrics_totals[name] = metrics_totals.get(name, 0) + entry["value"]
        if len(metrics_totals) > _MAX_METRIC_TOTALS:
            keep = sorted(metrics_totals)[:_MAX_METRIC_TOTALS]
            metrics_totals = {k: metrics_totals[k] for k in keep}
    record = {
        "schema": LEDGER_SCHEMA,
        "ts": time.time(),
        "time": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "host": socket.gethostname(),
        "repro_version": repro.__version__,
        "git_sha": git_sha(),
        "command": command,
        "run_id": getattr(result, "run_id", None) or ids.current_run_id() or "",
        "job_id": job_id,
        "name": result.name,
        "params": dict(result.params),
        "seed": result.seed,
        "duration_s": result.duration_s,
        "peak_rss_kb": result.peak_rss_kb,
        "cache_hit": result.cache_hit,
        "ok": result.error is None,
        "error": result.error,
        "payload_digest": _digest(canonical_json(result.payload))
        if result.payload is not None else "",
        "metrics_digest": metrics_digest,
        "metrics_totals": metrics_totals,
    }
    record["id"] = _digest(json.dumps(record, sort_keys=True, default=repr))[:12]
    return record


class RunLedger:
    """Append-only JSONL manifest of runs at one path.

    Appends are race-safe: the whole line goes down in a single
    ``write`` on an ``O_APPEND`` descriptor, so concurrent runners
    sharing one ledger interleave whole records, never fragments of
    them.  Reads skip unparseable lines and count them in
    :attr:`corrupt_lines` so ``repro ledger show``/``diff`` can report
    (rather than crash on) a torn or foreign line.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path).expanduser()
        self.corrupt_lines = 0

    def append(self, record: Dict[str, Any]) -> bool:
        """Append one record; best-effort (returns False on IO failure)."""
        from repro import chaos

        if chaos.enabled() and chaos.fail_ledger_append(
                record.get("name"), record.get("seed")):
            return False  # injected I/O failure: the best-effort contract
        from repro.utils.jsonl import append_record

        line = (json.dumps(record, sort_keys=True, default=repr) + "\n").encode("utf-8")
        return append_record(self.path, line, fsync=False)

    def record(self, result: Any, command: str = "runner") -> Dict[str, Any]:
        """Build and append a record for ``result``; returns the record."""
        rec = build_record(result, command=command)
        self.append(rec)
        return rec

    def scan(self) -> List[Dict[str, Any]]:
        """All parseable records, oldest first; refreshes
        :attr:`corrupt_lines` with the number of skipped lines."""
        self.corrupt_lines = 0
        if not self.path.is_file():
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.corrupt_lines += 1
                    continue
                if isinstance(record, dict):
                    out.append(record)
                else:
                    self.corrupt_lines += 1
        from repro.telemetry import runtime as telem

        if telem.metrics_on:
            telem.gauge("ledger_corrupt_lines").set(self.corrupt_lines)
        return out

    def records(self) -> List[Dict[str, Any]]:
        """All parseable records, oldest first (torn lines are skipped)."""
        return self.scan()

    def records_for_run(self, run_id: str) -> List[Dict[str, Any]]:
        """Records stamped with ``run_id``, oldest first — the join the
        service's job-status endpoint and the chaos accounting use."""
        return [r for r in self.scan() if r.get("run_id") == run_id]

    def find(self, ref: str) -> Optional[Dict[str, Any]]:
        """Look a record up by 1-based index, negative index, or id prefix.

        A numeric ref is tried as an index first; when that misses and
        the ref is id-prefix-sized (>= 4 chars), it falls back to a
        prefix match — hex ids are sometimes all digits, and those must
        stay findable.
        """
        records = self.records()
        if not records:
            return None
        try:
            index = int(ref)
        except ValueError:
            return self._find_by_prefix(records, ref)
        if index != 0:
            try:
                return records[index - 1] if index > 0 else records[index]
            except IndexError:
                pass
        if len(ref.lstrip("-")) >= 4:
            return self._find_by_prefix(records, ref)
        return None

    @staticmethod
    def _find_by_prefix(records: List[Dict[str, Any]],
                        ref: str) -> Optional[Dict[str, Any]]:
        matches = [r for r in records if str(r.get("id", "")).startswith(ref)]
        return matches[-1] if matches else None
