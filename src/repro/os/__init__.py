"""OS-level structures: page tables in DRAM and the concrete exploit chain."""

from repro.os.exploit import ExploitOutcome, KernelExploitSimulation, exploit_success_curve
from repro.os.pagetable import (
    PFN_SHIFT,
    PFN_WIDTH,
    PTE_BITS,
    Pte,
    decode_pte_page,
    encode_pte_page,
    pte_diff,
)

__all__ = [
    "ExploitOutcome",
    "KernelExploitSimulation",
    "exploit_success_curve",
    "PFN_SHIFT",
    "PFN_WIDTH",
    "PTE_BITS",
    "Pte",
    "decode_pte_page",
    "encode_pte_page",
    "pte_diff",
]
