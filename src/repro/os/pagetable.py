"""x86-64-style page-table entries stored in simulated DRAM rows.

The §II-B kernel exploit is, concretely, a *data reinterpretation*
chain: page-table pages are ordinary DRAM rows whose 64-bit words the
MMU interprets as PTEs; a disturbance flip in the PFN field of such a
word silently retargets a virtual mapping.  This module provides the
encode/decode layer: PTE words <-> row bit arrays, with the standard
field layout (present bit 0, writable bit 1, PFN in bits 12..51).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

#: PTE geometry.
PTE_BITS = 64
PFN_SHIFT = 12
PFN_WIDTH = 40
PRESENT_BIT = 0
WRITABLE_BIT = 1


@dataclass(frozen=True)
class Pte:
    """One decoded page-table entry."""

    present: bool
    writable: bool
    pfn: int

    def encode(self) -> int:
        """The 64-bit entry value."""
        value = (self.pfn & ((1 << PFN_WIDTH) - 1)) << PFN_SHIFT
        if self.present:
            value |= 1 << PRESENT_BIT
        if self.writable:
            value |= 1 << WRITABLE_BIT
        return value

    @classmethod
    def decode(cls, value: int) -> "Pte":
        """Parse a 64-bit entry value."""
        return cls(
            present=bool(value & (1 << PRESENT_BIT)),
            writable=bool(value & (1 << WRITABLE_BIT)),
            pfn=(value >> PFN_SHIFT) & ((1 << PFN_WIDTH) - 1),
        )


def encode_pte_page(ptes: List[Pte], row_bits: int) -> np.ndarray:
    """Pack PTEs into a row-sized bit array (LSB-first 64-bit words)."""
    capacity = row_bits // PTE_BITS
    if len(ptes) > capacity:
        raise ValueError(f"row holds at most {capacity} PTEs, got {len(ptes)}")
    bits = np.zeros(row_bits, dtype=np.uint8)
    for index, pte in enumerate(ptes):
        value = pte.encode()
        base = index * PTE_BITS
        for b in range(PTE_BITS):
            bits[base + b] = (value >> b) & 1
    return bits


def decode_pte_page(bits: np.ndarray) -> List[Pte]:
    """Parse a row bit array back into its PTEs."""
    if bits.size % PTE_BITS:
        raise ValueError("row size must be a multiple of 64 bits")
    out = []
    # Vectorized word assembly: reshape to (n, 64) then dot with powers of 2.
    words = bits.reshape(-1, PTE_BITS).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(PTE_BITS, dtype=np.uint64))
    values = (words * weights).sum(axis=1, dtype=np.uint64)
    for value in values:
        out.append(Pte.decode(int(value)))
    return out


def pte_diff(before: List[Pte], after: List[Pte]) -> List[int]:
    """Indices of entries that changed."""
    if len(before) != len(after):
        raise ValueError("PTE lists must have equal length")
    return [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
