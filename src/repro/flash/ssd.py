"""SSD-level organization: blocks, ECC budget, lifetime, error breakdown.

The §III-A2 claims this layer reproduces:

* retention errors **dominate** the error mix as P/E cycles grow;
* an ECC budget per page defines correctability; lifetime = the P/E
  count at which the worst page's raw errors exceed that budget after
  the retention requirement has elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.flash.block import FlashBlock
from repro.flash.params import FlashParams
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


def program_block_shadow(block: FlashBlock, seed: int = 0) -> None:
    """Program every wordline with random data in the shadow sequence
    real MLC parts use (LSB of wordline n+1 before MSB of wordline n),
    which bounds the interference any finalized page suffers."""
    rng = derive_rng(seed, "ssd-data", block.seed)
    pages = {
        wl: (
            rng.integers(0, 2, size=block.cells).astype(np.uint8),
            rng.integers(0, 2, size=block.cells).astype(np.uint8),
        )
        for wl in range(block.wordlines)
    }
    block.program_lsb(0, pages[0][0])
    for wl in range(1, block.wordlines):
        block.program_lsb(wl, pages[wl][0])
        block.program_msb(wl - 1, pages[wl - 1][1])
    block.program_msb(block.wordlines - 1, pages[block.wordlines - 1][1])


@dataclass
class ErrorBreakdown:
    """Raw errors attributed per mechanism for one aged block.

    Attributes map mechanism -> total raw bit errors across the block.
    """

    wear_and_interference: int
    retention: int
    read_disturb: int

    @property
    def total(self) -> int:
        return self.wear_and_interference + self.retention + self.read_disturb

    def dominant(self) -> str:
        """Name of the largest contributor."""
        contributions = {
            "wear_and_interference": self.wear_and_interference,
            "retention": self.retention,
            "read_disturb": self.read_disturb,
        }
        return max(contributions, key=contributions.get)


def _total_errors(block: FlashBlock) -> int:
    return sum(
        block.page_errors(wl, which)
        for wl in block.programmed_wordlines()
        for which in ("lsb", "msb")
    )


def error_breakdown(
    pe_cycles: int,
    retention_days: float,
    reads: int,
    params: FlashParams = FlashParams(),
    wordlines: int = 16,
    cells: int = 2048,
    seed: int = 0,
) -> ErrorBreakdown:
    """Attribute errors by measuring after each mechanism is applied.

    Sequence: program at wear level (wear+interference errors), age
    retention (delta = retention errors), apply reads (delta =
    read-disturb errors).  Deltas can only grow because each mechanism
    moves Vth monotonically in its own direction.
    """
    block = FlashBlock(wordlines=wordlines, cells=cells, params=params, seed=seed)
    block.set_pe_cycles(pe_cycles)
    block.erase()
    block.set_pe_cycles(pe_cycles)  # erase() increments; pin the level
    program_block_shadow(block, seed=seed)
    e_program = _total_errors(block)
    block.age_retention(retention_days)
    e_retention = _total_errors(block)
    block.apply_read_disturb(reads)
    e_reads = _total_errors(block)
    return ErrorBreakdown(
        wear_and_interference=e_program,
        retention=max(0, e_retention - e_program),
        read_disturb=max(0, e_reads - e_retention),
    )


class Ssd:
    """A small SSD: a set of blocks plus an ECC budget.

    Args:
        n_blocks: blocks in the (simulated slice of the) device.
        wordlines, cells: block geometry.
        params: flash device parameters.
        ecc_correctable_per_page: raw bit errors the page ECC corrects.
        seed: device seed.
    """

    def __init__(
        self,
        n_blocks: int = 4,
        wordlines: int = 16,
        cells: int = 2048,
        params: FlashParams = FlashParams(),
        ecc_correctable_per_page: int = 40,
        seed: int = 0,
    ) -> None:
        check_positive("n_blocks", n_blocks)
        check_positive("ecc_correctable_per_page", ecc_correctable_per_page)
        self.params = params
        self.ecc_correctable_per_page = ecc_correctable_per_page
        self.blocks: List[FlashBlock] = [
            FlashBlock(wordlines=wordlines, cells=cells, params=params, seed=derive_rng(seed, "blk", i).integers(0, 2**31))
            for i in range(n_blocks)
        ]

    def age_all(self, pe_cycles: int, retention_days: float, reads: int = 0, seed: int = 0) -> None:
        """Accelerated aging of every block: wear, program, retention, reads."""
        for i, block in enumerate(self.blocks):
            block.set_pe_cycles(pe_cycles)
            block.erase()
            block.set_pe_cycles(pe_cycles)
            program_block_shadow(block, seed=seed + i)
            block.age_retention(retention_days)
            if reads:
                block.apply_read_disturb(reads)

    def worst_page_errors(self, read_refs=None) -> int:
        """Max raw errors of any programmed page on the device."""
        worst = 0
        for block in self.blocks:
            for wl in block.programmed_wordlines():
                for which in ("lsb", "msb"):
                    worst = max(worst, block.page_errors(wl, which, read_refs))
        return worst

    def uncorrectable_pages(self, read_refs=None) -> int:
        """Pages whose raw errors exceed the ECC budget."""
        count = 0
        for block in self.blocks:
            for wl in block.programmed_wordlines():
                for which in ("lsb", "msb"):
                    if block.page_errors(wl, which, read_refs) > self.ecc_correctable_per_page:
                        count += 1
        return count

    def device_rber(self, read_refs=None) -> float:
        """Mean raw bit error rate across blocks."""
        rates = [b.rber(read_refs) for b in self.blocks]
        return float(np.mean(rates)) if rates else 0.0


def lifetime_pe_cycles(
    retention_requirement_days: float,
    params: FlashParams = FlashParams(),
    ecc_correctable_per_page: int = 40,
    reads: int = 0,
    wordlines: int = 8,
    cells: int = 2048,
    seed: int = 0,
    pe_hi: int = 60_000,
    tolerance: int = 250,
) -> int:
    """Binary-search the max P/E cycles meeting the retention requirement.

    A wear level passes if, after ``retention_requirement_days`` of
    retention (plus ``reads`` disturb events), no page exceeds the ECC
    budget.
    """

    def passes(pe: int) -> bool:
        ssd = Ssd(
            n_blocks=1,
            wordlines=wordlines,
            cells=cells,
            params=params,
            ecc_correctable_per_page=ecc_correctable_per_page,
            seed=seed,
        )
        ssd.age_all(pe, retention_requirement_days, reads=reads, seed=seed)
        return ssd.worst_page_errors() <= ecc_correctable_per_page

    lo, hi = 0, pe_hi
    if not passes(0):
        return 0
    if passes(pe_hi):
        return pe_hi
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        if passes(mid):
            lo = mid
        else:
            hi = mid
    return lo
