"""One NAND flash block: wordlines of MLC cells with full error physics.

State kept per cell: its current Vth, plus three *persistent, per-cell*
characteristics drawn once from the block seed — leak rate (retention),
read-disturb susceptibility, and wordline-coupling ratio — giving the
wide cell-to-cell variation §III-B builds its recovery mechanisms on.

Time is explicit: :meth:`FlashBlock.age_retention` advances retention
loss; reads apply disturb; programming applies interference to
neighbor wordlines.  Wear (``pe_cycles``) can be set directly for
accelerated-aging experiments (the standard shortcut for lifetime
studies; cycling loops would be prohibitive at 10K+ cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.flash.params import FlashParams
from repro.flash.vth import (
    read_lsb,
    read_lsb_partial,
    read_msb,
    state_from_bits,
)
from repro.telemetry import runtime as telem
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

#: log-time softening constant for retention loss (days).
_RETENTION_T0_DAYS = 0.1

#: Wear-histogram edges (P/E cycles), log-spaced over device lifetimes.
_WEAR_BUCKETS = (100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000)


@dataclass
class WordlineState:
    """Programming status of one wordline."""

    lsb_programmed: bool = False
    msb_programmed: bool = False
    true_lsb: Optional[np.ndarray] = None
    true_msb: Optional[np.ndarray] = None


class FlashBlock:
    """An MLC NAND block.

    Args:
        wordlines: number of wordlines (each holds an LSB and MSB page).
        cells: cells per wordline (page size in bits).
        params: device parameters.
        seed: per-block seed for persistent cell characteristics.
    """

    def __init__(
        self,
        wordlines: int = 64,
        cells: int = 2048,
        params: FlashParams = FlashParams(),
        seed: int = 0,
    ) -> None:
        check_positive("wordlines", wordlines)
        check_positive("cells", cells)
        self.wordlines = wordlines
        self.cells = cells
        self.params = params
        self.seed = seed
        rng = derive_rng(seed, "flash-block")
        shape = (wordlines, cells)
        # Persistent per-cell characteristics (the variation RFR/NAC use).
        self.leak_rate = np.exp(rng.normal(0.0, params.leak_sigma, size=shape))
        self.rd_susceptibility = np.exp(rng.normal(0.0, params.read_disturb_sigma, size=shape))
        self.coupling = np.clip(
            rng.normal(params.coupling_mean, params.coupling_sigma, size=shape), 0.0, None
        )
        self.pe_cycles = 0
        self._program_rng = derive_rng(seed, "flash-noise")
        self.vth = np.empty(shape, dtype=np.float64)
        self.wl_state: Dict[int, WordlineState] = {}
        self.retention_days = 0.0
        self.reads_seen = 0
        self._erase_fill()

    # ------------------------------------------------------------------
    # Wear management
    # ------------------------------------------------------------------
    def set_pe_cycles(self, pe_cycles: int) -> None:
        """Set the wear level directly (accelerated aging)."""
        if pe_cycles < 0:
            raise ValueError("pe_cycles must be >= 0")
        self.pe_cycles = pe_cycles
        if telem.metrics_on:
            telem.histogram("flash_wear_pe_cycles", edges=_WEAR_BUCKETS).observe(pe_cycles)

    def _erase_fill(self) -> None:
        er_mean = self.params.state_means[0]
        self.vth[:] = self._program_rng.normal(
            er_mean, self.params.er_sigma, size=self.vth.shape
        )

    def erase(self) -> None:
        """Erase the block (one P/E cycle)."""
        self.pe_cycles += 1
        self._erase_fill()
        self.wl_state.clear()
        self.retention_days = 0.0
        if telem.metrics_on:
            telem.counter("flash_pe_cycles_total").inc()
            telem.histogram("flash_wear_pe_cycles", edges=_WEAR_BUCKETS).observe(self.pe_cycles)

    # ------------------------------------------------------------------
    # Programming (two-step)
    # ------------------------------------------------------------------
    def _state(self, wordline: int) -> WordlineState:
        if not 0 <= wordline < self.wordlines:
            raise IndexError(f"wordline {wordline} out of range")
        return self.wl_state.setdefault(wordline, WordlineState())

    def _program_noise(self, size: int) -> np.ndarray:
        sigma = self.params.program_sigma_at(self.pe_cycles)
        return self._program_rng.normal(0.0, sigma, size=size)

    def _apply_interference(self, wordline: int, delta: np.ndarray) -> None:
        """Couple a programming voltage swing into adjacent wordlines."""
        for neighbor in (wordline - 1, wordline + 1):
            if not 0 <= neighbor < self.wordlines:
                continue
            state = self.wl_state.get(neighbor)
            if state is None or not state.lsb_programmed:
                continue  # erased neighbors are re-programmed later anyway
            self.vth[neighbor] += self.coupling[neighbor] * np.maximum(delta, 0.0)

    def program_lsb(self, wordline: int, bits: np.ndarray) -> None:
        """First programming step: LSB page -> ER (1) or LM (0) state."""
        state = self._state(wordline)
        if state.lsb_programmed:
            raise RuntimeError(f"wordline {wordline} LSB already programmed")
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cells,):
            raise ValueError(f"LSB page must have {self.cells} bits")
        with telem.span("flash.program", page="lsb"):
            old = self.vth[wordline].copy()
            wear_mult = self.params.program_sigma_at(self.pe_cycles) / self.params.program_sigma
            lm_noise = self._program_rng.normal(0.0, self.params.lm_sigma * wear_mult, size=self.cells)
            self.vth[wordline] = np.where(
                bits == 1, self.vth[wordline], self.params.lm_mean + lm_noise
            )
            state.lsb_programmed = True
            state.true_lsb = bits.copy()
            self._apply_interference(wordline, self.vth[wordline] - old)

    def program_msb(self, wordline: int, bits: np.ndarray, supplied_lsb: Optional[np.ndarray] = None) -> None:
        """Second programming step: MSB page, finalizing the 4-level state.

        The device must know each cell's LSB to pick the final state.
        By default it performs the **internal partial read** (the
        fragile step [24] exploits); a controller-side mitigation can
        pass ``supplied_lsb`` (buffered truth) instead.
        """
        state = self._state(wordline)
        if not state.lsb_programmed:
            raise RuntimeError(f"wordline {wordline} LSB not yet programmed")
        if state.msb_programmed:
            raise RuntimeError(f"wordline {wordline} MSB already programmed")
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cells,):
            raise ValueError(f"MSB page must have {self.cells} bits")
        with telem.span("flash.program", page="msb"):
            if supplied_lsb is None:
                lsb_seen = read_lsb_partial(self.vth[wordline], self.params.lm_read_ref)
            else:
                lsb_seen = np.asarray(supplied_lsb, dtype=np.uint8)
            old = self.vth[wordline].copy()
            targets = state_from_bits(lsb_seen, bits)
            means = np.asarray(self.params.state_means)[targets]
            # ER-target cells are not programmed (stay at their erased Vth).
            programmed = targets != 0
            new = np.where(
                programmed,
                means + self._program_noise(self.cells),
                self.vth[wordline],
            )
            self.vth[wordline] = new
            state.msb_programmed = True
            state.true_msb = bits.copy()
            self._apply_interference(wordline, self.vth[wordline] - old)

    def program_full(self, wordline: int, lsb: np.ndarray, msb: np.ndarray) -> None:
        """Both steps back-to-back (no exposure window)."""
        self.program_lsb(wordline, lsb)
        self.program_msb(wordline, msb)

    # ------------------------------------------------------------------
    # Error mechanisms
    # ------------------------------------------------------------------
    def age_retention(self, days: float) -> None:
        """Advance retention loss by ``days`` (charged cells drift toward ER).

        The loss is logarithmic in time, proportional to the cell's
        stored charge, scaled by its persistent leak rate and by wear.
        """
        if days < 0:
            raise ValueError("days must be >= 0")
        if days == 0:
            return
        params = self.params
        er_mean = params.state_means[0]
        span = params.state_means[3] - er_mean
        prev = np.log1p(self.retention_days / _RETENTION_T0_DAYS)
        self.retention_days += days
        now = np.log1p(self.retention_days / _RETENTION_T0_DAYS)
        log_gain = now - prev
        scale = params.retention_scale * params.retention_factor(self.pe_cycles)
        charge = np.clip((self.vth - er_mean) / span, 0.0, None)
        self.vth -= self.leak_rate * scale * log_gain * charge * span

    def apply_read_disturb(self, reads: int = 1) -> None:
        """Apply ``reads`` block-level read-disturb events."""
        if reads < 0:
            raise ValueError("reads must be >= 0")
        if reads == 0:
            return
        params = self.params
        er_mean = params.state_means[0]
        top = params.state_means[3]
        weight = np.clip((top - self.vth) / (top - er_mean), 0.0, 1.0)
        self.vth += reads * params.read_disturb_step * self.rd_susceptibility * weight
        self.reads_seen += reads
        if telem.metrics_on:
            telem.counter("flash_read_disturbs_total").inc(reads)
        if telem.trace_on:
            telem.trace("read_disturb", reads=reads, pe_cycles=self.pe_cycles)

    # ------------------------------------------------------------------
    # Reads and error accounting
    # ------------------------------------------------------------------
    def read_page(self, wordline: int, which: str, read_refs=None, disturb: bool = True) -> np.ndarray:
        """Read the LSB or MSB page of a wordline.

        Args:
            wordline: target wordline.
            which: ``"lsb"`` or ``"msb"``.
            read_refs: optional tuned references (default: factory).
            disturb: whether this read disturbs the block.
        """
        state = self._state(wordline)
        refs = read_refs if read_refs is not None else self.params.read_refs
        with telem.span("flash.read", page=which):
            if which == "lsb":
                if not state.lsb_programmed:
                    raise RuntimeError("LSB page not programmed")
                bits = (
                    read_lsb(self.vth[wordline], refs)
                    if state.msb_programmed
                    else read_lsb_partial(self.vth[wordline], self.params.lm_read_ref)
                )
            elif which == "msb":
                if not state.msb_programmed:
                    raise RuntimeError("MSB page not programmed")
                bits = read_msb(self.vth[wordline], refs)
            else:
                raise ValueError("which must be 'lsb' or 'msb'")
            if telem.metrics_on:
                telem.counter("flash_page_reads_total", page=which).inc()
            if disturb:
                self.apply_read_disturb(1)
            return bits

    def page_errors(self, wordline: int, which: str, read_refs=None) -> int:
        """Raw bit errors of one page versus its programmed truth."""
        state = self._state(wordline)
        truth = state.true_lsb if which == "lsb" else state.true_msb
        if truth is None:
            raise RuntimeError(f"{which} page of wordline {wordline} not programmed")
        bits = self.read_page(wordline, which, read_refs=read_refs, disturb=False)
        return int(np.count_nonzero(bits != truth))

    def rber(self, read_refs=None) -> float:
        """Raw bit error rate across all fully programmed wordlines."""
        errors = 0
        bits = 0
        for wl, state in self.wl_state.items():
            if state.msb_programmed:
                errors += self.page_errors(wl, "lsb", read_refs)
                errors += self.page_errors(wl, "msb", read_refs)
                bits += 2 * self.cells
        if bits == 0:
            return 0.0
        return errors / bits

    def programmed_wordlines(self):
        """Wordlines with both pages programmed."""
        return sorted(wl for wl, s in self.wl_state.items() if s.msb_programmed)
