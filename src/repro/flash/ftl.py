"""A page-mapped Flash Translation Layer with garbage collection.

§II-D's central argument is that flash survived scaling *because* an
intelligent controller covers for the raw medium.  The FTL is the core
of that controller: logical-page remapping, out-of-place writes,
garbage collection, and wear leveling.  This implementation supports
the repository's flash-management experiments:

* write-amplification accounting (host vs flash writes) — the real
  cost unit behind FCR/WARM refresh decisions;
* per-block erase counters — wear-leveling evenness;
* a refresh pass (:meth:`PageMappedFtl.refresh_all_valid`) that
  relocates all valid data, which is exactly how remapping-based FCR
  is implemented on real drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sanitizer import runtime as sanit
from repro.utils.rng import derive_rng
from repro.utils.validation import check_in_range, check_int, check_positive


@dataclass
class FtlStats:
    """FTL activity counters."""

    host_writes: int = 0
    flash_writes: int = 0
    gc_relocations: int = 0
    erases: int = 0

    @property
    def write_amplification(self) -> float:
        """Flash writes per host write (>= 1)."""
        return self.flash_writes / self.host_writes if self.host_writes else 0.0


class PageMappedFtl:
    """Page-mapped FTL over ``n_blocks`` of ``pages_per_block`` pages.

    Args:
        n_blocks: physical blocks.
        pages_per_block: pages per block.
        op_fraction: overprovisioning — fraction of physical capacity
            hidden from the host.
        gc_policy: ``"greedy"`` (min valid pages) or
            ``"wear-aware"`` (min valid, tie-broken by erase count).
        seed: randomness for tie-breaking.
    """

    def __init__(
        self,
        n_blocks: int = 64,
        pages_per_block: int = 64,
        op_fraction: float = 0.125,
        gc_policy: str = "greedy",
        seed: int = 0,
    ) -> None:
        check_int("n_blocks", n_blocks)
        check_int("pages_per_block", pages_per_block)
        check_positive("n_blocks", n_blocks)
        check_positive("pages_per_block", pages_per_block)
        check_in_range("op_fraction", op_fraction, 0.02, 0.5)
        if gc_policy not in ("greedy", "wear-aware"):
            raise ValueError("gc_policy must be 'greedy' or 'wear-aware'")
        self.n_blocks = n_blocks
        self.pages_per_block = pages_per_block
        self.gc_policy = gc_policy
        self._rng = derive_rng(seed, "ftl")
        total_pages = n_blocks * pages_per_block
        self.logical_pages = int(total_pages * (1.0 - op_fraction))
        # Mapping: lpn -> (block, page) or None.
        self._map: List[Optional[tuple]] = [None] * self.logical_pages
        # Per-block state.
        self._valid: List[np.ndarray] = [
            np.zeros(pages_per_block, dtype=bool) for _ in range(n_blocks)
        ]
        self._owner: List[np.ndarray] = [
            np.full(pages_per_block, -1, dtype=np.int64) for _ in range(n_blocks)
        ]
        self._write_ptr = [0] * n_blocks
        self.erase_counts = np.zeros(n_blocks, dtype=np.int64)
        self._free_blocks = list(range(1, n_blocks))
        self._active = 0
        self.stats = FtlStats()

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def write(self, lpn: int) -> None:
        """Host write of one logical page (out of place)."""
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(f"lpn {lpn} out of range [0, {self.logical_pages})")
        if sanit.sanitize_on:
            sanit.check("flash.ftl", self)
        self.stats.host_writes += 1
        self._invalidate(lpn)
        self._append(lpn)

    def lookup(self, lpn: int) -> Optional[tuple]:
        """Current physical location of a logical page."""
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(f"lpn {lpn} out of range")
        return self._map[lpn]

    def valid_page_count(self) -> int:
        """Valid pages across all blocks (== distinct written lpns)."""
        return int(sum(v.sum() for v in self._valid))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate(self, lpn: int) -> None:
        location = self._map[lpn]
        if location is not None:
            block, page = location
            self._valid[block][page] = False
            self._owner[block][page] = -1
            self._map[lpn] = None

    def _append(self, lpn: int) -> None:
        if self._write_ptr[self._active] >= self.pages_per_block:
            self._open_new_block()
        block = self._active
        page = self._write_ptr[block]
        self._write_ptr[block] += 1
        self._valid[block][page] = True
        self._owner[block][page] = lpn
        self._map[lpn] = (block, page)
        self.stats.flash_writes += 1

    def _open_new_block(self) -> None:
        if self._free_blocks:
            self._active = self._free_blocks.pop(0)
            return
        self._garbage_collect()

    def _pick_victim(self) -> int:
        candidates = [
            b for b in range(self.n_blocks)
            if b != self._active and b not in self._free_blocks
        ]
        if not candidates:
            raise RuntimeError("no GC victim available")
        if self.gc_policy == "greedy":
            return min(candidates, key=lambda b: int(self._valid[b].sum()))
        return min(
            candidates,
            key=lambda b: (int(self._valid[b].sum()), int(self.erase_counts[b])),
        )

    def _garbage_collect(self) -> None:
        """Erase the best victim and make it the active block.

        The victim's surviving pages are relocated back into the erased
        victim itself — they always fit, so GC can never deadlock — and
        the remaining slots become the new write frontier.  Progress is
        guaranteed as long as some block holds an invalid page, which
        overprovisioning ensures.
        """
        victim = self._pick_victim()
        movers = [int(lpn) for lpn in self._owner[victim][self._valid[victim]]]
        if len(movers) >= self.pages_per_block:
            raise RuntimeError("no reclaimable space: every victim page is valid")
        for lpn in movers:
            self._map[lpn] = None
        self._valid[victim][:] = False
        self._owner[victim][:] = -1
        self._write_ptr[victim] = 0
        self.erase_counts[victim] += 1
        self.stats.erases += 1
        self._active = victim
        for lpn in movers:
            page = self._write_ptr[victim]
            self._write_ptr[victim] += 1
            self._valid[victim][page] = True
            self._owner[victim][page] = lpn
            self._map[lpn] = (victim, page)
            self.stats.flash_writes += 1
            self.stats.gc_relocations += 1
        if sanit.sanitize_on:
            # GC rewrites the whole victim block: a structural boundary
            # worth a full (non-amortized) bijectivity scan.
            sanit.check("flash.ftl", self, boundary=True)

    # ------------------------------------------------------------------
    # FCR support
    # ------------------------------------------------------------------
    def refresh_all_valid(self) -> int:
        """Remapping-based refresh: rewrite every valid page (one FCR
        pass).  Returns pages relocated; their retention clocks reset."""
        relocated = 0
        for lpn in range(self.logical_pages):
            if self._map[lpn] is not None:
                self._invalidate(lpn)
                self._append(lpn)
                relocated += 1
        if sanit.sanitize_on:
            sanit.check("flash.ftl", self, boundary=True)
        return relocated

    def wear_evenness(self) -> float:
        """Max/mean erase-count ratio (1.0 = perfectly even)."""
        mean = self.erase_counts.mean()
        if mean == 0:
            return 1.0
        return float(self.erase_counts.max() / mean)
