"""Two-step programming vulnerabilities (Cai+, HPCA 2017; §III-B).

In MLC NAND the LSB is programmed first, into a fragile intermediate
state that is not re-verified; the final 4-level state is only set at
the MSB step, using an *internal read* of the intermediate state.  Any
disturbance during the exposure window — read disturb from a co-located
reader, program interference from neighboring writes (both of which a
malicious tenant can generate on a shared SSD) — can corrupt the
internal read and hence permanently corrupt the stored data.

Mitigation modeled (from the paper's proposals): **LSB buffering** —
the controller keeps the LSB data until the MSB step and supplies it
directly, making the internal read irrelevant.  The experiments
measure corrupted-at-finalization LSB errors with and without the
mitigation, and the resulting lifetime gain (paper: ~16%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.block import FlashBlock
from repro.flash.params import MLC_1XNM, FlashParams
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


@dataclass
class TwoStepResult:
    """LSB errors at finalization for one exposure experiment.

    Attributes:
        exposed_errors: errors with the vulnerable internal read.
        mitigated_errors: errors with controller LSB buffering.
        control_errors: errors with no exposure window (back-to-back
            programming) — the noise floor.
    """

    exposed_errors: int
    mitigated_errors: int
    control_errors: int


def _final_lsb_errors(block: FlashBlock, wordline: int) -> int:
    return block.page_errors(wordline, "lsb")


def _run_one(
    params: FlashParams,
    pe_cycles: int,
    window_reads: int,
    neighbor_writes: bool,
    mitigated: bool,
    exposure_window: bool,
    cells: int,
    seed: int,
) -> int:
    rng = derive_rng(seed, "twostep-data")
    block = FlashBlock(wordlines=4, cells=cells, params=params, seed=seed)
    block.set_pe_cycles(pe_cycles)
    lsb = rng.integers(0, 2, size=cells).astype(np.uint8)
    msb = rng.integers(0, 2, size=cells).astype(np.uint8)
    block.program_lsb(1, lsb)
    if exposure_window:
        if neighbor_writes:
            block.program_lsb(2, rng.integers(0, 2, size=cells).astype(np.uint8))
            block.program_lsb(0, rng.integers(0, 2, size=cells).astype(np.uint8))
        if window_reads:
            block.apply_read_disturb(window_reads)
    block.program_msb(1, msb, supplied_lsb=lsb if mitigated else None)
    return _final_lsb_errors(block, 1)


def exposure_experiment(
    pe_cycles: int = 8000,
    window_reads: int = 50_000,
    neighbor_writes: bool = True,
    params: FlashParams = MLC_1XNM,
    cells: int = 4096,
    seed: int = 0,
) -> TwoStepResult:
    """Measure LSB corruption through the two-step exposure window."""
    check_positive("cells", cells)
    exposed = _run_one(params, pe_cycles, window_reads, neighbor_writes, False, True, cells, seed)
    mitigated = _run_one(params, pe_cycles, window_reads, neighbor_writes, True, True, cells, seed)
    control = _run_one(params, pe_cycles, 0, False, False, False, cells, seed)
    return TwoStepResult(
        exposed_errors=exposed, mitigated_errors=mitigated, control_errors=control
    )


def lifetime_with_exposure(
    error_budget: int,
    mitigated: bool,
    window_reads: int = 10_000,
    params: FlashParams = MLC_1XNM,
    cells: int = 4096,
    seed: int = 0,
    pe_hi: int = 40_000,
    tolerance: int = 250,
) -> int:
    """Max P/E cycles keeping exposed-LSB errors within ``error_budget``."""

    def errors_at(pe: int) -> int:
        return _run_one(params, pe, window_reads, True, mitigated, True, cells, seed)

    lo, hi = 0, pe_hi
    if errors_at(0) > error_budget:
        return 0
    if errors_at(pe_hi) <= error_budget:
        return pe_hi
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        if errors_at(mid) <= error_budget:
            lo = mid
        else:
            hi = mid
    return lo


def lifetime_gain_fraction(
    error_budget: int = 160,
    window_reads: int = 10_000,
    params: FlashParams = MLC_1XNM,
    cells: int = 4096,
    seed: int = 0,
) -> float:
    """Fractional lifetime gain from the buffering mitigation (paper: ~16%)."""
    base = lifetime_with_exposure(error_budget, mitigated=False, window_reads=window_reads, params=params, cells=cells, seed=seed)
    hardened = lifetime_with_exposure(error_budget, mitigated=True, window_reads=window_reads, params=params, cells=cells, seed=seed)
    if base == 0:
        raise RuntimeError("baseline lifetime is zero; budget too tight")
    return hardened / base - 1.0
