"""Threshold-voltage classification and bit mapping."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.flash.params import LSB_OF_STATE, MSB_OF_STATE, FlashParams

LSB_ARR = np.array(LSB_OF_STATE, dtype=np.uint8)
MSB_ARR = np.array(MSB_OF_STATE, dtype=np.uint8)

#: state index by (lsb, msb) — inverse of LSB_OF_STATE/MSB_OF_STATE.
_STATE_BY_BITS = {(1, 1): 0, (1, 0): 1, (0, 0): 2, (0, 1): 3}


def state_from_bits(lsb: np.ndarray, msb: np.ndarray) -> np.ndarray:
    """Target state index for each (lsb, msb) pair."""
    out = np.empty(lsb.shape, dtype=np.int64)
    for (l, m), state in _STATE_BY_BITS.items():
        out[(lsb == l) & (msb == m)] = state
    return out


def classify(vth: np.ndarray, read_refs: Tuple[float, float, float]) -> np.ndarray:
    """Hard-read state classification of Vth values."""
    r1, r2, r3 = read_refs
    return (
        (vth >= r1).astype(np.int64)
        + (vth >= r2).astype(np.int64)
        + (vth >= r3).astype(np.int64)
    )


def read_lsb(vth: np.ndarray, read_refs: Tuple[float, float, float]) -> np.ndarray:
    """LSB page read: one strobe at R2 (ER/P1 -> 1, P2/P3 -> 0)."""
    return (vth < read_refs[1]).astype(np.uint8)


def read_msb(vth: np.ndarray, read_refs: Tuple[float, float, float]) -> np.ndarray:
    """MSB page read: strobes at R1 and R3 (ER/P3 -> 1, P1/P2 -> 0)."""
    return ((vth < read_refs[0]) | (vth >= read_refs[2])).astype(np.uint8)


def read_lsb_partial(vth: np.ndarray, lm_read_ref: float) -> np.ndarray:
    """Internal LSB read during the two-step window (ER vs LM)."""
    return (vth < lm_read_ref).astype(np.uint8)


def bits_of_states(states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(lsb, msb) bit arrays encoded by the given states."""
    return LSB_ARR[states], MSB_ARR[states]


def optimal_read_refs(vth: np.ndarray, states: np.ndarray, params: FlashParams, grid: int = 41) -> Tuple[float, float, float]:
    """Grid-search read references minimizing misclassifications.

    Models the adaptive read-reference tuning of modern SSD
    controllers: after retention shifts the distributions, the factory
    references are no longer centered in the valleys; re-centering them
    removes most retention errors.
    """
    refs = list(params.read_refs)
    means = params.state_means
    for boundary in range(3):
        lo = means[boundary]
        hi = means[boundary + 1]
        candidates = np.linspace(lo, hi, grid)
        best_ref, best_err = refs[boundary], None
        for cand in candidates:
            trial = tuple(refs[:boundary] + [float(cand)] + refs[boundary + 1:])
            errors = int(np.count_nonzero(classify(vth, trial) != states))
            if best_err is None or errors < best_err:
                best_err, best_ref = errors, float(cand)
        refs[boundary] = best_ref
    return tuple(refs)
