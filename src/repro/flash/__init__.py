"""NAND flash substrate: MLC Vth model, error mechanisms, mitigations."""

from repro.flash.block import FlashBlock, WordlineState
from repro.flash.ftl import FtlStats, PageMappedFtl
from repro.flash.params import LSB_OF_STATE, MLC_1XNM, MLC_2XNM, MSB_OF_STATE, STATE_NAMES, FlashParams
from repro.flash.ssd import (
    ErrorBreakdown,
    Ssd,
    error_breakdown,
    lifetime_pe_cycles,
    program_block_shadow,
)
from repro.flash.twostep import (
    TwoStepResult,
    exposure_experiment,
    lifetime_gain_fraction,
    lifetime_with_exposure,
)
from repro.flash.vth import (
    bits_of_states,
    classify,
    optimal_read_refs,
    read_lsb,
    read_lsb_partial,
    read_msb,
    state_from_bits,
)

__all__ = [
    "FlashBlock",
    "FtlStats",
    "PageMappedFtl",
    "WordlineState",
    "LSB_OF_STATE",
    "MLC_1XNM",
    "MLC_2XNM",
    "MSB_OF_STATE",
    "STATE_NAMES",
    "FlashParams",
    "ErrorBreakdown",
    "Ssd",
    "error_breakdown",
    "lifetime_pe_cycles",
    "program_block_shadow",
    "TwoStepResult",
    "exposure_experiment",
    "lifetime_gain_fraction",
    "lifetime_with_exposure",
    "bits_of_states",
    "classify",
    "optimal_read_refs",
    "read_lsb",
    "read_lsb_partial",
    "read_msb",
    "state_from_bits",
]
