"""Flash-controller error mitigation and recovery mechanisms."""

from repro.flash.mitigations.fcr import FcrPoint, fcr_sweep, lifetime_multiplier
from repro.flash.mitigations.nac import NacOutcome, correct_wordline, expected_neighbor_swing
from repro.flash.mitigations.rfr import RfrOutcome, read_disturb_recovery, recover_wordline
from repro.flash.mitigations.warm import WarmOutcome, warm_study

__all__ = [
    "FcrPoint",
    "fcr_sweep",
    "lifetime_multiplier",
    "NacOutcome",
    "correct_wordline",
    "expected_neighbor_swing",
    "RfrOutcome",
    "read_disturb_recovery",
    "recover_wordline",
    "WarmOutcome",
    "warm_study",
]
