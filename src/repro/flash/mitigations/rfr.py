"""Retention Failure Recovery (Cai+, DSN 2015; §III-A2).

After an uncorrectable retention error, the controller can still
recover data offline by exploiting the wide variation in cell leak
rates: re-reading the page after an extra controlled retention period
reveals which cells are fast leakers; risky cells (those near a read
reference) are then extrapolated back to their pre-leak voltage and
reclassified.

The paper's security observation is the flip side: the same procedure
lets an *attacker* with a failed (discarded) device probabilistically
reconstruct its contents — data thought destroyed by retention loss is
recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.block import _RETENTION_T0_DAYS, FlashBlock
from repro.flash.vth import classify
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


@dataclass
class RfrOutcome:
    """Error counts before and after recovery for one wordline.

    Attributes:
        errors_before: raw state misclassifications pre-recovery.
        errors_after: misclassifications after RFR reclassification.
    """

    errors_before: int
    errors_after: int

    @property
    def reduction_fraction(self) -> float:
        if self.errors_before == 0:
            return 0.0
        return 1.0 - self.errors_after / self.errors_before


def _expected_log_gain(t_from: float, t_to: float) -> float:
    return np.log1p(t_to / _RETENTION_T0_DAYS) - np.log1p(t_from / _RETENTION_T0_DAYS)


def recover_wordline(
    block: FlashBlock,
    wordline: int,
    extra_bake_days: float = 3.0,
    bake_acceleration: float = 60.0,
    risky_margin: float = 0.45,
    measurement_sigma: float = 0.004,
    seed: int = 0,
) -> RfrOutcome:
    """Run RFR on one (retention-damaged) wordline.

    Procedure (uses only controller-observable quantities):

    1. measure each cell's Vth via read-retry sweeps (small measurement
       noise), at the current age t1;
    2. bake for ``extra_bake_days`` at elevated temperature — Arrhenius
       acceleration makes the bake equivalent to
       ``extra_bake_days * bake_acceleration`` days of room-temperature
       retention, so the second measurement sees a usable drop even at
       the flat end of the log-time curve;
    3. the per-cell drop estimates its leak rate; cells within
       ``risky_margin`` of a read reference are extrapolated back to
       their age-zero Vth and reclassified.

    Returns state-level error counts before/after against ground truth.
    """
    check_positive("extra_bake_days", extra_bake_days)
    check_positive("bake_acceleration", bake_acceleration)
    state = block.wl_state.get(wordline)
    if state is None or not state.msb_programmed:
        raise RuntimeError("wordline must be fully programmed")
    params = block.params
    rng = derive_rng(seed, "rfr", wordline)
    true_states = _true_states(block, wordline)

    t1 = block.retention_days
    v1 = block.vth[wordline] + rng.normal(0.0, measurement_sigma, size=block.cells)
    errors_before = int(np.count_nonzero(classify(v1, params.read_refs) != true_states))

    # Accelerated bake, then second measurement.
    block.age_retention(extra_bake_days * bake_acceleration)
    t2 = block.retention_days
    v2 = block.vth[wordline] + rng.normal(0.0, measurement_sigma, size=block.cells)

    # Leak-rate estimate from the observed drop over the known bake.
    er_mean = params.state_means[0]
    span = params.state_means[3] - er_mean
    charge = np.clip((v1 - er_mean) / span, 1e-3, None)
    gain_bake = _expected_log_gain(t1, t2)
    scale = params.retention_scale * params.retention_factor(block.pe_cycles)
    leak_est = np.clip((v1 - v2) / (scale * gain_bake * charge * span), 0.0, None)

    # Extrapolate back to age zero and reclassify risky cells.
    gain_total = _expected_log_gain(0.0, t2)
    v_orig = v2 + leak_est * scale * gain_total * charge * span
    refs = np.asarray(params.read_refs)
    dist = np.min(np.abs(v2[:, None] - refs[None, :]), axis=1)
    risky = dist <= risky_margin
    recovered = classify(v2, params.read_refs)
    recovered[risky] = classify(v_orig[risky], params.read_refs)
    errors_after = int(np.count_nonzero(recovered != true_states))
    return RfrOutcome(errors_before=errors_before, errors_after=errors_after)


def _true_states(block: FlashBlock, wordline: int) -> np.ndarray:
    from repro.flash.vth import state_from_bits

    state = block.wl_state[wordline]
    return state_from_bits(state.true_lsb, state.true_msb)


def read_disturb_recovery(
    block: FlashBlock,
    wordline: int,
    risky_margin: float = 0.45,
    seed: int = 0,
    measurement_sigma: float = 0.01,
) -> RfrOutcome:
    """The read-disturb analogue (§III-B): susceptibility variation lets
    the controller estimate each cell's accumulated upward disturb and
    subtract it before classification.

    The susceptibility estimate models the offline characterization the
    DSN 2015 mechanism performs (a known-data disturb experiment on the
    same cells), so it reads the block's persistent susceptibility with
    estimation noise rather than inferring it from two bakes.
    """
    state = block.wl_state.get(wordline)
    if state is None or not state.msb_programmed:
        raise RuntimeError("wordline must be fully programmed")
    params = block.params
    rng = derive_rng(seed, "rdr", wordline)
    true_states = _true_states(block, wordline)
    v = block.vth[wordline] + rng.normal(0.0, measurement_sigma, size=block.cells)
    errors_before = int(np.count_nonzero(classify(v, params.read_refs) != true_states))

    susceptibility_est = block.rd_susceptibility[wordline] * np.exp(
        rng.normal(0.0, 0.1, size=block.cells)
    )
    er_mean = params.state_means[0]
    top = params.state_means[3]
    weight = np.clip((top - v) / (top - er_mean), 0.0, 1.0)
    disturb_est = block.reads_seen * params.read_disturb_step * susceptibility_est * weight
    v_corr = v - disturb_est
    refs = np.asarray(params.read_refs)
    dist = np.min(np.abs(v[:, None] - refs[None, :]), axis=1)
    risky = dist <= risky_margin
    recovered = classify(v, params.read_refs)
    recovered[risky] = classify(v_corr[risky], params.read_refs)
    errors_after = int(np.count_nonzero(recovered != true_states))
    return RfrOutcome(errors_before=errors_before, errors_after=errors_after)
