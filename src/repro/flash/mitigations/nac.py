"""Neighbor-Cell Assisted Correction (Cai+, SIGMETRICS 2014; §III-B).

Program interference shifts a victim cell's Vth upward in proportion
to the voltage swing its directly adjacent (next-wordline) cell made
when programmed.  Since the controller can *read the neighbor page*,
it knows each aggressor's final state and can compensate: re-classify
the victim with a per-cell reference shifted by the expected coupling
for that neighbor state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.block import FlashBlock
from repro.flash.vth import classify, state_from_bits
from repro.utils.rng import derive_rng


@dataclass
class NacOutcome:
    """Error counts before/after neighbor-assisted correction."""

    errors_before: int
    errors_after: int

    @property
    def reduction_fraction(self) -> float:
        if self.errors_before == 0:
            return 0.0
        return 1.0 - self.errors_after / self.errors_before


def expected_neighbor_swing(block: FlashBlock, neighbor_wordline: int) -> np.ndarray:
    """Expected **MSB-step** voltage swing of each neighbor cell,
    reconstructed from its *read* state (controller-observable).

    In the shadow programming order, the only neighbor disturbance a
    finalized wordline suffers is the upper neighbor's MSB step; that
    step starts from ER for final states ER/P1 (lsb=1) and from the LM
    state for P2/P3 (lsb=0)."""
    params = block.params
    state = block.wl_state.get(neighbor_wordline)
    if state is None or not state.msb_programmed:
        return np.zeros(block.cells)
    neighbor_states = classify(block.vth[neighbor_wordline], params.read_refs)
    means = np.asarray(params.state_means)
    start = np.where(neighbor_states <= 1, means[0], params.lm_mean)
    return np.clip(means[neighbor_states] - start, 0.0, None)


def correct_wordline(
    block: FlashBlock,
    wordline: int,
    measurement_sigma: float = 0.01,
    seed: int = 0,
) -> NacOutcome:
    """Apply NAC to one victim wordline (neighbor = wordline + 1)."""
    state = block.wl_state.get(wordline)
    if state is None or not state.msb_programmed:
        raise RuntimeError("victim wordline must be fully programmed")
    params = block.params
    rng = derive_rng(seed, "nac", wordline)
    true_states = state_from_bits(state.true_lsb, state.true_msb)
    v = block.vth[wordline] + rng.normal(0.0, measurement_sigma, size=block.cells)
    errors_before = int(np.count_nonzero(classify(v, params.read_refs) != true_states))

    # In shadow order only the upper neighbor's MSB step lands after the
    # victim is finalized; compensate for exactly that swing.
    compensation = np.zeros(block.cells)
    if wordline + 1 < block.wordlines:
        compensation = params.coupling_mean * expected_neighbor_swing(block, wordline + 1)
    v_corr = v - compensation
    errors_after = int(np.count_nonzero(classify(v_corr, params.read_refs) != true_states))
    return NacOutcome(errors_before=errors_before, errors_after=errors_after)
