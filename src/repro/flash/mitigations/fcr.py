"""Flash Correct-and-Refresh (Cai+, ICCD 2012; §III-A2).

FCR periodically relocates (or reprograms in place) each block's data,
resetting its retention clock.  The retention requirement a block must
survive thus drops from the nominal guarantee (e.g. one year) to the
refresh interval (e.g. three days) — which, because retention errors
dominate at high wear, buys a large lifetime multiplier at the cost of
extra P/E cycles for the refresh copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.flash.params import FlashParams
from repro.flash.ssd import lifetime_pe_cycles
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FcrPoint:
    """Lifetime at one refresh setting.

    Attributes:
        refresh_interval_days: FCR period (None = no refresh).
        raw_lifetime_pe: P/E cycles sustainable against the effective
            retention requirement.
        refresh_wear_per_year: P/E cycles consumed per year by the
            refresh copies themselves.
    """

    refresh_interval_days: Optional[float]
    raw_lifetime_pe: int
    refresh_wear_per_year: float

    def effective_lifetime_years(self, host_writes_pe_per_year: float) -> float:
        """Years until the wear budget is exhausted by host writes plus
        refresh-copy writes."""
        total_rate = host_writes_pe_per_year + self.refresh_wear_per_year
        if total_rate <= 0:
            raise ValueError("write rate must be positive")
        return self.raw_lifetime_pe / total_rate


def fcr_sweep(
    retention_requirement_days: float = 365.0,
    refresh_intervals_days: Sequence[Optional[float]] = (None, 84.0, 21.0, 3.0),
    params: FlashParams = FlashParams(),
    ecc_correctable_per_page: int = 40,
    seed: int = 0,
    **lifetime_kwargs,
) -> List[FcrPoint]:
    """Lifetime versus refresh interval (the FCR headline curve).

    With no refresh, pages must survive the full retention requirement;
    with FCR at interval r, only r days — so sustainable wear rises
    steeply as r shrinks.
    """
    check_positive("retention_requirement_days", retention_requirement_days)
    points = []
    for interval in refresh_intervals_days:
        effective_days = retention_requirement_days if interval is None else min(
            retention_requirement_days, interval
        )
        lifetime = lifetime_pe_cycles(
            retention_requirement_days=effective_days,
            params=params,
            ecc_correctable_per_page=ecc_correctable_per_page,
            seed=seed,
            **lifetime_kwargs,
        )
        wear_per_year = 0.0 if interval is None else 365.0 / interval
        points.append(
            FcrPoint(
                refresh_interval_days=interval,
                raw_lifetime_pe=lifetime,
                refresh_wear_per_year=wear_per_year,
            )
        )
    return points


def lifetime_multiplier(points: Sequence[FcrPoint]) -> float:
    """Best refreshed lifetime over the unrefreshed baseline."""
    baseline = next((p for p in points if p.refresh_interval_days is None), None)
    if baseline is None or baseline.raw_lifetime_pe == 0:
        raise ValueError("sweep must include a no-refresh baseline with nonzero lifetime")
    best = max(p.raw_lifetime_pe for p in points)
    return best / baseline.raw_lifetime_pe
