"""WARM: Write-hotness Aware Retention Management (Luo+, MSST 2015).

Cited by the paper ([71]) among the flash retention solutions: pages
that are rewritten frequently (*hot* data) never need to survive long
retention periods, so they can be managed without retention
guardbanding — and without refresh — while only *cold* data pays for
retention (via FCR refresh).  The split relaxes the effective
retention requirement of most written bytes and cuts refresh-copy wear
to the cold fraction only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flash.params import FlashParams
from repro.flash.ssd import lifetime_pe_cycles
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class WarmOutcome:
    """Lifetime of one management policy.

    Attributes:
        policy: label.
        hot_lifetime_pe: sustainable wear for the hot partition.
        cold_lifetime_pe: sustainable wear for the cold partition.
        refresh_wear_fraction: fraction of write traffic added by
            refresh copies.
    """

    policy: str
    hot_lifetime_pe: int
    cold_lifetime_pe: int
    refresh_wear_fraction: float

    @property
    def device_lifetime_pe(self) -> int:
        """The device lasts as long as its weaker partition."""
        return min(self.hot_lifetime_pe, self.cold_lifetime_pe)


def warm_study(
    hot_write_fraction: float = 0.8,
    hot_rewrite_days: float = 1.0,
    retention_requirement_days: float = 365.0,
    fcr_interval_days: float = 21.0,
    params: FlashParams = FlashParams(),
    ecc_correctable_per_page: int = 40,
    seed: int = 0,
    **lifetime_kwargs,
) -> dict:
    """Compare baseline / FCR / WARM / WARM+FCR lifetimes.

    Args:
        hot_write_fraction: fraction of write traffic touching hot data.
        hot_rewrite_days: how often hot data is naturally rewritten —
            its effective retention requirement.
        retention_requirement_days: the nominal (cold-data) guarantee.
        fcr_interval_days: FCR refresh period where FCR applies.
    """
    check_probability("hot_write_fraction", hot_write_fraction)
    check_positive("hot_rewrite_days", hot_rewrite_days)
    check_positive("retention_requirement_days", retention_requirement_days)

    def lifetime(days: float) -> int:
        return lifetime_pe_cycles(
            retention_requirement_days=days,
            params=params,
            ecc_correctable_per_page=ecc_correctable_per_page,
            seed=seed,
            **lifetime_kwargs,
        )

    lt_full = lifetime(retention_requirement_days)
    lt_fcr = lifetime(min(retention_requirement_days, fcr_interval_days))
    lt_hot = lifetime(hot_rewrite_days)
    cold_fraction = 1.0 - hot_write_fraction

    outcomes = {
        "baseline": WarmOutcome(
            policy="baseline",
            hot_lifetime_pe=lt_full,
            cold_lifetime_pe=lt_full,
            refresh_wear_fraction=0.0,
        ),
        # FCR refreshes everything: all data relaxed to the interval, but
        # every page pays refresh-copy wear.
        "fcr": WarmOutcome(
            policy="fcr",
            hot_lifetime_pe=lt_fcr,
            cold_lifetime_pe=lt_fcr,
            refresh_wear_fraction=1.0,
        ),
        # WARM alone: hot data relaxed by its rewrite cadence; cold data
        # still needs the full guarantee (no refresh).
        "warm": WarmOutcome(
            policy="warm",
            hot_lifetime_pe=lt_hot,
            cold_lifetime_pe=lt_full,
            refresh_wear_fraction=0.0,
        ),
        # WARM + FCR: hot data refresh-free, cold data refreshed.
        "warm+fcr": WarmOutcome(
            policy="warm+fcr",
            hot_lifetime_pe=lt_hot,
            cold_lifetime_pe=lt_fcr,
            refresh_wear_fraction=cold_fraction,
        ),
    }
    return outcomes
