"""MLC NAND flash model parameters.

The model follows the threshold-voltage (Vth) abstraction used by the
characterization papers §III cites (DATE 2012/2013, ICCD 2012/2013,
HPCA 2015/2017): an MLC cell stores one of four states — ER (erased),
P1, P2, P3 — as a Vth level; every error mechanism is a movement of
Vth across a read reference.

Mechanisms modeled (with their qualitative calibration targets):

* **P/E cycling wear** widens program distributions and accelerates
  leakage — the floor of the error-vs-cycles curves.
* **Retention loss** (dominant at high P/E, per [16, 22]): charged
  states drift down toward ER over time; per-cell *leak rates* vary
  widely (the fast-/slow-leaker variation RFR exploits).
* **Read disturb**: every read weakly programs the block's other
  cells upward, mainly from the ER state; per-cell susceptibility
  varies (exploited by the recovery mechanism of [23]).
* **Program interference**: programming a wordline couples into its
  neighbors' Vth proportionally to the voltage swing ([19, 21]).
* **Two-step programming**: the LSB is programmed first into an
  intermediate (LM) state that is *unverified and fragile* until the
  MSB step; disturbance in that window corrupts data ([24]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

#: MLC state names, in ascending Vth order.
STATE_NAMES = ("ER", "P1", "P2", "P3")

#: Logical bit mapping (Gray-coded): index by state.
LSB_OF_STATE = (1, 1, 0, 0)
MSB_OF_STATE = (1, 0, 0, 1)


@dataclass(frozen=True)
class FlashParams:
    """Device parameters of the MLC model (voltages are normalized).

    Attributes:
        state_means: target Vth of ER/P1/P2/P3.
        er_sigma: erase-distribution width.
        program_sigma: program-distribution width at zero wear.
        read_refs: R1/R2/R3 hard read references.
        lm_mean, lm_sigma: the intermediate (LSB-programmed) state.
        lm_read_ref: internal reference separating ER from LM during the
            two-step window.
        wear_sigma_coef: program-sigma widening per 10K P/E cycles.
        wear_retention_coef: leakage acceleration per 10K P/E cycles.
        retention_scale: magnitude of Vth loss per log-day at 10K cycles.
        leak_sigma: lognormal spread of per-cell leak rates.
        read_disturb_step: mean upward Vth nudge per block read.
        read_disturb_sigma: lognormal spread of per-cell susceptibility.
        coupling_mean, coupling_sigma: wordline-to-wordline interference
            ratio distribution.
        pages_kb: user data per (half-)page in KiB, for ECC budgeting.
    """

    state_means: tuple = (-2.0, 1.0, 2.2, 3.4)
    er_sigma: float = 0.42
    program_sigma: float = 0.115
    read_refs: tuple = (-0.5, 1.6, 2.8)
    lm_mean: float = 1.3
    lm_sigma: float = 0.16
    lm_read_ref: float = -0.4
    wear_sigma_coef: float = 0.55
    wear_retention_coef: float = 1.4
    retention_scale: float = 0.0045
    leak_sigma: float = 0.6
    read_disturb_step: float = 2.3e-5
    read_disturb_sigma: float = 0.5
    coupling_mean: float = 0.055
    coupling_sigma: float = 0.018
    pages_kb: int = 1

    def __post_init__(self) -> None:
        if len(self.state_means) != 4 or len(self.read_refs) != 3:
            raise ValueError("need 4 state means and 3 read references")
        if list(self.state_means) != sorted(self.state_means):
            raise ValueError("state_means must ascend")
        if list(self.read_refs) != sorted(self.read_refs):
            raise ValueError("read_refs must ascend")
        check_positive("er_sigma", self.er_sigma)
        check_positive("program_sigma", self.program_sigma)
        check_positive("retention_scale", self.retention_scale)

    def program_sigma_at(self, pe_cycles: int) -> float:
        """Program-distribution width after ``pe_cycles`` of wear."""
        return self.program_sigma * (1.0 + self.wear_sigma_coef * pe_cycles / 10_000.0)

    def retention_factor(self, pe_cycles: int) -> float:
        """Leakage acceleration multiplier at ``pe_cycles``."""
        return 1.0 + self.wear_retention_coef * pe_cycles / 10_000.0


#: Planar 2X-nm-class MLC defaults.
MLC_2XNM = FlashParams()

#: A denser 1X-nm-class part: tighter window, faster wear — the
#: scaling-trend instance used by the two-step experiments ([24] uses
#: 1X-nm chips).
MLC_1XNM = FlashParams(
    state_means=(-1.8, 0.9, 1.95, 3.0),
    read_refs=(-0.45, 1.42, 2.48),
    program_sigma=0.125,
    lm_mean=1.15,
    wear_sigma_coef=0.75,
    wear_retention_coef=1.9,
    retention_scale=0.0055,
    coupling_mean=0.08,
)
