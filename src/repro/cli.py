"""Command-line front end: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run fig1_error_rates --seed 0
    python -m repro run c3 c4 c5 --parallel 3 --json
    python -m repro run rowhammer_basic --metrics
    python -m repro stats --format prometheus
    python -m repro trace rowhammer_basic --output trace.jsonl
    python -m repro describe para_reliability
    python -m repro report f1 c3 --output report.md
    python -m repro report rowhammer_basic --seeds 4 --format html --check
    python -m repro sweep fig1_error_rates --seeds 8 --parallel 4
    python -m repro sweep fig1_error_rates --seeds 64 --timeout 30 --resume
    python -m repro sweep rowhammer_basic --seeds 16 --sanitize full
    python -m repro replay .repro-failures/rowhammer_basic-7-ab12cd34ef567890.json
    python -m repro chaos
    python -m repro serve --state-dir .repro-service
    python -m repro submit fig1_error_rates --seeds 16 --wait
    python -m repro jobs

Experiments resolve by registry name *or* legacy alias (``f1``,
``c2``…) through :mod:`repro.experiments`.  Results print as text
tables, or as JSON with ``--json``; ``--record`` wraps the payload in
its full :class:`~repro.experiments.result.ExperimentResult` provenance
(seed, params, duration, peak RSS, version, cache hit).

Observability: ``run``/``sweep`` accept ``--metrics``, which collects
the telemetry the simulated hardware emits (merged across ``--parallel``
worker processes) and persists the snapshot to ``--metrics-out``;
``stats`` renders a saved snapshot as a table, JSON, or Prometheus text
format; ``trace`` replays one experiment with event tracing on and
emits the JSONL event stream; ``profile`` runs one experiment under the
span profiler and renders where the time went; ``ledger`` lists, shows,
and diffs the append-only run manifest every runner job feeds; and
``bench`` drives the bench-regression suite (``repro bench --compare
BASELINE.json`` exits nonzero past the regression threshold).

Physics observability: ``run``/``sweep`` also accept ``--physics``,
which records the domain layer — per-row disturbance heat maps, flip
provenance (dominant aggressor, hammer pressure, data pattern, refresh
epoch), and the mitigation decision audit trail — and persists it to
``--physics-out`` (the file doubles as a metrics snapshot of the
bank-level physics aggregates, so ``repro stats --input
.repro-physics.json --format prometheus`` renders them).  ``report``
runs (or fetches from cache) experiments with the full telemetry suite
on and renders one self-contained markdown or HTML artifact — heat
map, provenance table, audit summary, span tree, metric table, and an
environment fingerprint; ``report --check`` fails the command unless
the artifact's three independently accumulated flip totals agree (heat
map, provenance aggregates, ``dram_bit_flips_total``).

Live telemetry: ``run``/``sweep`` take ``--serve-metrics [PORT]``,
which arms worker→parent metric streaming and serves a Prometheus
``/metrics`` endpoint *while the batch runs* — live hardware counters
folded from in-flight jobs plus sweep progress gauges (jobs by state,
retries, ETA, per-worker heartbeat ages), all labeled with the sweep's
``run_id``; ``sweep --live`` repaints a top(1)-style progress view on
stderr from the same event stream.  ``ledger diff RUN_A RUN_B`` (two
run-ID refs) joins the two runs' records on ``job_id`` instead of
diffing single records positionally.

Hardened execution: ``run``/``sweep`` take ``--timeout`` (per-job
wall-clock deadline → structured ``timeout`` outcome) and ``--retries``
(deterministic backoff for transient failures); ``sweep`` checkpoints
completed jobs (``--checkpoint``/``--no-checkpoint``) and ``--resume``
restores them, so an interrupted sweep picks up where it left off.
Exit codes: 0 all jobs ok, 1 one or more jobs failed/timed out, 2 usage
error, 130 interrupted (completed results flushed to cache/checkpoint).
``chaos`` runs the fault-injection scenario suite
(:mod:`repro.chaos.harness`) proving those recovery paths.

Experiment service: ``serve`` runs the crash-tolerant daemon
(:mod:`repro.service`) — journaled HTTP job submission, graceful
SIGTERM/SIGINT drain (exit 0), SIGKILL-and-restart resume on the same
``--state-dir``; ``submit``/``jobs`` are its client verbs.  CLI sweeps
get the same drain contract: SIGTERM checkpoints completed jobs and
exits 143 with a resume hint (SIGINT stays 130).

Sanitizer: ``run``/``sweep`` take ``--sanitize {off,cheap,full}``
(runtime invariant checks, see :mod:`repro.sanitizer`) and
``--capture-dir`` (where failed jobs leave replayable failure bundles);
``repro replay BUNDLE`` re-executes a captured failure under the
bundle's recorded knobs and compares failure digests.  ``replay`` exit
codes: 0 the failure reproduced with the identical digest, 3 it did
not reproduce (clean run or a different failure), 2 the file is not a
readable bundle.

Seed handling is introspected from each experiment's registered
signature — an exception raised *inside* an experiment always
propagates with its traceback instead of being silently retried
without a seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    Job,
    execute_job,
    registry,
    to_jsonable,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as telem

#: Default on-disk result cache for ``sweep`` (created in the CWD).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default metrics-snapshot file shared by ``run --metrics`` and ``stats``.
DEFAULT_METRICS_PATH = ".repro-metrics.json"

#: Default physics-snapshot file shared by ``run --physics`` and ``stats``.
DEFAULT_PHYSICS_PATH = ".repro-physics.json"

#: Default state directory shared by ``serve``/``submit``/``jobs``.
DEFAULT_STATE_DIR = ".repro-service"


def _render_text(result: Any, indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    jsonable = to_jsonable(result)
    if isinstance(jsonable, dict):
        for key, value in jsonable.items():
            if isinstance(value, (dict, list)) and value and not _is_flat(value):
                lines.append(f"{pad}{key}:")
                lines.extend(_render_text(value, indent + 1))
            else:
                lines.append(f"{pad}{key}: {value}")
    elif isinstance(jsonable, list):
        for item in jsonable:
            if isinstance(item, (dict, list)):
                lines.append(f"{pad}-")
                lines.extend(_render_text(item, indent + 1))
            else:
                lines.append(f"{pad}- {item}")
    else:
        lines.append(f"{pad}{jsonable}")
    return lines


def _is_flat(value: Any) -> bool:
    if isinstance(value, dict):
        return all(not isinstance(v, (dict, list)) for v in value.values())
    if isinstance(value, list):
        return all(not isinstance(v, (dict, list)) for v in value) and len(value) <= 12
    return True


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of the RowHammer DATE 2017 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    invocable = sorted(registry.invocable_names())

    list_cmd = sub.add_parser("list", help="list available experiments")
    list_cmd.add_argument("--tag", default=None, help="only experiments carrying this tag")
    list_cmd.add_argument("--format", choices=("text", "markdown"), default="text",
                          help="markdown emits the EXPERIMENTS.md index table")

    describe = sub.add_parser("describe", help="show an experiment's claim, params, docstring")
    describe.add_argument("name", choices=invocable)

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("names", nargs="+", choices=invocable, metavar="name")
    run.add_argument("--seed", type=int, default=0, help="experiment seed")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run.add_argument("--record", action="store_true",
                     help="emit the full ExperimentResult (payload + provenance)")
    run.add_argument("--parallel", type=int, default=1, metavar="N",
                     help="fan out over N worker processes")
    run.add_argument("--cache-dir", default=None,
                     help="enable the on-disk result cache rooted here")
    run.add_argument("--metrics", action="store_true",
                     help="collect hardware telemetry and persist the snapshot")
    run.add_argument("--metrics-out", default=DEFAULT_METRICS_PATH,
                     help=f"metrics snapshot file (default: {DEFAULT_METRICS_PATH})")
    run.add_argument("--physics", action="store_true",
                     help="collect the physics layer (per-row heat maps, flip "
                          "provenance, mitigation audit) and persist it")
    run.add_argument("--physics-out", default=DEFAULT_PHYSICS_PATH,
                     help=f"physics snapshot file (default: {DEFAULT_PHYSICS_PATH})")
    run.add_argument("--timeout", type=float, default=None, metavar="SECS",
                     help="per-job wall-clock deadline (structured timeout "
                          "outcome instead of a hang)")
    run.add_argument("--retries", type=int, default=0, metavar="N",
                     help="retry budget for transient job failures "
                          "(default 0: strict determinism)")
    _add_serve_metrics_arg(run)
    _add_sanitize_args(run)

    report = sub.add_parser(
        "report",
        help="run experiments with full telemetry, write a self-contained "
             "report artifact (heat map, flip provenance, mitigation audit, "
             "span tree, metrics, environment fingerprint)")
    report.add_argument("names", nargs="+", choices=invocable, metavar="name")
    report.add_argument("--seed", type=int, default=0,
                        help="seed for single-seed reports (default 0)")
    report.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="sweep each experiment over N deterministically "
                             "derived seeds instead of one --seed")
    report.add_argument("--base-seed", type=int, default=0,
                        help="root of the --seeds derivation")
    report.add_argument("--output", default="report.md",
                        help="artifact file to write (default: report.md)")
    report.add_argument("--format", choices=("markdown", "html"), default=None,
                        help="artifact format (default: by --output extension)")
    report.add_argument("--check", action="store_true",
                        help="fail unless the artifact's flip totals agree "
                             "across the heat map, the provenance table, and "
                             "dram_bit_flips_total")
    report.add_argument("--parallel", type=int, default=1, metavar="N")
    report.add_argument("--cache-dir", default=None)
    _add_sanitize_args(report)

    sweep = sub.add_parser(
        "sweep", help="run one experiment across N deterministically derived seeds"
    )
    sweep.add_argument("name", choices=invocable)
    sweep.add_argument("--seeds", type=int, default=8, metavar="N",
                       help="number of seeds to derive and run")
    sweep.add_argument("--base-seed", type=int, default=0,
                       help="root of the deterministic seed derivation")
    sweep.add_argument("--parallel", type=int, default=1, metavar="N")
    sweep.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"on-disk result cache (default: {DEFAULT_CACHE_DIR})")
    sweep.add_argument("--no-cache", action="store_true", help="disable the result cache")
    sweep.add_argument("--json", action="store_true",
                       help="emit the full result records as JSON")
    sweep.add_argument("--metrics", action="store_true",
                       help="collect hardware telemetry and persist the snapshot")
    sweep.add_argument("--metrics-out", default=DEFAULT_METRICS_PATH,
                       help=f"metrics snapshot file (default: {DEFAULT_METRICS_PATH})")
    sweep.add_argument("--physics", action="store_true",
                       help="collect the physics layer (per-row heat maps, "
                            "flip provenance, mitigation audit) and persist it")
    sweep.add_argument("--physics-out", default=DEFAULT_PHYSICS_PATH,
                       help=f"physics snapshot file (default: {DEFAULT_PHYSICS_PATH})")
    sweep.add_argument("--timeout", type=float, default=None, metavar="SECS",
                       help="per-job wall-clock deadline (structured timeout "
                            "outcome instead of a hang)")
    sweep.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry budget for transient job failures "
                            "(default 0: strict determinism)")
    sweep.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="sweep checkpoint file (default: "
                            "<cache-dir>/checkpoint.jsonl when the cache "
                            "is enabled)")
    sweep.add_argument("--no-checkpoint", action="store_true",
                       help="disable sweep checkpointing")
    sweep.add_argument("--resume", action="store_true",
                       help="restore completed jobs from the checkpoint "
                            "instead of re-running them")
    sweep.add_argument("--live", action="store_true",
                       help="repaint a live progress view (per-job state, "
                            "worker heartbeat ages, top spans) on stderr")
    _add_serve_metrics_arg(sweep)
    _add_sanitize_args(sweep)

    replay = sub.add_parser(
        "replay",
        help="re-execute a captured failure bundle and check it reproduces",
    )
    replay.add_argument("bundle",
                        help="failure bundle JSON written by a sanitizer/"
                             "capture-armed run (see --capture-dir)")
    replay.add_argument("--json", action="store_true",
                        help="emit the replay report as JSON")
    replay.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-job deadline for the replay (required to "
                             "reproduce JobTimeout bundles)")

    stats = sub.add_parser(
        "stats", help="render a metrics snapshot saved by run/sweep --metrics"
    )
    stats.add_argument("--input", default=DEFAULT_METRICS_PATH,
                       help=f"metrics snapshot file (default: {DEFAULT_METRICS_PATH})")
    stats.add_argument("--format", choices=("table", "json", "prometheus"),
                       default="table", help="output format")

    trace = sub.add_parser(
        "trace", help="run one experiment with event tracing, emit a JSONL trace"
    )
    trace.add_argument("name", choices=invocable)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", default="-",
                       help="JSONL destination ('-' = stdout)")
    trace.add_argument("--buffer", type=int, default=65536, metavar="N",
                       help="in-memory ring-buffer capacity (events)")
    trace.add_argument("--spill", default=None, metavar="PATH",
                       help="spill overflowing events to this JSONL file "
                            "instead of evicting the oldest")

    profile = sub.add_parser(
        "profile", help="run one experiment under the span profiler"
    )
    profile.add_argument("name", choices=invocable)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--json", action="store_true",
                         help="emit the profile snapshot as JSON")
    profile.add_argument("--folded", default=None, metavar="PATH",
                         help="also write flamegraph folded stacks "
                              "('-' = stdout instead of the tree)")

    ledger = sub.add_parser(
        "ledger", help="inspect the append-only run ledger"
    )
    ledger.add_argument("--path", default=None,
                        help="ledger file (default: $REPRO_LEDGER_PATH or "
                             "~/.cache/repro/ledger.jsonl)")
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_list = ledger_sub.add_parser("list", help="list recorded runs")
    ledger_list.add_argument("--limit", type=int, default=20, metavar="N",
                             help="show the most recent N records")
    ledger_list.add_argument("--name", default=None,
                             help="only records of this experiment")
    ledger_show = ledger_sub.add_parser("show", help="show one record")
    ledger_show.add_argument("ref", help="1-based index, negative index, or id prefix")
    ledger_diff = ledger_sub.add_parser("diff", help="compare two records")
    ledger_diff.add_argument("ref_a")
    ledger_diff.add_argument("ref_b")

    bench = sub.add_parser(
        "bench", help="run the bench-regression suite"
    )
    bench.add_argument("names", nargs="*", metavar="bench",
                       help="benches to run (default: the full suite)")
    bench.add_argument("--quick", action="store_true",
                       help="small parameterizations (CI-sized)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="report file (default: BENCH_<timestamp>.json)")
    bench.add_argument("--input", default=None, metavar="PATH",
                       help="compare/print a saved report instead of running")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff against a baseline report")
    bench.add_argument("--fail-on-regress", type=float, default=None,
                       metavar="PCT",
                       help="regression threshold in percent "
                            "(default 10; implies --compare must be set)")
    bench.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 (CI mode)")
    bench.add_argument("--json", action="store_true",
                       help="emit the report (and comparison) as JSON")
    bench.add_argument("--timeout", type=float, default=None, metavar="SECS",
                       help="per-bench wall-clock deadline (a bench past it "
                            "reports an error instead of hanging the suite)")

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run the fault-injection scenario suite against the "
             "hardened runner",
    )
    chaos_cmd.add_argument("scenarios", nargs="*", metavar="scenario",
                           help="scenarios to run (default: all); "
                                "see --list")
    chaos_cmd.add_argument("--list", action="store_true",
                           help="list available scenarios and exit")
    chaos_cmd.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="sweep size per scenario (defaults per "
                                "scenario; combined pins 16)")
    chaos_cmd.add_argument("--workers", type=int, default=4, metavar="N",
                           help="pool workers per scenario (default 4)")
    chaos_cmd.add_argument("--workdir", default=None, metavar="DIR",
                           help="scratch directory (kept for inspection; "
                                "default: a deleted tempdir)")
    chaos_cmd.add_argument("--keep", action="store_true",
                           help="keep the scratch tempdir for inspection")
    chaos_cmd.add_argument("--json", action="store_true",
                           help="emit scenario outcomes as JSON")

    serve = sub.add_parser(
        "serve",
        help="run the crash-tolerant experiment service daemon "
             "(journaled jobs, graceful drain, /metrics)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="PORT",
                       help="listen port (default: 9465; 0 = ephemeral, "
                            "the bound port lands in service.json)")
    serve.add_argument("--state-dir", default=DEFAULT_STATE_DIR, metavar="DIR",
                       help="journal/ledger/cache/checkpoint root "
                            f"(default: {DEFAULT_STATE_DIR}); restart on the "
                            "same dir to resume interrupted work")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="runner pool width per job (default 2)")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="queued-job bound before submissions shed "
                            "with 429 (default 64)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECS",
                       help="default per-job wall-clock deadline")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="default retry budget for transient failures")
    serve.add_argument("--max-concurrent", type=int, default=1, metavar="N",
                       help="submissions executing at once, round-robin by "
                            "chunk, each its own fault domain (default 1: "
                            "serialized)")
    serve.add_argument("--lock-stale", type=float, default=None,
                       metavar="SECS",
                       help="takeover bound for a dead sibling daemon's "
                            "submission locks (default 10)")
    serve.add_argument("--rescan", type=float, default=None, metavar="SECS",
                       help="journal rescan cadence for discovering sibling "
                            "daemons' submissions (default 2; 0 disables)")

    submit = sub.add_parser(
        "submit", help="submit an experiment or seed sweep to a running "
                       "service")
    submit.add_argument("name", choices=invocable)
    submit.add_argument("--seed", type=int, default=0,
                        help="seed for a single-experiment job")
    submit.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="submit a sweep over N derived seeds instead")
    submit.add_argument("--base-seed", type=int, default=0,
                        help="root of the sweep's seed derivation")
    submit.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="experiment parameter (JSON value or string; "
                             "repeatable)")
    submit.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-job deadline for this submission")
    submit.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry budget for this submission")
    submit.add_argument("--url", default=None,
                        help="service URL (default: read from the "
                             "--state-dir's service.json)")
    submit.add_argument("--state-dir", default=DEFAULT_STATE_DIR, metavar="DIR",
                        help="state dir whose daemon to target "
                             f"(default: {DEFAULT_STATE_DIR})")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job settles; exit 0 iff done")
    submit.add_argument("--wait-timeout", type=float, default=300.0,
                        metavar="SECS", help="--wait deadline (default 300)")
    submit.add_argument("--json", action="store_true",
                        help="emit the service's response as JSON")

    jobs_cmd = sub.add_parser(
        "jobs", help="list, inspect, or cancel jobs on a running service")
    jobs_cmd.add_argument("sid", nargs="?", default=None,
                          help="job ID to inspect (default: list all)")
    jobs_cmd.add_argument("--cancel", action="store_true",
                          help="cancel the given job (cooperative)")
    jobs_cmd.add_argument("--url", default=None,
                          help="service URL (default: read from the "
                               "--state-dir's service.json)")
    jobs_cmd.add_argument("--state-dir", default=DEFAULT_STATE_DIR,
                          metavar="DIR",
                          help="state dir whose daemon to target "
                               f"(default: {DEFAULT_STATE_DIR})")
    jobs_cmd.add_argument("--json", action="store_true",
                          help="emit records as JSON")

    test_module = sub.add_parser(
        "test-module",
        help="memtest-style RowHammer test of one simulated module",
    )
    test_module.add_argument("--manufacturer", choices=("A", "B", "C"), default="B")
    test_module.add_argument("--date", type=float, default=2013.0)
    test_module.add_argument("--seed", type=int, default=0)
    test_module.add_argument("--refresh-multiplier", type=float, default=1.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        index = registry.render_index(fmt=args.format) if args.tag is None else "\n".join(
            f"{spec.name}  {spec.claim}" for spec in registry.all_specs(tag=args.tag)
        )
        print(index)
        return 0
    if args.command == "describe":
        return _describe(args.name)
    if args.command == "run":
        return _run(args)
    if args.command == "report":
        return _report(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "replay":
        return _replay(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "profile":
        return _profile(args)
    if args.command == "ledger":
        return _ledger(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "jobs":
        return _jobs(args)
    if args.command == "test-module":
        return _test_module(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _describe(name: str) -> int:
    spec = registry.get(name)
    print(f"{spec.name}: {spec.claim}")
    meta = [f"section §{spec.section}"]
    if spec.aliases:
        meta.append("aliases: " + ", ".join(spec.aliases))
    if spec.tags:
        meta.append("tags: " + ", ".join(spec.tags))
    meta.append("seed: " + ("accepted" if spec.accepts_seed else "not taken"))
    print("  " + " · ".join(meta))
    if spec.params:
        print("  params:")
        for param in spec.params.values():
            annotation = f" ({param.annotation})" if param.annotation else ""
            desc = f" — {param.description}" if param.description else ""
            print(f"    {param.name}{annotation} = {param.default!r}{desc}")
    print()
    print(spec.doc)
    return 0


def _add_serve_metrics_arg(cmd: argparse.ArgumentParser) -> None:
    from repro.telemetry.export import DEFAULT_EXPORT_PORT

    cmd.add_argument("--serve-metrics", nargs="?", type=int, default=None,
                     const=DEFAULT_EXPORT_PORT, metavar="PORT",
                     help="serve live Prometheus /metrics on 127.0.0.1 "
                          f"while the batch runs (default port "
                          f"{DEFAULT_EXPORT_PORT}; 0 = ephemeral); arms "
                          "worker metric streaming")


def _serve_metrics(args, runner: ExperimentRunner):
    """Start the live exporter when ``--serve-metrics`` was given;
    returns the server (caller must ``stop()`` it) or ``None``.

    A busy (or otherwise unbindable) port degrades to a warning — the
    exporter is observability, not the experiment; the run proceeds
    without it.  ``--serve-metrics 0`` binds an ephemeral port; the
    resolved port is what the startup line prints.
    """
    if getattr(args, "serve_metrics", None) is None:
        return None
    from repro.telemetry.export import MetricsHTTPServer

    try:
        server = MetricsHTTPServer(runner.live_exposition,
                                   port=args.serve_metrics).start()
    except OSError as exc:
        print(f"warning: cannot serve metrics on port {args.serve_metrics} "
              f"({exc}); continuing without the live exporter",
              file=sys.stderr)
        return None
    print(f"serving metrics at {server.url}/metrics (run {runner.run_id})",
          file=sys.stderr)
    return server


def _add_sanitize_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--sanitize", choices=("off", "cheap", "full"),
                     default=None,
                     help="runtime invariant checks: cheap = O(1) "
                          "structural, full = +shadow-state scans "
                          "(default: $REPRO_SANITIZE or off)")
    cmd.add_argument("--capture-dir", default=None, metavar="DIR",
                     help="write replayable failure bundles here when a "
                          "job fails ('off' disables; default: "
                          ".repro-failures when the sanitizer is on)")


def _apply_sanitize(args) -> None:
    """Install ``--sanitize``/``--capture-dir`` through the environment,
    so forked pool workers inherit them alongside this process."""
    import os

    from repro.sanitizer import bundle as sanbundle
    from repro.sanitizer import runtime as sanit

    if getattr(args, "sanitize", None):
        os.environ[sanit.ENV_SANITIZE] = args.sanitize
        sanit.sync_from_env()
    if getattr(args, "capture_dir", None):
        os.environ[sanbundle.ENV_CAPTURE] = args.capture_dir


def _make_runner(parallel: int, cache_dir: Optional[str],
                 collect_metrics: bool = False,
                 collect_physics: bool = False,
                 **hardening) -> ExperimentRunner:
    return ExperimentRunner(cache_dir=cache_dir, max_workers=max(1, parallel),
                            collect_metrics=collect_metrics,
                            collect_physics=collect_physics, **hardening)


def _write_metrics_snapshot(runner: ExperimentRunner, path: str,
                            command: str, names: List[str]) -> None:
    """Persist the runner's merged metrics so ``repro stats`` can render
    them from a separate process."""
    import repro

    record = {
        "repro_version": repro.__version__,
        "command": command,
        "names": [registry.resolve(n) for n in names],
        "metrics": runner.metrics.snapshot(),
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
    print(f"metrics: {len(runner.metrics)} series -> {path}", file=sys.stderr)


def _write_physics_snapshot(runner: ExperimentRunner, path: str,
                            command: str, names: List[str]) -> None:
    """Persist the runner's merged physics layer.  The record carries
    both the full-resolution snapshot and its bank-level aggregates as
    a metrics snapshot, so ``repro stats --input <path> --format
    prometheus`` renders the physics families unchanged."""
    import repro

    record = {
        "repro_version": repro.__version__,
        "command": command,
        "names": [registry.resolve(n) for n in names],
        "physics": runner.physics.snapshot(),
        "metrics": runner.physics.to_registry().snapshot(),
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
    print(f"physics: {runner.physics.total_flips()} flips over "
          f"{len(record['physics']['heat'])} rows -> {path}", file=sys.stderr)


def _print_batch_errors(summary: dict) -> None:
    """Surface a batch's failed jobs on stderr (never silently dropped)."""
    for job in summary["errored"]:
        seed = "-" if job["seed"] is None else job["seed"]
        print(f"error: {job['name']} (seed {seed}): {job['error']}",
              file=sys.stderr)
    print(f"{summary['errors']}/{summary['jobs']} jobs failed", file=sys.stderr)


def _run(args) -> int:
    _apply_sanitize(args)
    stream = True if args.serve_metrics is not None else None
    runner = _make_runner(args.parallel, args.cache_dir, collect_metrics=args.metrics,
                          collect_physics=args.physics,
                          timeout_s=args.timeout, retries=args.retries,
                          stream=stream)
    jobs = [Job(name, {}, args.seed) for name in args.names]
    server = _serve_metrics(args, runner)
    try:
        results = runner.run(jobs)
    except KeyboardInterrupt:
        print("interrupted; completed results were flushed", file=sys.stderr)
        return 130
    finally:
        if server is not None:
            server.stop()
    for i, result in enumerate(results):
        body = result.to_json_dict() if args.record else result.payload
        if args.json:
            print(json.dumps(body, indent=2, default=repr))
        else:
            if len(results) > 1:
                if i:
                    print()
                print(f"== {result.name} ==")
            if result.error and not args.record:
                print(f"error: {result.error}")
            else:
                print("\n".join(_render_text(body)))
    if args.metrics:
        _write_metrics_snapshot(runner, args.metrics_out, "run", args.names)
    if args.physics:
        _write_physics_snapshot(runner, args.physics_out, "run", args.names)
    summary = runner.summary(results)
    if summary["errors"]:
        _print_batch_errors(summary)
        return 1
    return 0


def _format_provenance(result: ExperimentResult) -> str:
    seed = "-" if result.seed is None else result.seed
    cached = " · cache hit" if result.cache_hit else ""
    return (f"seed {seed} · {result.duration_s:.3f} s · "
            f"peak RSS {result.peak_rss_kb} KiB{cached}")


def _report_jobs(names: List[str], seed: int, seeds: Optional[int],
                 base_seed: int) -> List[Job]:
    """The report's job list: one ``--seed`` job per experiment, or a
    ``--seeds`` sweep per experiment (seedless experiments always run
    once)."""
    from repro.experiments.runner import derive_seed

    jobs: List[Job] = []
    for name in names:
        spec = registry.get(name)
        if seeds is not None and seeds > 0 and spec.accepts_seed:
            jobs.extend(Job(name, {}, derive_seed(base_seed, i))
                        for i in range(seeds))
        else:
            jobs.append(Job(name, {}, seed))
    return jobs


def _report(args) -> int:
    """Run experiments under the full telemetry suite and render one
    self-contained report artifact (see :mod:`repro.report`)."""
    from repro.report import check_report, render_report

    _apply_sanitize(args)
    fmt = args.format
    if fmt is None:
        fmt = "html" if args.output.endswith((".html", ".htm")) else "markdown"
    runner = _make_runner(args.parallel, args.cache_dir,
                          collect_metrics=True, collect_physics=True,
                          collect_profile=True)
    jobs = _report_jobs(args.names, args.seed, args.seeds, args.base_seed)
    try:
        results = runner.run(jobs)
    except KeyboardInterrupt:
        print("interrupted; completed results were flushed", file=sys.stderr)
        return 130
    text = render_report(results, physics=runner.physics,
                         metrics=runner.metrics, profile=runner.profile,
                         fmt=fmt)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({fmt}, {len(results)} job(s), "
          f"{runner.physics.total_flips()} flips)")
    summary = runner.summary(results)
    if summary["errors"]:
        _print_batch_errors(summary)
        return 1
    if args.check:
        problems = check_report(results, runner.physics, runner.metrics)
        for problem in problems:
            print(f"check: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("check: flip totals agree (heat map, provenance, "
              "dram_bit_flips_total)", file=sys.stderr)
    return 0


def _sweep_checkpoint_path(args, cache_dir: Optional[str]) -> Optional[str]:
    """Where the sweep checkpoint lives: explicit ``--checkpoint`` wins;
    otherwise it rides inside the cache directory (so ``--no-cache``
    without an explicit path means no checkpoint and no stray files)."""
    if args.no_checkpoint:
        return None
    if args.checkpoint is not None:
        return args.checkpoint
    if cache_dir is not None:
        import os.path

        return os.path.join(cache_dir, "checkpoint.jsonl")
    return None


def _sweep(args) -> int:
    _apply_sanitize(args)
    cache_dir = None if args.no_cache else args.cache_dir
    checkpoint = _sweep_checkpoint_path(args, cache_dir)
    if args.resume and checkpoint is None:
        print("error: --resume needs a checkpoint (drop --no-checkpoint, "
              "or pass --checkpoint PATH when using --no-cache)",
              file=sys.stderr)
        return 2
    renderer = None
    if args.live:
        from repro.telemetry.live import LiveRenderer

        renderer = LiveRenderer()
    stream = True if (args.serve_metrics is not None or args.live) else None
    runner = _make_runner(args.parallel, cache_dir, collect_metrics=args.metrics,
                          collect_physics=args.physics,
                          timeout_s=args.timeout, retries=args.retries,
                          checkpoint=checkpoint, resume=args.resume,
                          stream=stream, collect_profile=args.live,
                          on_progress=renderer.update if renderer else None)
    server = _serve_metrics(args, runner)
    # SIGTERM drains exactly like Ctrl-C: the runner's interrupt path
    # flushes completed results to cache/checkpoint, and we exit with
    # the conventional 143 so a supervisor can tell drain from abort.
    import signal
    import threading

    drained_by = {}

    def _sigterm_drain(signum, frame):
        drained_by["signal"] = "SIGTERM"
        raise KeyboardInterrupt

    prev_sigterm = None
    if threading.current_thread() is threading.main_thread():
        prev_sigterm = signal.signal(signal.SIGTERM, _sigterm_drain)
    try:
        results = runner.sweep(args.name, seeds=args.seeds, base_seed=args.base_seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        where = f"; resume with --resume (checkpoint: {checkpoint})" if checkpoint else ""
        label = ("terminated (graceful drain)" if drained_by
                 else "interrupted")
        print(f"{label}; completed results were flushed{where}", file=sys.stderr)
        return 143 if drained_by else 130
    finally:
        if prev_sigterm is not None:
            signal.signal(signal.SIGTERM, prev_sigterm)
        if server is not None:
            server.stop()
    if renderer is not None:
        renderer.finish(runner)
    if args.metrics:
        _write_metrics_snapshot(runner, args.metrics_out, "sweep", [args.name])
    if args.physics:
        _write_physics_snapshot(runner, args.physics_out, "sweep", [args.name])
    summary = runner.summary(results)
    if args.json:
        print(json.dumps([r.to_json_dict() for r in results], indent=2, default=repr))
        if summary["errors"]:
            _print_batch_errors(summary)
            return 1
        return 0
    name = registry.resolve(args.name)
    extra = ""
    if summary["timeouts"]:
        extra += f", {summary['timeouts']} timeouts"
    if summary["retries"]:
        extra += f", {summary['retries']} retries"
    if summary["pool_rebuilds"]:
        extra += f", {summary['pool_rebuilds']} pool rebuilds"
    print(f"sweep {name}: {len(results)} seeds from base {args.base_seed} "
          f"({summary['cache_hits']} cache hits, {summary['errors']} errors{extra})")
    for result in results:
        suffix = f" · ERROR {result.error}" if result.error else ""
        print(f"  {_format_provenance(result)}{suffix}")
    if cache_dir is not None:
        print(f"cache: {cache_dir}")
    if summary["errors"]:
        _print_batch_errors(summary)
        return 1
    return 0


def _serve(args) -> int:
    """Run the experiment service daemon until a drain completes.

    SIGTERM/SIGINT initiate a graceful drain: admission stops (503),
    the in-flight chunk finishes and checkpoints, queued jobs stay
    journaled for the next incarnation, and the process exits 0.
    """
    from repro.service import ExperimentService
    from repro.service.daemon import DEFAULT_RESCAN_S, DEFAULT_SERVICE_PORT
    from repro.utils.locks import DEFAULT_STALE_AFTER_S

    port = DEFAULT_SERVICE_PORT if args.port is None else args.port
    service = ExperimentService(
        args.state_dir, host=args.host, port=port,
        workers=args.workers,
        max_queue=args.max_queue,
        timeout_s=args.timeout, retries=args.retries,
        max_concurrent=args.max_concurrent,
        lock_stale_s=(DEFAULT_STALE_AFTER_S if args.lock_stale is None
                      else args.lock_stale),
        rescan_s=DEFAULT_RESCAN_S if args.rescan is None else args.rescan)
    try:
        service.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    service.install_signal_handlers()
    recovered = sum(1 for rec in service.jobs.values()
                    if rec.state == "queued")
    resumed = f", {recovered} journaled job(s) re-enqueued" if recovered else ""
    print(f"repro service {service.service_id} listening on {service.url} "
          f"(state: {service.state_dir}{resumed})", file=sys.stderr)
    code = service.serve_forever()
    print(f"repro service {service.service_id} drained; exiting",
          file=sys.stderr)
    return code


def _service_client(args):
    from repro.service import ServiceClient

    if args.url:
        return ServiceClient(args.url)
    return ServiceClient.from_state_dir(args.state_dir)


def _parse_params(pairs: List[str]) -> dict:
    """``--param KEY=VALUE`` pairs; values parse as JSON, else strings."""
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--param wants KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def _submit(args) -> int:
    from repro.service import ServiceError, ServiceTimeout

    payload: dict = {"name": args.name}
    try:
        params = _parse_params(args.param)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if params:
        payload["params"] = params
    if args.seeds is not None:
        payload["seeds"] = args.seeds
        payload["base_seed"] = args.base_seed
    else:
        payload["seed"] = args.seed
    if args.timeout is not None:
        payload["timeout_s"] = args.timeout
    if args.retries:
        payload["retries"] = args.retries
    try:
        client = _service_client(args)
        response = client.submit(payload)
        if args.wait:
            response = client.wait(response["sid"],
                                   timeout_s=args.wait_timeout)
    except (ServiceTimeout, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    else:
        dup = " (duplicate: already submitted)" if response.get("duplicate") \
            else ""
        print(f"job {response['sid']} [{response.get('kind')}] "
              f"{response.get('name')}: {response.get('state')}{dup}")
        summary = response.get("summary")
        if summary:
            print(f"  {summary.get('jobs', 0)} job(s), "
                  f"{summary.get('errors', 0)} error(s), "
                  f"{summary.get('cache_hits', 0)} cache hit(s), "
                  f"{summary.get('duration_s', 0.0):.3f} s")
        if response.get("error"):
            print(f"  error: {response['error']}")
    if args.wait:
        return 0 if response.get("state") == "done" else 1
    return 0


def _jobs(args) -> int:
    from repro.service import ServiceError

    try:
        client = _service_client(args)
        if args.sid is None:
            if args.cancel:
                print("error: --cancel needs a job ID", file=sys.stderr)
                return 2
            records = client.jobs()
            if args.json:
                print(json.dumps(records, indent=2, sort_keys=True))
                return 0
            if not records:
                print("(no jobs)")
                return 0
            print(f"{'sid':<14}{'kind':<12}{'name':<28}{'state':<14}progress")
            for rec in records:
                print(f"{rec['sid']:<14}{rec.get('kind', '?'):<12}"
                      f"{rec.get('name', '?'):<28}{rec.get('state'):<14}"
                      f"{rec.get('completed', 0)}/{rec.get('jobs', '?')}")
            return 0
        record = (client.cancel(args.sid) if args.cancel
                  else client.job(args.sid))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _replay(args) -> int:
    """Re-execute a captured failure bundle; exit 0 iff it reproduces.

    Exit codes: 0 = reproduced (identical failure digest), 3 = did not
    reproduce (clean rerun or a different failure), 2 = the file is not
    a readable bundle.
    """
    from repro.sanitizer.bundle import BundleError, load_bundle, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
    except BundleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = replay_bundle(bundle, timeout_s=args.timeout)
    if args.json:
        body = report.to_json_dict()
        body["bundle"] = args.bundle
        body["name"] = bundle["name"]
        body["seed"] = bundle.get("seed")
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        seed = "-" if bundle.get("seed") is None else bundle["seed"]
        print(f"replay {bundle['name']} (seed {seed}) from {args.bundle}")
        print(f"  captured: {bundle.get('error')}")
        print(f"  replayed: {report.result.error or 'ok (no failure)'}")
        verdict = "reproduced" if report.reproduced else "did NOT reproduce"
        print(f"  digest: expected {report.expected_digest}, "
              f"got {report.digest} -> {verdict}")
    return 0 if report.reproduced else 3


def _stats(args) -> int:
    """Render a metrics snapshot saved by ``run``/``sweep --metrics``."""
    try:
        with open(args.input) as handle:
            record = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read metrics snapshot {args.input!r}: {exc}\n"
              f"hint: produce one with `repro run <experiment> --metrics`",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.input!r} is not a metrics snapshot: {exc}", file=sys.stderr)
        return 2
    snapshot = record.get("metrics", record)  # accept bare snapshots too
    reg = MetricsRegistry.from_snapshot(snapshot)
    if args.format == "json":
        print(json.dumps(record, indent=2, sort_keys=True))
    elif args.format == "prometheus":
        sys.stdout.write(reg.render_prometheus())
    else:
        names = record.get("names")
        if names:
            print(f"# {record.get('command', 'run')}: {', '.join(names)} "
                  f"(repro {record.get('repro_version', '?')})")
        print(reg.render_table())
    return 0


def _trace(args) -> int:
    """Run one experiment with event tracing on; emit the JSONL trace."""
    try:
        recorder = telem.enable_tracing(capacity=args.buffer, spill_path=args.spill,
                                        fresh=True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        execute_job(args.name, seed=args.seed)
    finally:
        telem.disable_tracing()
    kinds_by_count = recorder.counts_by_kind()
    if args.spill is not None:
        recorder.flush()
        written = recorder.spilled
        destination = args.spill
    elif args.output == "-":
        written = recorder.write_jsonl(sys.stdout)
        destination = "stdout"
    else:
        written = recorder.dump_jsonl(args.output)
        destination = args.output
    kinds = ", ".join(f"{kind}={count}" for kind, count
                      in kinds_by_count.items()) or "none"
    print(f"trace {registry.resolve(args.name)}: {recorder.emitted} events "
          f"({kinds}); {recorder.dropped} dropped; wrote {written} -> {destination}",
          file=sys.stderr)
    return 0


def _profile(args) -> int:
    """Run one experiment under the span profiler; render the tree."""
    from repro.telemetry import SpanProfile

    result = execute_job(args.name, seed=args.seed, collect_profile=True)
    profile = SpanProfile.from_snapshot(result.profile or {})
    if args.json:
        print(json.dumps({
            "name": result.name,
            "seed": result.seed,
            "duration_s": result.duration_s,
            "coverage_s": profile.total_s(),
            "profile": result.profile,
        }, indent=2, sort_keys=True))
        return 0
    if args.folded is not None:
        folded = profile.render_folded()
        if args.folded == "-":
            sys.stdout.write(folded)
        else:
            with open(args.folded, "w") as handle:
                handle.write(folded)
            print(f"wrote folded stacks -> {args.folded}", file=sys.stderr)
            print(profile.render_tree())
        return 0
    coverage = profile.total_s()
    pct = 100.0 * coverage / result.duration_s if result.duration_s > 0 else 0.0
    print(f"# {result.name} · seed {result.seed} · {result.duration_s:.3f} s "
          f"wall · spans cover {coverage:.3f} s ({pct:.1f}%)")
    print(profile.render_tree())
    return 0


def _open_ledger(args):
    from repro.telemetry import ledger as ledger_mod

    if args.path is not None:
        return ledger_mod.RunLedger(args.path)
    return ledger_mod.RunLedger(ledger_mod.ledger_path())


def _warn_corrupt_lines(book) -> None:
    if book.corrupt_lines:
        print(f"warning: skipped {book.corrupt_lines} corrupt ledger "
              f"line(s) in {book.path}", file=sys.stderr)


def _ledger(args) -> int:
    """Inspect the append-only run ledger."""
    book = _open_ledger(args)
    if args.ledger_command == "list":
        records = book.records()
        _warn_corrupt_lines(book)
        if args.name is not None:
            records = [r for r in records if r.get("name") == args.name]
        if not records:
            print(f"(ledger {book.path} is empty)")
            return 0
        total = len(records)
        start = max(0, total - args.limit)
        print(f"# {book.path} · {total} records (showing {total - start})")
        for offset, record in enumerate(records[start:], start=start + 1):
            status = "ok" if record.get("ok", True) else "ERR"
            cached = " cache" if record.get("cache_hit") else ""
            seed = record.get("seed")
            seed_s = "-" if seed is None else seed
            print(f"{offset:>4}  {record.get('id', '?'):<12}  "
                  f"{record.get('time', '?'):<24}  {status:<3} "
                  f"{record.get('name', '?')}  seed {seed_s}  "
                  f"{record.get('duration_s', 0.0):.3f} s{cached}")
        return 0
    if args.ledger_command == "show":
        record = book.find(args.ref)
        _warn_corrupt_lines(book)
        if record is None:
            print(f"error: no ledger record matching {args.ref!r} in {book.path}",
                  file=sys.stderr)
            return 2
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if args.ledger_command == "diff":
        records = book.records()
        _warn_corrupt_lines(book)
        rid_a, runs_a = _run_records(records, args.ref_a)
        rid_b, runs_b = _run_records(records, args.ref_b)
        if rid_a and rid_b:
            return _ledger_run_diff(rid_a, runs_a, rid_b, runs_b)
        rec_a = book.find(args.ref_a)
        rec_b = book.find(args.ref_b)
        for ref, rec in ((args.ref_a, rec_a), (args.ref_b, rec_b)):
            if rec is None:
                print(f"error: no ledger record matching {ref!r} in {book.path}",
                      file=sys.stderr)
                return 2
        return _ledger_diff(rec_a, rec_b)
    raise AssertionError(args.ledger_command)  # pragma: no cover


def _run_records(records: List[dict], ref: str):
    """Resolve a ref as a run: ``(run_id, its records)`` when the ref
    prefix-matches exactly one recorded ``run_id``, else ``(None, [])``."""
    run_ids = sorted({str(r.get("run_id")) for r in records if r.get("run_id")})
    matches = [rid for rid in run_ids if rid.startswith(ref)]
    if len(matches) != 1:
        return None, []
    rid = matches[0]
    return rid, [r for r in records if r.get("run_id") == rid]


def _ledger_run_diff(rid_a: str, recs_a: List[dict],
                     rid_b: str, recs_b: List[dict]) -> int:
    """Join two runs' records on ``job_id`` and diff each pair.

    The ``job_id`` is derived from (name, params, seed), so the join
    pairs *the same job* across the runs regardless of completion
    order — no positional matching.  Last record wins per job (a
    retried job's final ledger line is the one that counts).
    """
    by_a = {r["job_id"]: r for r in recs_a if r.get("job_id")}
    by_b = {r["job_id"]: r for r in recs_b if r.get("job_id")}
    print(f"a: run {rid_a} · {len(recs_a)} records")
    print(f"b: run {rid_b} · {len(recs_b)} records")
    shared = sorted(set(by_a) & set(by_b))
    differing = 0
    for jid in shared:
        ra, rb = by_a[jid], by_b[jid]
        same = (ra.get("payload_digest") == rb.get("payload_digest")
                and ra.get("ok") == rb.get("ok"))
        if not same:
            differing += 1
        da, db = ra.get("duration_s", 0.0), rb.get("duration_s", 0.0)
        delta = f" ({100.0 * (db - da) / da:+.1f}%)" if da else ""
        seed = ra.get("seed")
        verdict = "identical" if same else "DIFFERENT"
        print(f"{'  ' if same else '! '}{jid}  {ra.get('name')}  "
              f"seed {'-' if seed is None else seed}  payload {verdict}  "
              f"{da:.3f}s -> {db:.3f}s{delta}")
    for jid in sorted(set(by_a) - set(by_b)):
        print(f"! {jid}  only in a  ({by_a[jid].get('name')} "
              f"seed {by_a[jid].get('seed')})")
    for jid in sorted(set(by_b) - set(by_a)):
        print(f"! {jid}  only in b  ({by_b[jid].get('name')} "
              f"seed {by_b[jid].get('seed')})")
    print(f"{len(shared)} job(s) joined on job_id, "
          f"{differing} differing")
    return 0


def _ledger_diff(rec_a: dict, rec_b: dict) -> int:
    """Print a field-by-field comparison of two ledger records."""
    for side, rec in (("a", rec_a), ("b", rec_b)):
        run = rec.get("run_id") or "-"
        job = rec.get("job_id") or "-"
        print(f"{side}: {rec.get('id')}  {rec.get('time')}  {rec.get('name')}  "
              f"run {run}  job {job}")
    for key in ("job_id", "name", "seed", "params", "git_sha",
                "repro_version", "ok"):
        va, vb = rec_a.get(key), rec_b.get(key)
        marker = "  " if va == vb else "! "
        print(f"{marker}{key}: {va!r} -> {vb!r}")
    da, db = rec_a.get("duration_s", 0.0), rec_b.get("duration_s", 0.0)
    delta = f" ({100.0 * (db - da) / da:+.1f}%)" if da else ""
    print(f"  duration_s: {da:.3f} -> {db:.3f}{delta}")
    same_payload = rec_a.get("payload_digest") == rec_b.get("payload_digest")
    print(f"{'  ' if same_payload else '! '}payload: "
          f"{'identical' if same_payload else 'DIFFERENT'} "
          f"({rec_a.get('payload_digest')} vs {rec_b.get('payload_digest')})")
    totals_a = rec_a.get("metrics_totals") or {}
    totals_b = rec_b.get("metrics_totals") or {}
    moved = {k for k in set(totals_a) | set(totals_b)
             if totals_a.get(k, 0) != totals_b.get(k, 0)}
    if moved:
        print("! metrics moved:")
        for key in sorted(moved):
            print(f"!   {key}: {totals_a.get(key, 0):g} -> {totals_b.get(key, 0):g}")
    elif totals_a or totals_b:
        print("  metrics totals: identical")
    return 0


def _bench(args) -> int:
    """Run (or load) the bench suite; optionally gate on a baseline."""
    from repro import bench as bench_mod

    threshold = args.fail_on_regress
    if threshold is not None and args.compare is None:
        print("error: --fail-on-regress requires --compare", file=sys.stderr)
        return 2
    if args.input is not None:
        try:
            report = bench_mod.load_report(args.input)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            report = bench_mod.run_suite(args.names or None, quick=args.quick,
                                         timeout_s=args.timeout)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out = bench_mod.write_report(report, args.out)
        print(f"wrote {out}", file=sys.stderr)

    comparison = None
    if args.compare is not None:
        try:
            baseline = bench_mod.load_report(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        comparison = bench_mod.compare_reports(
            report, baseline,
            threshold_pct=threshold if threshold is not None
            else bench_mod.DEFAULT_REGRESS_PCT,
        )
        for mismatch in comparison.get("fingerprint_mismatches", ()):
            print(f"warning: environment fingerprint mismatch on "
                  f"{mismatch['field']!r}: baseline {mismatch['baseline']!r} "
                  f"vs current {mismatch['current']!r} — wall-time deltas "
                  f"compare environments, not code", file=sys.stderr)

    if args.json:
        body = {"report": report}
        if comparison is not None:
            body["comparison"] = comparison
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        print(f"{'bench':<22}  {'wall':>10}  {'throughput':>16}")
        for bench in report["benches"]:
            if bench.get("error"):
                print(f"{bench['name']:<22}  {bench['wall_s']:>9.3f}s  "
                      f"{'TIMED OUT':>16}")
                continue
            tput = (f"{bench['throughput']:,.0f} {bench['unit']}/s"
                    if bench.get("throughput") else "-")
            print(f"{bench['name']:<22}  {bench['wall_s']:>9.3f}s  {tput:>16}")
        if comparison is not None:
            print(f"\nvs baseline (threshold {comparison['threshold_pct']:g}%):")
            for row in comparison["rows"]:
                if row["note"]:
                    print(f"  {row['name']:<22}  ({row['note']})")
                    continue
                flag = "  REGRESSED" if row["regressed"] else ""
                print(f"  {row['name']:<22}  {row['base_wall_s']:.3f}s -> "
                      f"{row['wall_s']:.3f}s  ({row['delta_pct']:+.1f}%){flag}")

    timed_out = [b["name"] for b in report["benches"] if b.get("error")]
    if timed_out:
        print(f"timed out: {', '.join(timed_out)}", file=sys.stderr)
        return 0 if args.warn_only else 1
    if comparison is not None and not comparison["ok"]:
        names = ", ".join(comparison["regressions"])
        print(f"regression: {names}", file=sys.stderr)
        return 0 if args.warn_only else 1
    return 0


def _chaos(args) -> int:
    """Run the fault-injection scenario suite; exit 1 on any failed check."""
    from pathlib import Path

    from repro.chaos import harness

    if args.list:
        for name, (fn, default_jobs) in harness.SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().split("\n")[0]
            print(f"{name:<10} ({default_jobs} jobs)  {doc}")
        return 0
    try:
        outcomes = harness.run_suite(
            args.scenarios or None,
            workdir=Path(args.workdir) if args.workdir else None,
            jobs=args.jobs,
            workers=max(2, args.workers),
            keep=args.keep,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([
            {"name": o.name, "passed": o.passed,
             "checks": [{"label": c.label, "ok": c.ok, "observed": c.observed}
                        for c in o.checks]}
            for o in outcomes
        ], indent=2))
    else:
        for outcome in outcomes:
            status = "PASS" if outcome.passed else "FAIL"
            print(f"{status}  {outcome.name} "
                  f"({sum(c.ok for c in outcome.checks)}/{len(outcome.checks)} checks)")
            for check in outcome.checks:
                if not check.ok:
                    print(f"      FAIL {check.label}: {check.observed}")
    failed = [o.name for o in outcomes if not o.passed]
    if failed:
        print(f"chaos: recovery FAILED in {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"chaos: {len(outcomes)} scenario(s) recovered clean", file=sys.stderr)
    return 0


def _test_module(args) -> int:
    """memtest-style RowHammer test of one simulated module (§II's [80])."""
    from repro.dram.module import DramModule
    from repro.dram.timing import DDR3_1066
    from repro.fieldstudy.campaign import whole_module_errors

    module = DramModule.from_vintage(
        args.manufacturer, args.date, serial="cli-dut", seed=args.seed, timing=DDR3_1066
    )
    result = whole_module_errors(module, refresh_multiplier=args.refresh_multiplier)
    print(f"module: manufacturer {args.manufacturer}, date {args.date}, "
          f"refresh x{args.refresh_multiplier:g}")
    print(f"activation budget per victim: {result.budget}")
    print(f"errors: {result.errors} ({result.errors_per_billion:.3g} per 10^9 cells)")
    print("VULNERABLE to RowHammer" if result.vulnerable else "no RowHammer errors observed")
    return 1 if result.vulnerable else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
