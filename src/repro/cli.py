"""Command-line front end: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run fig1_error_rates --seed 0
    python -m repro run c3 c4 c5 --parallel 3 --json
    python -m repro describe para_reliability
    python -m repro report f1 c3 --output report.md
    python -m repro sweep fig1_error_rates --seeds 8 --parallel 4

Experiments resolve by registry name *or* legacy alias (``f1``,
``c2``…) through :mod:`repro.experiments`.  Results print as text
tables, or as JSON with ``--json``; ``--record`` wraps the payload in
its full :class:`~repro.experiments.result.ExperimentResult` provenance
(seed, params, duration, peak RSS, version, cache hit).

Seed handling is introspected from each experiment's registered
signature — an exception raised *inside* an experiment always
propagates with its traceback instead of being silently retried
without a seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    Job,
    registry,
    to_jsonable,
)

#: Default on-disk result cache for ``sweep`` (created in the CWD).
DEFAULT_CACHE_DIR = ".repro-cache"


def _render_text(result: Any, indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    jsonable = to_jsonable(result)
    if isinstance(jsonable, dict):
        for key, value in jsonable.items():
            if isinstance(value, (dict, list)) and value and not _is_flat(value):
                lines.append(f"{pad}{key}:")
                lines.extend(_render_text(value, indent + 1))
            else:
                lines.append(f"{pad}{key}: {value}")
    elif isinstance(jsonable, list):
        for item in jsonable:
            if isinstance(item, (dict, list)):
                lines.append(f"{pad}-")
                lines.extend(_render_text(item, indent + 1))
            else:
                lines.append(f"{pad}- {item}")
    else:
        lines.append(f"{pad}{jsonable}")
    return lines


def _is_flat(value: Any) -> bool:
    if isinstance(value, dict):
        return all(not isinstance(v, (dict, list)) for v in value.values())
    if isinstance(value, list):
        return all(not isinstance(v, (dict, list)) for v in value) and len(value) <= 12
    return True


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of the RowHammer DATE 2017 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    invocable = sorted(registry.invocable_names())

    list_cmd = sub.add_parser("list", help="list available experiments")
    list_cmd.add_argument("--tag", default=None, help="only experiments carrying this tag")
    list_cmd.add_argument("--format", choices=("text", "markdown"), default="text",
                          help="markdown emits the EXPERIMENTS.md index table")

    describe = sub.add_parser("describe", help="show an experiment's claim, params, docstring")
    describe.add_argument("name", choices=invocable)

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("names", nargs="+", choices=invocable, metavar="name")
    run.add_argument("--seed", type=int, default=0, help="experiment seed")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run.add_argument("--record", action="store_true",
                     help="emit the full ExperimentResult (payload + provenance)")
    run.add_argument("--parallel", type=int, default=1, metavar="N",
                     help="fan out over N worker processes")
    run.add_argument("--cache-dir", default=None,
                     help="enable the on-disk result cache rooted here")

    report = sub.add_parser("report", help="run several experiments, write a markdown report")
    report.add_argument("names", nargs="+", choices=invocable, metavar="name")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", default="report.md", help="markdown file to write")
    report.add_argument("--parallel", type=int, default=1, metavar="N")
    report.add_argument("--cache-dir", default=None)

    sweep = sub.add_parser(
        "sweep", help="run one experiment across N deterministically derived seeds"
    )
    sweep.add_argument("name", choices=invocable)
    sweep.add_argument("--seeds", type=int, default=8, metavar="N",
                       help="number of seeds to derive and run")
    sweep.add_argument("--base-seed", type=int, default=0,
                       help="root of the deterministic seed derivation")
    sweep.add_argument("--parallel", type=int, default=1, metavar="N")
    sweep.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"on-disk result cache (default: {DEFAULT_CACHE_DIR})")
    sweep.add_argument("--no-cache", action="store_true", help="disable the result cache")
    sweep.add_argument("--json", action="store_true",
                       help="emit the full result records as JSON")

    test_module = sub.add_parser(
        "test-module",
        help="memtest-style RowHammer test of one simulated module",
    )
    test_module.add_argument("--manufacturer", choices=("A", "B", "C"), default="B")
    test_module.add_argument("--date", type=float, default=2013.0)
    test_module.add_argument("--seed", type=int, default=0)
    test_module.add_argument("--refresh-multiplier", type=float, default=1.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        index = registry.render_index(fmt=args.format) if args.tag is None else "\n".join(
            f"{spec.name}  {spec.claim}" for spec in registry.all_specs(tag=args.tag)
        )
        print(index)
        return 0
    if args.command == "describe":
        return _describe(args.name)
    if args.command == "run":
        return _run(args)
    if args.command == "report":
        return _write_report(args.names, args.seed, args.output,
                             parallel=args.parallel, cache_dir=args.cache_dir)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "test-module":
        return _test_module(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _describe(name: str) -> int:
    spec = registry.get(name)
    print(f"{spec.name}: {spec.claim}")
    meta = [f"section §{spec.section}"]
    if spec.aliases:
        meta.append("aliases: " + ", ".join(spec.aliases))
    if spec.tags:
        meta.append("tags: " + ", ".join(spec.tags))
    meta.append("seed: " + ("accepted" if spec.accepts_seed else "not taken"))
    print("  " + " · ".join(meta))
    if spec.params:
        print("  params:")
        for param in spec.params.values():
            annotation = f" ({param.annotation})" if param.annotation else ""
            desc = f" — {param.description}" if param.description else ""
            print(f"    {param.name}{annotation} = {param.default!r}{desc}")
    print()
    print(spec.doc)
    return 0


def _make_runner(parallel: int, cache_dir: Optional[str]) -> ExperimentRunner:
    return ExperimentRunner(cache_dir=cache_dir, max_workers=max(1, parallel))


def _run(args) -> int:
    runner = _make_runner(args.parallel, args.cache_dir)
    jobs = [Job(name, {}, args.seed) for name in args.names]
    results = runner.run(jobs)
    for i, result in enumerate(results):
        body = result.to_json_dict() if args.record else result.payload
        if args.json:
            print(json.dumps(body, indent=2, default=repr))
        else:
            if len(results) > 1:
                if i:
                    print()
                print(f"== {result.name} ==")
            print("\n".join(_render_text(body)))
    return 0


def _format_provenance(result: ExperimentResult) -> str:
    seed = "-" if result.seed is None else result.seed
    cached = " · cache hit" if result.cache_hit else ""
    return (f"seed {seed} · {result.duration_s:.3f} s · "
            f"peak RSS {result.peak_rss_kb} KiB{cached}")


def _write_report(names: List[str], seed: int, output: str,
                  parallel: int = 1, cache_dir: Optional[str] = None) -> int:
    """Run experiments and write their results as a markdown report."""
    runner = _make_runner(parallel, cache_dir)
    results = runner.run([Job(name, {}, seed) for name in names])
    lines = ["# repro experiment report", ""]
    for result in results:
        spec = registry.get(result.name)
        lines.append(f"## {result.name} — {spec.claim}")
        lines.append("")
        lines.append(f"*{_format_provenance(result)} · repro {result.version}*")
        lines.append("")
        lines.append("```")
        lines.extend(_render_text(result.payload))
        lines.append("```")
        lines.append("")
        print(f"ran {result.name} ({result.duration_s:.3f} s)")
    with open(output, "w") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {output}")
    return 0


def _sweep(args) -> int:
    cache_dir = None if args.no_cache else args.cache_dir
    runner = _make_runner(args.parallel, cache_dir)
    try:
        results = runner.sweep(args.name, seeds=args.seeds, base_seed=args.base_seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([r.to_json_dict() for r in results], indent=2, default=repr))
        return 0
    name = registry.resolve(args.name)
    hits = sum(r.cache_hit for r in results)
    print(f"sweep {name}: {len(results)} seeds from base {args.base_seed} "
          f"({hits} cache hits)")
    for result in results:
        print(f"  {_format_provenance(result)}")
    if cache_dir is not None:
        print(f"cache: {cache_dir}")
    return 0


def _test_module(args) -> int:
    """memtest-style RowHammer test of one simulated module (§II's [80])."""
    from repro.dram.module import DramModule
    from repro.dram.timing import DDR3_1066
    from repro.fieldstudy.campaign import whole_module_errors

    module = DramModule.from_vintage(
        args.manufacturer, args.date, serial="cli-dut", seed=args.seed, timing=DDR3_1066
    )
    result = whole_module_errors(module, refresh_multiplier=args.refresh_multiplier)
    print(f"module: manufacturer {args.manufacturer}, date {args.date}, "
          f"refresh x{args.refresh_multiplier:g}")
    print(f"activation budget per victim: {result.budget}")
    print(f"errors: {result.errors} ({result.errors_per_billion:.3g} per 10^9 cells)")
    print("VULNERABLE to RowHammer" if result.vulnerable else "no RowHammer errors observed")
    return 1 if result.vulnerable else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
