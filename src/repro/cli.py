"""Command-line front end: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run f1 --seed 0
    python -m repro run c3 --json
    python -m repro describe c5

Each experiment name maps to a function of the experiment registry
(:mod:`repro.core.experiment`); results print as text tables, or as
JSON with ``--json`` for downstream tooling.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.core import experiment as X

#: CLI name -> (callable, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "f1": (X.fig1_error_rates, "Figure 1: error rates vs manufacture date (129 modules)"),
    "c2": (X.isolation_violations, "Memory-isolation violations by read and write loops"),
    "c3": (X.refresh_multiplier_sweep, "Errors and cost vs refresh-rate multiplier"),
    "c4": (X.ecc_study, "Flips-per-word histogram and the ECC ladder"),
    "c5": (X.para_reliability, "PARA closed-form reliability analysis"),
    "c5-sim": (X.para_controller_check, "PARA scaled controller-path simulation"),
    "c6": (X.cra_tradeoff, "Counter-based mitigation: protection and storage"),
    "c7": (X.mitigation_comparison, "All mitigations vs the same attack"),
    "c8": (X.retention_study, "Retention: profiling escapes, RAIDR, AVATAR"),
    "c9": (X.flash_error_sweep, "Flash error breakdown vs wear"),
    "c9-fcr": (X.fcr_study, "Flash Correct-and-Refresh lifetime sweep"),
    "c10-c11": (X.recovery_study, "RFR, read-disturb recovery, NAC"),
    "c12": (X.twostep_study, "Two-step programming exposure"),
    "c12-lifetime": (X.twostep_lifetime_study, "Two-step hardening lifetime gain"),
    "c13": (X.pcm_study, "PCM wear attack vs Start-Gap"),
    "c14": (X.attack_gallery, "Attack gallery success probabilities"),
    "sidedness": (X.sidedness_ablation, "Single- vs double-sided ablation"),
    "trr-bypass": (X.trr_bypass_study, "Many-sided hammering vs TRR sampler"),
    "userlevel": (X.userlevel_attack_study, "User-level attack strategies via cache"),
    "raidr-interaction": (X.raidr_rowhammer_interaction, "RAIDR bins open RowHammer headroom"),
    "codesign": (X.codesign_study, "AL-DRAM latency profiling + online retention profiling"),
    "dpd": (X.pattern_dependence_study, "Data-pattern dependence of disturbance errors"),
    "emerging": (X.emerging_memory_study, "STT-MRAM scaling + RRAM crossbar hammer"),
    "multibank": (X.multibank_study, "Attack throughput vs parallel banks (tFAW limit)"),
    "vref": (X.vref_tuning_study, "Flash read-reference tuning vs retention errors"),
    "fleet": (X.fleet_study, "Fleet exposure from the vintage mix + patch rollout"),
}


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment results to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _to_jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return {k: _to_jsonable(v) for k, v in vars(value).items() if not k.startswith("_")}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _render_text(result: Any, indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    jsonable = _to_jsonable(result)
    if isinstance(jsonable, dict):
        for key, value in jsonable.items():
            if isinstance(value, (dict, list)) and value and not _is_flat(value):
                lines.append(f"{pad}{key}:")
                lines.extend(_render_text(value, indent + 1))
            else:
                lines.append(f"{pad}{key}: {value}")
    elif isinstance(jsonable, list):
        for item in jsonable:
            if isinstance(item, (dict, list)):
                lines.append(f"{pad}-")
                lines.extend(_render_text(item, indent + 1))
            else:
                lines.append(f"{pad}- {item}")
    else:
        lines.append(f"{pad}{jsonable}")
    return lines


def _is_flat(value: Any) -> bool:
    if isinstance(value, dict):
        return all(not isinstance(v, (dict, list)) for v in value.values())
    if isinstance(value, list):
        return all(not isinstance(v, (dict, list)) for v in value) and len(value) <= 12
    return True


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of the RowHammer DATE 2017 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    describe = sub.add_parser("describe", help="show an experiment's docstring")
    describe.add_argument("name", choices=sorted(EXPERIMENTS))

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("name", choices=sorted(EXPERIMENTS))
    run.add_argument("--seed", type=int, default=0, help="experiment seed")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")

    report = sub.add_parser("report", help="run several experiments, write a markdown report")
    report.add_argument("names", nargs="+", choices=sorted(EXPERIMENTS))
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", default="report.md", help="markdown file to write")

    test_module = sub.add_parser(
        "test-module",
        help="memtest-style RowHammer test of one simulated module",
    )
    test_module.add_argument("--manufacturer", choices=("A", "B", "C"), default="B")
    test_module.add_argument("--date", type=float, default=2013.0)
    test_module.add_argument("--seed", type=int, default=0)
    test_module.add_argument("--refresh-multiplier", type=float, default=1.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_fn, description) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.command == "describe":
        fn, description = EXPERIMENTS[args.name]
        print(f"{args.name}: {description}\n")
        print((fn.__doc__ or "(no docstring)").strip())
        return 0
    if args.command == "report":
        return _write_report(args.names, args.seed, args.output)
    if args.command == "test-module":
        return _test_module(args)
    fn, _description = EXPERIMENTS[args.name]
    try:
        result = fn(seed=args.seed)
    except TypeError:
        result = fn()  # a few experiments take no seed
    if args.json:
        print(json.dumps(_to_jsonable(result), indent=2, default=repr))
    else:
        print("\n".join(_render_text(result)))
    return 0


def _write_report(names: List[str], seed: int, output: str) -> int:
    """Run experiments and write their results as a markdown report."""
    lines = ["# repro experiment report", ""]
    for name in names:
        fn, description = EXPERIMENTS[name]
        try:
            result = fn(seed=seed)
        except TypeError:
            result = fn()
        lines.append(f"## {name} — {description}")
        lines.append("")
        lines.append("```")
        lines.extend(_render_text(result))
        lines.append("```")
        lines.append("")
        print(f"ran {name}")
    with open(output, "w") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {output}")
    return 0


def _test_module(args) -> int:
    """memtest-style RowHammer test of one simulated module (§II's [80])."""
    from repro.dram.module import DramModule
    from repro.dram.timing import DDR3_1066
    from repro.fieldstudy.campaign import whole_module_errors

    module = DramModule.from_vintage(
        args.manufacturer, args.date, serial="cli-dut", seed=args.seed, timing=DDR3_1066
    )
    result = whole_module_errors(module, refresh_multiplier=args.refresh_multiplier)
    print(f"module: manufacturer {args.manufacturer}, date {args.date}, "
          f"refresh x{args.refresh_multiplier:g}")
    print(f"activation budget per victim: {result.budget}")
    print(f"errors: {result.errors} ({result.errors_per_billion:.3g} per 10^9 cells)")
    print("VULNERABLE to RowHammer" if result.vulnerable else "no RowHammer errors observed")
    return 1 if result.vulnerable else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
