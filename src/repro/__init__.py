"""repro — a simulation-based reproduction of Mutlu, "The RowHammer
Problem and Other Issues We May Face as Memory Becomes Denser"
(DATE 2017).

The package builds, from scratch, every substrate the paper's claims
rest on — a disturbance-aware DRAM device model, a mitigation-capable
memory controller, ECC codes, a DRAM retention model (DPD/VRT), an MLC
NAND flash Vth model with its error mechanisms and recovery schemes,
and a PCM endurance model — plus the attacks and mitigations the paper
discusses, and an experiment registry regenerating its figure and
quantitative claims.

Quick start::

    from repro import MemorySystem

    system = MemorySystem.build(manufacturer="B", date=2013.0,
                                scaled=True, mitigation="para",
                                mitigation_kwargs={"p": 0.02})
    flips = system.hammer_double_sided(victim=1000, iterations=30_000)
"""

from repro.core.config import SystemConfig
from repro.core.scenarios import Scenario, full_scale_scenario, scaled_scenario
from repro.core.system import MITIGATIONS, MemorySystem, SystemReport
from repro.dram.module import DramModule
from repro.dram.vintage import profile_for

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "Scenario",
    "full_scale_scenario",
    "scaled_scenario",
    "MITIGATIONS",
    "MemorySystem",
    "SystemReport",
    "DramModule",
    "profile_for",
    "__version__",
]
