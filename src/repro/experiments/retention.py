"""§III-A1 DRAM retention experiments: DPD/VRT profiling escapes,
RAIDR vs AVATAR, and the RAIDR-RowHammer interaction."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.scenarios import scaled_scenario
from repro.experiments.registry import experiment
from repro.retention.avatar import simulate_avatar
from repro.retention.params import RetentionParams
from repro.retention.population import CellPopulation
from repro.retention.profiling import field_escapes, profile_population
from repro.retention.raidr import assign_bins, runtime_escape_cells


# ----------------------------------------------------------------------
# C8: retention — DPD, VRT, profiling escapes, RAIDR vs AVATAR
# ----------------------------------------------------------------------
@experiment(
    "retention_study",
    claim="Profiling escapes (DPD+VRT), RAIDR savings, AVATAR escape-rate recovery",
    section="III-A1",
    tags=("retention", "raidr", "avatar"),
    aliases=("c8",),
)
def retention_study(
    rows: int = 2048,
    cells_per_row: int = 512,
    params: Optional[RetentionParams] = None,
    seed: int = 0,
) -> Dict:
    """Profiling escapes and the RAIDR -> AVATAR escape-rate recovery.

    The default parameterization is sized so the DPD/VRT escape math
    has expectation well above zero: ~1M cells, a 10^-3 weak tail, a
    4-round profiling campaign whose per-round pattern exercises a DPD
    cell's worst case only 35% of the time.
    """
    if params is None:
        params = RetentionParams(
            tail_fraction=1e-3, vrt_fraction=1e-3, dpd_fraction=0.6, dpd_min_factor=0.2
        )
    population = CellPopulation(rows, cells_per_row, params, seed=seed)
    profiling = profile_population(
        population, test_interval_s=0.512, rounds=4, pattern_coverage=0.35, seed=seed
    )
    escapes = field_escapes(population, profiling, field_refresh_interval_s=0.256, observation_s=6 * 3600.0)
    assignment = assign_bins(population, profiling.observed_retention_s)
    raidr_escapes = runtime_escape_cells(population, assignment, observation_s=6 * 3600.0)
    avatar = simulate_avatar(population, assignment, days=5, seed=seed)
    return {
        "discovered": len(profiling.discovered),
        "profiling_escapes": len(escapes),
        "raidr_savings_fraction": assignment.savings_fraction(),
        "raidr_bin_counts": assignment.bin_counts(),
        "raidr_escape_cells": len(raidr_escapes),
        "avatar_daily_escapes": avatar.daily_escapes,
        "avatar_total_escapes": avatar.total_escapes,
        "avatar_final_refresh_rate": avatar.refreshes_per_second_final,
        "raidr_refresh_rate": assignment.refreshes_per_second(),
        "baseline_refresh_rate": assignment.baseline_refreshes_per_second(),
    }


# ----------------------------------------------------------------------
# Extension: multi-rate refresh opens RowHammer headroom (§III-A1 risk)
# ----------------------------------------------------------------------
@experiment(
    "raidr_rowhammer_interaction",
    claim="Rows parked in a slow RAIDR bin gain a multiplied RowHammer budget",
    section="III-A1",
    tags=("retention", "raidr", "rowhammer"),
    aliases=("raidr-interaction",),
)
def raidr_rowhammer_interaction(seed: int = 0, slow_bin: int = 2) -> Dict:
    """RAIDR-binned rows gain a multiplied RowHammer budget.

    §III-A1 closes with: "it is important for such investigations to
    ensure no new vulnerabilities ... open up due to the solutions
    developed."  Here is one: a module whose weakest cell sits safely
    above the 64 ms activation budget is *invulnerable* under uniform
    refresh — but a row parked in a 256 ms RAIDR bin accumulates four
    windows of hammering before its next refresh, and flips.
    """
    from dataclasses import replace

    base = scaled_scenario(scale=20.0)
    budget = base.attack_budget
    # Thresholds 1.5x above the single-window budget: safe at bin 0.
    profile = replace(
        base.profile,
        hc_first_min=budget * 1.5,
        hc_first_median=budget * 2.5,
    )
    scenario = replace(base, profile=profile)
    periods = 1 << slow_bin
    iterations = (periods * budget) // 2  # hammer across `periods` windows
    results = {}
    for label, binned in (("uniform-64ms", False), (f"raidr-bin{slow_bin}", True)):
        module = scenario.make_module(serial=f"raidr-{label}", seed=seed)
        bins = np.zeros(scenario.geometry.rows, dtype=np.int64)
        if binned:
            bins[995:1006] = slow_bin  # the victim neighborhood profiled "strong"
        from repro.controller.controller import MemoryController

        controller = MemoryController(module, refresh_row_bins=bins)
        controller.run_activation_pattern(0, [999, 1001], iterations)
        controller.finish()
        results[label] = module.total_flips()
    return {
        "flips": results,
        "budget_per_window": budget,
        "threshold_floor": profile.hc_first_min,
        "slow_bin_window_multiplier": periods,
    }
