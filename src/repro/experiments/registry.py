"""The declarative experiment registry.

Every paper artifact is reproduced by one *experiment*: a plain
function decorated with :func:`experiment`, which records the
experiment's name, the paper claim it regenerates, its section, tags,
legacy CLI aliases, and — crucially — its **declared parameters**,
captured once via :func:`inspect.signature`.  Seed handling is thereby
introspected, never guessed: the old ``try: fn(seed=seed) except
TypeError`` dance (which silently swallowed TypeErrors raised *inside*
an experiment) is structurally impossible against this registry.

Usage::

    @experiment(
        "fig1_error_rates",
        claim="Figure 1: errors/10^9 cells vs manufacture date",
        section="II",
        tags=("dram", "rowhammer"),
        aliases=("f1",),
    )
    def fig1_error_rates(seed: int = 0) -> dict: ...

    spec = registry.get("f1")          # aliases resolve
    spec.accepts_seed                  # -> True, from the signature
    spec.bind(seed=3)                  # -> {"seed": 3}, validated
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple


class UnknownExperimentError(KeyError):
    """Raised when a name matches neither a registry name nor an alias."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"unknown experiment {self.name!r}; see repro.experiments.names()"


class DuplicateExperimentError(ValueError):
    """Raised when two experiments claim the same name or alias."""


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of an experiment (the seed is tracked
    separately on :class:`ExperimentSpec`)."""

    name: str
    default: Any
    required: bool
    annotation: str = ""
    description: str = ""


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the framework knows about one experiment."""

    name: str
    fn: Callable[..., Any]
    claim: str
    section: str
    tags: Tuple[str, ...] = ()
    aliases: Tuple[str, ...] = ()
    params: Mapping[str, ParamSpec] = field(default_factory=dict)
    accepts_seed: bool = False

    @property
    def doc(self) -> str:
        return inspect.getdoc(self.fn) or "(no docstring)"

    def bind(
        self,
        params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Validate ``params`` against the declared schema and merge the
        seed in (if and only if the experiment accepts one).  Returns the
        kwargs dict to call :attr:`fn` with."""
        kwargs: Dict[str, Any] = {}
        for key, value in dict(params or {}).items():
            if key == "seed":
                raise ValueError("pass the seed via the seed= argument, not params")
            if key not in self.params:
                known = ", ".join(sorted(self.params)) or "(none)"
                raise ValueError(
                    f"experiment {self.name!r} has no parameter {key!r}; known: {known}"
                )
            kwargs[key] = value
        missing = [p.name for p in self.params.values() if p.required and p.name not in kwargs]
        if missing:
            raise ValueError(f"experiment {self.name!r} missing required params: {missing}")
        if self.accepts_seed and seed is not None:
            kwargs["seed"] = seed
        return kwargs

    def run(self, params: Optional[Mapping[str, Any]] = None, seed: Optional[int] = None) -> Any:
        """Call the experiment with validated kwargs.  Exceptions raised
        *inside* the experiment propagate untouched — by design."""
        return self.fn(**self.bind(params=params, seed=seed))


_REGISTRY: Dict[str, ExperimentSpec] = {}
_ALIASES: Dict[str, str] = {}


def _params_from_signature(
    fn: Callable[..., Any], schema: Optional[Mapping[str, str]]
) -> Tuple[Dict[str, ParamSpec], bool]:
    signature = inspect.signature(fn)
    descriptions = dict(schema or {})
    params: Dict[str, ParamSpec] = {}
    accepts_seed = False
    for pname, parameter in signature.parameters.items():
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            raise TypeError(f"experiment {fn.__name__} may not use *args/**kwargs")
        if pname == "seed":
            accepts_seed = True
            descriptions.pop("seed", None)
            continue
        annotation = ""
        if parameter.annotation is not parameter.empty:
            ann = parameter.annotation
            annotation = ann if isinstance(ann, str) else getattr(ann, "__name__", repr(ann))
        params[pname] = ParamSpec(
            name=pname,
            default=None if parameter.default is parameter.empty else parameter.default,
            required=parameter.default is parameter.empty,
            annotation=annotation,
            description=descriptions.pop(pname, ""),
        )
    if descriptions:
        raise ValueError(
            f"params_schema for {fn.__name__} names parameters the function "
            f"does not take: {sorted(descriptions)}"
        )
    return params, accepts_seed


def experiment(
    name: str,
    claim: str,
    *,
    section: str,
    tags: Sequence[str] = (),
    aliases: Sequence[str] = (),
    params_schema: Optional[Mapping[str, str]] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a function as a named experiment.

    ``params_schema`` optionally maps parameter names to one-line
    descriptions; it is validated against the function's real signature
    so documentation cannot drift from code.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        params, accepts_seed = _params_from_signature(fn, params_schema)
        spec = ExperimentSpec(
            name=name,
            fn=fn,
            claim=claim,
            section=section,
            tags=tuple(tags),
            aliases=tuple(aliases),
            params=params,
            accepts_seed=accepts_seed,
        )
        register(spec)
        fn.spec = spec  # type: ignore[attr-defined]
        return fn

    return decorate


def register(spec: ExperimentSpec) -> None:
    """Add a spec to the registry; names and aliases share one namespace."""
    for candidate in (spec.name, *spec.aliases):
        if candidate in _REGISTRY or candidate in _ALIASES:
            raise DuplicateExperimentError(f"experiment name/alias already taken: {candidate!r}")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name


def unregister(name: str) -> None:
    """Remove an experiment (test hook; resolves aliases)."""
    spec = get(name)
    del _REGISTRY[spec.name]
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)


def resolve(name: str) -> str:
    """Canonical registry name for ``name`` (which may be an alias)."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    raise UnknownExperimentError(name)


def get(name: str) -> ExperimentSpec:
    """Look up a spec by registry name or legacy alias."""
    return _REGISTRY[resolve(name)]


def names() -> List[str]:
    """Sorted canonical experiment names."""
    return sorted(_REGISTRY)


def invocable_names() -> List[str]:
    """Every accepted spelling: canonical names plus legacy aliases."""
    return sorted([*_REGISTRY, *_ALIASES])


def all_specs(tag: Optional[str] = None) -> List[ExperimentSpec]:
    """All specs, sorted by name, optionally filtered by tag."""
    specs = [_REGISTRY[n] for n in names()]
    if tag is not None:
        specs = [s for s in specs if tag in s.tags]
    return specs


def render_index(fmt: str = "text") -> str:
    """Render the registry index (``repro list`` and EXPERIMENTS.md use this)."""
    specs = all_specs()
    if fmt == "markdown":
        lines = [
            "| Experiment | Alias | § | Claim |",
            "|---|---|---|---|",
        ]
        for spec in specs:
            alias = ", ".join(f"`{a}`" for a in spec.aliases) or "—"
            lines.append(f"| `{spec.name}` | {alias} | {spec.section} | {spec.claim} |")
        return "\n".join(lines)
    width = max(len(spec.name) for spec in specs)
    awidth = max((len("/".join(spec.aliases)) for spec in specs), default=0)
    lines = []
    for spec in specs:
        alias = "/".join(spec.aliases)
        lines.append(f"{spec.name.ljust(width)}  {alias.ljust(awidth)}  {spec.claim}")
    return "\n".join(lines)
