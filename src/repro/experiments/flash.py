"""§III-A2/§III-B NAND flash experiments: error-mix breakdown, FCR,
read-reference tuning, offline recovery (RFR/read-disturb/NAC), and the
two-step programming vulnerability."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.registry import experiment
from repro.flash.block import FlashBlock
from repro.flash.mitigations.fcr import fcr_sweep, lifetime_multiplier
from repro.flash.mitigations.nac import correct_wordline
from repro.flash.mitigations.rfr import read_disturb_recovery, recover_wordline
from repro.flash.params import MLC_1XNM
from repro.flash.ssd import error_breakdown, program_block_shadow
from repro.flash.twostep import exposure_experiment, lifetime_gain_fraction


# ----------------------------------------------------------------------
# C9: flash error breakdown + FCR
# ----------------------------------------------------------------------
@experiment(
    "flash_error_sweep",
    claim="Error mix vs wear: retention comes to dominate at high P/E counts",
    section="III-A2",
    tags=("flash", "errors"),
    aliases=("c9",),
)
def flash_error_sweep(
    pe_grid: Sequence[int] = (0, 3000, 8000, 15000, 25000),
    retention_days: float = 365.0,
    reads: int = 20_000,
    seed: int = 0,
) -> List[Dict]:
    """Error mix vs wear: retention comes to dominate."""
    rows = []
    for pe in pe_grid:
        breakdown = error_breakdown(pe, retention_days, reads, wordlines=8, cells=2048, seed=seed)
        rows.append(
            {
                "pe_cycles": pe,
                "wear_and_interference": breakdown.wear_and_interference,
                "retention": breakdown.retention,
                "read_disturb": breakdown.read_disturb,
                "dominant": breakdown.dominant(),
            }
        )
    return rows


@experiment(
    "fcr_study",
    claim="Flash Correct-and-Refresh: periodic remapping multiplies lifetime",
    section="III-B",
    tags=("flash", "mitigations", "fcr"),
    aliases=("c9-fcr",),
)
def fcr_study(seed: int = 0) -> Dict:
    """FCR lifetime sweep and its headline multiplier."""
    points = fcr_sweep(seed=seed, wordlines=4, cells=2048)
    return {
        "points": points,
        "lifetime_multiplier": lifetime_multiplier(points),
    }


@experiment(
    "vref_tuning_study",
    claim="Re-centering read references removes most retention errors (read-retry)",
    section="III-B",
    tags=("flash", "mitigations", "vref"),
    aliases=("vref",),
)
def vref_tuning_study(
    pe_cycles: int = 15_000,
    retention_days: float = 365.0,
    seed: int = 0,
) -> Dict:
    """Read-reference tuning: the SSD controller's first-line fix.

    §II-D's "intelligent controller" point in its most deployed form:
    after retention shifts the Vth distributions, re-centering the read
    references in the (moved) valleys removes most retention errors
    without any stronger ECC.  Real controllers do this via read-retry.
    """
    from repro.flash.vth import optimal_read_refs, state_from_bits

    block = FlashBlock(wordlines=8, cells=2048, seed=seed)
    block.set_pe_cycles(pe_cycles)
    program_block_shadow(block, seed=seed)
    block.age_retention(retention_days)
    factory_errors = sum(
        block.page_errors(wl, which)
        for wl in block.programmed_wordlines()
        for which in ("lsb", "msb")
    )
    # Tune on one wordline's known data (a controller uses a pilot page),
    # then apply the tuned references everywhere.
    pilot = 3
    states = state_from_bits(block.wl_state[pilot].true_lsb, block.wl_state[pilot].true_msb)
    tuned = optimal_read_refs(block.vth[pilot], states, block.params)
    tuned_errors = sum(
        block.page_errors(wl, which, read_refs=tuned)
        for wl in block.programmed_wordlines()
        for which in ("lsb", "msb")
    )
    return {
        "factory_errors": factory_errors,
        "tuned_errors": tuned_errors,
        "factory_refs": tuple(block.params.read_refs),
        "tuned_refs": tuned,
        "reduction_fraction": 1.0 - tuned_errors / max(factory_errors, 1),
    }


# ----------------------------------------------------------------------
# C10/C11: RFR, read-disturb recovery, NAC
# ----------------------------------------------------------------------
@experiment(
    "recovery_study",
    claim="Offline recovery: RFR, read-disturb recovery, and NAC all cut errors",
    section="III-B",
    tags=("flash", "mitigations", "recovery"),
    aliases=("c10-c11",),
)
def recovery_study(seed: int = 0) -> Dict:
    """Offline recovery mechanisms: RFR, read-disturb recovery, NAC."""
    block = FlashBlock(wordlines=8, cells=2048, seed=seed)
    block.set_pe_cycles(12_000)
    program_block_shadow(block, seed=seed)
    block.age_retention(365.0)
    rfr = recover_wordline(block, 3, seed=seed)

    block_rd = FlashBlock(wordlines=8, cells=2048, seed=seed + 1)
    block_rd.set_pe_cycles(8_000)
    program_block_shadow(block_rd, seed=seed + 1)
    block_rd.apply_read_disturb(150_000)
    rdr = read_disturb_recovery(block_rd, 3, seed=seed + 1)

    block_nac = FlashBlock(wordlines=8, cells=4096, params=MLC_1XNM, seed=seed + 2)
    block_nac.set_pe_cycles(15_000)
    program_block_shadow(block_nac, seed=seed + 2)
    nac = correct_wordline(block_nac, 3, seed=seed + 2)
    return {"rfr": rfr, "read_disturb_recovery": rdr, "nac": nac}


# ----------------------------------------------------------------------
# C12: two-step programming
# ----------------------------------------------------------------------
@experiment(
    "twostep_study",
    claim="The two-step programming exposure window corrupts partially-programmed LSBs",
    section="III-A2",
    tags=("flash", "twostep", "vulnerability"),
    aliases=("c12",),
)
def twostep_study(pe_cycles: int = 8000, seed: int = 0) -> Dict:
    """Exposure-window corruption and the buffering mitigation."""
    result = exposure_experiment(pe_cycles=pe_cycles, seed=seed)
    return {
        "exposed_errors": result.exposed_errors,
        "mitigated_errors": result.mitigated_errors,
        "control_errors": result.control_errors,
    }


@experiment(
    "twostep_lifetime_study",
    claim="Hardening two-step programming buys ~16% lifetime (paper figure)",
    section="III-A2",
    tags=("flash", "twostep", "lifetime"),
    aliases=("c12-lifetime",),
)
def twostep_lifetime_study(seed: int = 0, error_budget: int = 160) -> Dict:
    """Lifetime gain from hardening two-step programming (paper: ~16%)."""
    gain = lifetime_gain_fraction(error_budget=error_budget, seed=seed)
    return {"lifetime_gain_fraction": gain}
