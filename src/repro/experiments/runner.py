"""Execute experiments: one-shot, fan-out, and seed sweeps.

The :class:`ExperimentRunner` turns ``(experiment, params, seed)`` jobs
into :class:`~repro.experiments.result.ExperimentResult` records:

* **parallel** — jobs fan out through a
  :class:`concurrent.futures.ProcessPoolExecutor` (experiments are
  CPU-bound numpy code, so processes, not threads);
* **deterministic** — sweep seeds derive from ``(base_seed, index)``
  via SHA-256, so the same sweep always runs the same jobs;
* **measured** — every job records wall-clock duration and the worker's
  peak RSS;
* **cached** — results persist to an on-disk JSON cache keyed by
  ``(name, params, seed)``; a re-run becomes a near-instant cache hit.

Seed handling is introspected from each experiment's registered
signature (:mod:`repro.experiments.registry`), so a ``TypeError``
raised *inside* an experiment propagates instead of being mistaken for
"takes no seed".
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments import registry
from repro.experiments.result import ExperimentResult, canonical_json, to_jsonable
from repro.telemetry import MetricsRegistry, RunLedger, SpanProfile, SpanProfiler
from repro.telemetry import default_ledger
from repro.telemetry import runtime as telem

try:  # not available on Windows; RSS reads as 0 there
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Job:
    """One unit of work: an experiment name, bound params, and a seed."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = 0


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-spread per-job seed for sweeps.

    SHA-256 of ``"base:index"`` truncated to 31 bits: stable across
    runs, machines, and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _peak_rss_kb() -> int:
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def execute_job(name: str, params: Optional[Mapping[str, Any]] = None,
                seed: Optional[int] = 0,
                collect_metrics: bool = False,
                collect_profile: bool = False) -> ExperimentResult:
    """Run one experiment in-process and return its structured result.

    This is the single run-one-experiment path shared by the CLI's
    ``run``/``report``/``sweep`` and the pool workers.  The payload is
    normalized to JSON-safe types here so cached and fresh results are
    indistinguishable downstream.

    With ``collect_metrics`` the job runs against its own fresh
    telemetry registry; the snapshot is attached to the result (and the
    caller's registry is restored afterwards), so per-job metrics can be
    shipped across process boundaries and merged in the parent.
    ``collect_profile`` does the same with a fresh span profiler: the
    whole job runs under a root ``job{name=...}`` span and the profile
    snapshot rides in ``result.profile``.

    Exceptions raised inside the experiment propagate (the batch-level
    fault tolerance lives in :meth:`ExperimentRunner.run`); the
    ``job_end`` trace event still fires, with ``ok``/``error`` fields
    distinguishing the failure.
    """
    import repro

    spec = registry.get(name)
    kwargs = spec.bind(params=params, seed=seed)
    if collect_metrics:
        prev_registry = telem.swap_registry(MetricsRegistry())
        prev_metrics_on = telem.metrics_on
        telem.enable_metrics()
    if collect_profile:
        prev_profiler = telem.swap_profiler(SpanProfiler())
        prev_spans_on = telem.spans_on
        telem.enable_profiling()
    if telem.trace_on:
        telem.trace("job_start", name=spec.name, seed=seed)
    snapshot: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None
    ok = True
    error: Optional[str] = None
    start = time.perf_counter()
    try:
        with telem.span("job", name=spec.name):
            payload = spec.fn(**kwargs)
    except BaseException as exc:
        ok = False
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        duration = time.perf_counter() - start
        if telem.trace_on:
            end_fields: Dict[str, Any] = {"name": spec.name, "seed": seed,
                                          "duration_s": duration, "ok": ok}
            if error is not None:
                end_fields["error"] = error
            telem.trace("job_end", **end_fields)
        if collect_profile:
            profile = telem.get_profiler().snapshot()
            telem.swap_profiler(prev_profiler)
            if not prev_spans_on:
                telem.disable_profiling()
        if collect_metrics:
            snapshot = telem.get_registry().snapshot()
            telem.swap_registry(prev_registry)
            if not prev_metrics_on:
                telem.disable_metrics()
    return ExperimentResult(
        name=spec.name,
        payload=to_jsonable(payload),
        seed=seed if spec.accepts_seed else None,
        params=dict(params or {}),
        duration_s=duration,
        peak_rss_kb=_peak_rss_kb(),
        version=repro.__version__,
        metrics=snapshot,
        profile=profile,
    )


def execute_job_safe(name: str, params: Optional[Mapping[str, Any]] = None,
                     seed: Optional[int] = 0,
                     collect_metrics: bool = False,
                     collect_profile: bool = False) -> ExperimentResult:
    """:func:`execute_job`, but a raising experiment becomes an errored
    :class:`ExperimentResult` (``payload=None``, ``error`` set) instead
    of propagating — the unit of the batch runner's fault tolerance.

    Framework-level errors (unknown experiment name, bad params) still
    raise: they are caller bugs, not job failures.
    """
    import repro

    spec = registry.get(name)
    spec.bind(params=params, seed=seed)  # param errors are caller bugs: raise now
    start = time.perf_counter()
    try:
        return execute_job(name, params=params, seed=seed,
                           collect_metrics=collect_metrics,
                           collect_profile=collect_profile)
    except Exception as exc:
        return ExperimentResult(
            name=spec.name,
            payload=None,
            seed=seed if spec.accepts_seed else None,
            params=dict(params or {}),
            duration_s=time.perf_counter() - start,
            peak_rss_kb=_peak_rss_kb(),
            version=repro.__version__,
            error=f"{type(exc).__name__}: {exc}",
        )


def _pool_worker(job: Tuple[str, Dict[str, Any], Optional[int], bool, bool]) -> ExperimentResult:
    # Re-import inside the worker so spawn-based pools (macOS/Windows)
    # repopulate the registry; under fork this is a no-op.
    import repro.experiments  # noqa: F401

    name, params, seed, collect_metrics, collect_profile = job
    # The safe variant keeps one raising job from poisoning pool.map
    # and aborting its completed siblings.
    return execute_job_safe(name, params=params, seed=seed,
                            collect_metrics=collect_metrics,
                            collect_profile=collect_profile)


class ResultCache:
    """On-disk JSON result cache keyed by ``(name, params, seed)``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def key(self, name: str, params: Mapping[str, Any], seed: Optional[int]) -> str:
        canonical = registry.resolve(name)
        # Insertion order must not leak into the key: two params dicts
        # holding the same bindings always hash identically.
        ordered = {k: params[k] for k in sorted(params)}
        blob = canonical_json({"name": canonical, "params": ordered, "seed": seed})
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def path(self, name: str, params: Mapping[str, Any], seed: Optional[int]) -> Path:
        return self.root / registry.resolve(name) / f"{self.key(name, params, seed)}.json"

    def get(self, name: str, params: Mapping[str, Any],
            seed: Optional[int]) -> Optional[ExperimentResult]:
        path = self.path(name, params, seed)
        if not path.is_file():
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):  # torn write → treat as miss
            return None
        return ExperimentResult.from_json_dict(record, cache_hit=True)

    def put(self, result: ExperimentResult) -> Path:
        path = self.path(result.name, result.params, result.seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = result.to_json_dict()
        record["cache_hit"] = False
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record, indent=1, sort_keys=True))
        os.replace(tmp, path)
        return path


class ExperimentRunner:
    """Run experiment jobs with optional process fan-out and caching.

    ``max_workers=None`` or ``1`` runs jobs inline (no pool overhead —
    the right default for one fast experiment); ``max_workers=N`` fans
    misses out over ``N`` worker processes.  ``cache_dir=None`` disables
    the cache.

    ``collect_metrics=True`` runs every job with telemetry on: each
    result carries its own metrics snapshot, and :attr:`metrics` holds
    the parent-side merge across all jobs this runner executed (cache
    hits included — their stored snapshots are re-absorbed, so a fully
    cached re-run still reports what the hardware did).
    ``collect_profile=True`` does the same for span profiles into
    :attr:`profile`.

    Batches are **fault tolerant**: a job that raises becomes an
    errored result (``error`` set, ``payload=None``) instead of
    aborting its completed siblings; errored results are never cached
    and are tallied in ``runner_jobs_total{outcome="error"}``.

    Every finished job is also appended to the **run ledger** (see
    :mod:`repro.telemetry.ledger`) unless ``ledger=False`` or the
    ``REPRO_LEDGER=off`` environment switch disables it.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 max_workers: Optional[int] = None,
                 collect_metrics: bool = False,
                 collect_profile: bool = False,
                 ledger: Union[None, bool, RunLedger] = None):
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.collect_metrics = collect_metrics
        self.collect_profile = collect_profile
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if collect_metrics else None
        )
        self.profile: Optional[SpanProfile] = (
            SpanProfile() if collect_profile else None
        )
        if ledger is None or ledger is True:
            self.ledger = default_ledger()
        elif ledger is False:
            self.ledger = None
        else:
            self.ledger = ledger

    def _absorb(self, result: ExperimentResult) -> None:
        """Account one finished job: merge its metric/span snapshots
        into the parent sinks and append it to the run ledger."""
        if self.metrics is not None:
            if result.metrics:
                self.metrics.merge(result.metrics)
            self.metrics.counter(
                "runner_jobs_total",
                cache_hit=str(result.cache_hit).lower(),
                outcome="error" if result.error else "ok",
            ).inc()
        if self.profile is not None and result.profile:
            self.profile.merge(result.profile)
        if self.ledger is not None:
            self.ledger.record(result)

    def summary(self, results: Sequence[ExperimentResult]) -> Dict[str, Any]:
        """Aggregate view of one batch: counts by outcome plus the
        errored jobs' identities — what the CLI prints as the run
        summary so failures are surfaced, not silently dropped."""
        errored = [r for r in results if r.error]
        return {
            "jobs": len(results),
            "ok": len(results) - len(errored),
            "errors": len(errored),
            "cache_hits": sum(r.cache_hit for r in results),
            "duration_s": sum(r.duration_s for r in results),
            "errored": [
                {"name": r.name, "seed": r.seed, "params": dict(r.params),
                 "error": r.error}
                for r in errored
            ],
        }

    def run_one(self, name: str, params: Optional[Mapping[str, Any]] = None,
                seed: Optional[int] = 0) -> ExperimentResult:
        """Run (or fetch from cache) a single experiment.

        Unlike the batch path, a raising experiment propagates here —
        one job means there are no siblings to protect.
        """
        params = dict(params or {})
        if self.cache is not None:
            hit = self.cache.get(name, params, seed)
            if hit is not None:
                self._absorb(hit)
                return hit
        result = execute_job(name, params=params, seed=seed,
                             collect_metrics=self.collect_metrics,
                             collect_profile=self.collect_profile)
        if self.cache is not None:
            self.cache.put(result)
        self._absorb(result)
        return result

    def run(self, jobs: Sequence[Job]) -> List[ExperimentResult]:
        """Run a batch of jobs, preserving input order in the output.

        Cache hits resolve up front; only misses hit the process pool.
        A raising job yields an errored result in its slot; completed
        siblings are kept, and nothing errored reaches the cache.
        """
        results: List[Optional[ExperimentResult]] = [None] * len(jobs)
        misses: List[Tuple[int, Job]] = []
        for i, job in enumerate(jobs):
            registry.get(job.name)  # fail fast on unknown names
            if self.cache is not None:
                hit = self.cache.get(job.name, job.params, job.seed)
                if hit is not None:
                    results[i] = hit
                    continue
            misses.append((i, job))

        if misses:
            workers = self.max_workers or 1
            if workers > 1 and len(misses) > 1:
                payloads = [(j.name, dict(j.params), j.seed,
                             self.collect_metrics, self.collect_profile)
                            for _, j in misses]
                with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
                    fresh = list(pool.map(_pool_worker, payloads))
            else:
                fresh = [execute_job_safe(j.name, params=j.params, seed=j.seed,
                                          collect_metrics=self.collect_metrics,
                                          collect_profile=self.collect_profile)
                         for _, j in misses]
            for (i, _job), result in zip(misses, fresh):
                results[i] = result
                if self.cache is not None and result.error is None:
                    self.cache.put(result)
        ordered = [r for r in results if r is not None]
        for result in ordered:
            self._absorb(result)
        return ordered

    def sweep(self, name: str, seeds: int, base_seed: int = 0,
              params: Optional[Mapping[str, Any]] = None) -> List[ExperimentResult]:
        """Run ``seeds`` deterministic-seed replicas of one experiment."""
        spec = registry.get(name)
        if not spec.accepts_seed:
            raise ValueError(
                f"experiment {spec.name!r} takes no seed; a sweep would run "
                f"{seeds} identical jobs"
            )
        jobs = [Job(spec.name, dict(params or {}), derive_seed(base_seed, i))
                for i in range(seeds)]
        return self.run(jobs)
