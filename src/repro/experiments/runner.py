"""Execute experiments: one-shot, fan-out, seed sweeps — and survive.

The :class:`ExperimentRunner` turns ``(experiment, params, seed)`` jobs
into :class:`~repro.experiments.result.ExperimentResult` records:

* **parallel** — jobs fan out through a
  :class:`concurrent.futures.ProcessPoolExecutor` (experiments are
  CPU-bound numpy code, so processes, not threads);
* **deterministic** — sweep seeds derive from ``(base_seed, index)``
  via SHA-256, so the same sweep always runs the same jobs;
* **measured** — every job records wall-clock duration and the worker's
  peak RSS;
* **cached** — results persist to an on-disk JSON cache keyed by
  ``(name, params, seed)``; a re-run becomes a near-instant cache hit;
* **hardened** — the batch path applies the same fault discipline the
  paper applies to memory:

  - per-job wall-clock **timeouts** (runner default, per-:class:`Job`
    override) produce a structured ``timeout`` outcome instead of a
    hang; the worker stuck on the job is reclaimed by rebuilding the
    pool;
  - transient failures **retry** with deterministic exponential
    backoff + jitter (``retries=0`` by default — determinism first);
  - a dying pool (worker SIGKILL/OOM/segfault → ``BrokenProcessPool``)
    is **rebuilt** and its in-flight jobs requeued, up to
    ``max_pool_rebuilds`` times, after which execution degrades to
    serial in-process;
  - ``KeyboardInterrupt`` **drains** already-completed futures into the
    cache/checkpoint/ledger before re-raising, so Ctrl-C never loses
    finished work;
  - an optional :class:`~repro.experiments.checkpoint.SweepCheckpoint`
    records every completed job, so an interrupted sweep **resumes**
    without re-running finished jobs even with the cache disabled.

Seed handling is introspected from each experiment's registered
signature (:mod:`repro.experiments.registry`), so a ``TypeError``
raised *inside* an experiment propagates instead of being mistaken for
"takes no seed".
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments import registry
from repro.experiments.checkpoint import SweepCheckpoint, job_key
from repro.experiments.result import ExperimentResult, to_jsonable
from repro.telemetry import (
    MetricsRegistry,
    PhysicsCollector,
    RunLedger,
    SpanProfile,
    SpanProfiler,
)
from repro.telemetry import default_ledger
from repro.telemetry import physics as phys
from repro.telemetry import events as stream_events
from repro.telemetry import ids
from repro.telemetry import runtime as telem
from repro.telemetry.events import EventStream, SweepProgress

try:  # not available on Windows; RSS reads as 0 there
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


class JobTimeout(Exception):
    """A job exceeded its wall-clock deadline.

    Stringifies into the ``"JobTimeout: ..."`` error the ``timeout``
    outcome classification keys on.
    """


#: Error classes (the leading ``ClassName`` of ``result.error``) that
#: indicate a *transient* failure worth retrying.
RETRYABLE_ERRORS = frozenset({
    "ChaosTransientError",
    "TransientError",
    "ConnectionError",
    "ConnectionResetError",
    "ConnectionAbortedError",
    "BrokenPipeError",
    "EOFError",
    "OSError",
    "IOError",
    "TimeoutError",
})

#: Error classes that must never be retried, whatever the retry budget:
#: resource exhaustion and interpreter-exit conditions re-fail
#: identically (or worse), and a timed-out job would burn its full
#: deadline again.
NONRETRYABLE_ERRORS = frozenset({
    "MemoryError",
    "SystemExit",
    "KeyboardInterrupt",
    "JobTimeout",
    # A tripped invariant means corrupted simulator state: re-running
    # the same deterministic job re-corrupts it identically.
    "InvariantViolation",
})


def error_class(error: Optional[str]) -> str:
    """The exception class name encoded in a result's error string."""
    return error.split(":", 1)[0].strip() if error else ""


def violation_subsystem(error: Optional[str]) -> str:
    """The ``[subsystem]`` tag of an ``InvariantViolation: ...`` error."""
    if error:
        start = error.find("[")
        end = error.find("]", start + 1)
        if start != -1 and end > start:
            return error[start + 1:end]
    return "unknown"


def is_retryable(error: Optional[str]) -> bool:
    cls = error_class(error)
    return cls in RETRYABLE_ERRORS and cls not in NONRETRYABLE_ERRORS


@dataclass(frozen=True)
class Job:
    """One unit of work: an experiment name, bound params, and a seed.

    ``timeout_s`` overrides the runner's default per-job deadline
    (``None`` inherits it).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = 0
    timeout_s: Optional[float] = None


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-spread per-job seed for sweeps.

    SHA-256 of ``"base:index"`` truncated to 31 bits: stable across
    runs, machines, and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def retry_backoff_s(base_s: float, job: Job, attempt: int,
                    cap_s: float = 5.0) -> float:
    """Exponential backoff with *deterministic* jitter.

    The jitter derives from SHA-256 of ``(name, seed, attempt)`` — the
    same retry schedule replays bit-for-bit, keeping hardened runs as
    reproducible as clean ones.
    """
    digest = hashlib.sha256(
        f"{job.name}:{job.seed}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32  # [0, 1)
    return min(cap_s, base_s * (2 ** max(0, attempt - 1)) * (0.5 + jitter))


def call_with_deadline(fn, timeout_s: Optional[float]):
    """Run ``fn()`` under a wall-clock deadline; raise :class:`JobTimeout`.

    Enforcement uses ``SIGALRM`` and therefore only engages on the main
    thread of a POSIX process; elsewhere the call runs unguarded (the
    pool path enforces deadlines parent-side instead).
    """
    if not timeout_s or timeout_s <= 0:
        return fn()
    if (threading.current_thread() is not threading.main_thread()
            or not hasattr(signal, "setitimer")):  # pragma: no cover - non-POSIX
        return fn()

    def _alarm(signum, frame):
        raise JobTimeout(f"exceeded {timeout_s:g}s wall-clock")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _peak_rss_kb() -> int:
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def execute_job(name: str, params: Optional[Mapping[str, Any]] = None,
                seed: Optional[int] = 0,
                collect_metrics: bool = False,
                collect_profile: bool = False,
                collect_physics: bool = False) -> ExperimentResult:
    """Run one experiment in-process and return its structured result.

    This is the single run-one-experiment path shared by the CLI's
    ``run``/``report``/``sweep`` and the pool workers.  The payload is
    normalized to JSON-safe types here so cached and fresh results are
    indistinguishable downstream.

    With ``collect_metrics`` the job runs against its own fresh
    telemetry registry; the snapshot is attached to the result (and the
    caller's registry is restored afterwards), so per-job metrics can be
    shipped across process boundaries and merged in the parent.
    ``collect_profile`` does the same with a fresh span profiler: the
    whole job runs under a root ``job{name=...}`` span and the profile
    snapshot rides in ``result.profile``.  ``collect_physics`` does the
    same with a fresh :class:`~repro.telemetry.PhysicsCollector`
    (per-row heat, flip provenance, mitigation audit) riding in
    ``result.physics``.

    Exceptions raised inside the experiment propagate (the batch-level
    fault tolerance lives in :meth:`ExperimentRunner.run`); the
    ``job_end`` trace event still fires, with ``ok``/``error`` fields
    distinguishing the failure — including the exception's class name
    for ``MemoryError``/``SystemExit``-grade failures.
    """
    import repro

    spec = registry.get(name)
    kwargs = spec.bind(params=params, seed=seed)
    run_id = ids.current_run_id()
    jid = ids.job_id_from_key(job_key(spec.name, params or {}, seed))
    if collect_metrics:
        # job_registry() returns a StreamingRegistry when live streaming
        # is armed, so instrument touches double as worker heartbeats.
        prev_registry = telem.swap_registry(stream_events.job_registry())
        prev_metrics_on = telem.metrics_on
        telem.enable_metrics()
    # Pin the tracer and stamp the correlation pair into every event it
    # records for the duration of the job (explicit fields still win).
    tracer = telem.get_tracer()
    prev_context = tracer.context
    context: Dict[str, Any] = {"job_id": jid}
    if run_id:
        context["run_id"] = run_id
    tracer.context = {**prev_context, **context}
    if collect_profile:
        prev_profiler = telem.swap_profiler(SpanProfiler())
        prev_spans_on = telem.spans_on
        telem.enable_profiling()
    if collect_physics:
        prev_collector = phys.swap_collector(phys.PhysicsCollector())
        prev_physics_on = phys.physics_on
        phys.enable_physics()
    if telem.trace_on:
        telem.trace("job_start", name=spec.name, seed=seed)
    snapshot: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None
    physics: Optional[Dict[str, Any]] = None
    ok = True
    error: Optional[str] = None
    start = time.perf_counter()
    try:
        with telem.span("job", name=spec.name):
            payload = spec.fn(**kwargs)
    except BaseException as exc:
        ok = False
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        duration = time.perf_counter() - start
        if telem.trace_on:
            end_fields: Dict[str, Any] = {"name": spec.name, "seed": seed,
                                          "duration_s": duration, "ok": ok}
            if error is not None:
                end_fields["error"] = error
            telem.trace("job_end", **end_fields)
        tracer.context = prev_context
        if collect_profile:
            profile = telem.get_profiler().snapshot()
            telem.swap_profiler(prev_profiler)
            if not prev_spans_on:
                telem.disable_profiling()
        if collect_physics:
            physics = phys.get_collector().snapshot()
            phys.swap_collector(prev_collector)
            if not prev_physics_on:
                phys.disable_physics()
        if collect_metrics:
            snapshot = telem.get_registry().snapshot()
            telem.swap_registry(prev_registry)
            if not prev_metrics_on:
                telem.disable_metrics()
    return ExperimentResult(
        name=spec.name,
        payload=to_jsonable(payload),
        seed=seed if spec.accepts_seed else None,
        params=dict(params or {}),
        duration_s=duration,
        peak_rss_kb=_peak_rss_kb(),
        version=repro.__version__,
        metrics=snapshot,
        profile=profile,
        physics=physics,
        run_id=run_id,
        job_id=jid,
    )


def execute_job_safe(name: str, params: Optional[Mapping[str, Any]] = None,
                     seed: Optional[int] = 0,
                     collect_metrics: bool = False,
                     collect_profile: bool = False,
                     collect_physics: bool = False) -> ExperimentResult:
    """:func:`execute_job`, but a raising experiment becomes an errored
    :class:`ExperimentResult` (``payload=None``, ``error`` set) instead
    of propagating — the unit of the batch runner's fault tolerance.

    ``MemoryError`` and ``SystemExit`` are captured too (a worker
    calling ``sys.exit`` must not kill its pool), carrying their class
    name in ``result.error`` so the retry policy can classify them as
    non-retryable; ``KeyboardInterrupt`` always propagates.

    Framework-level errors (unknown experiment name, bad params) still
    raise: they are caller bugs, not job failures.  This is also the
    chaos injection point: an armed ``REPRO_CHAOS`` schedule may kill,
    hang, or fail the job right here (see :mod:`repro.chaos`), and the
    failure-capture point: when capture is armed (sanitizer on, or
    ``REPRO_CAPTURE`` set — see :mod:`repro.sanitizer.bundle`), any
    failed job writes a replayable bundle before returning.
    """
    import repro
    from repro.sanitizer import runtime as sanit
    from repro.sanitizer.bundle import CaptureContext

    spec = registry.get(name)
    spec.bind(params=params, seed=seed)  # param errors are caller bugs: raise now
    # Pool workers inherit REPRO_SANITIZE through the environment; the
    # sync here makes the level effective whatever process we run in.
    sanit.sync_from_env()
    jid = ids.job_id_from_key(job_key(spec.name, params or {}, seed))
    sink = stream_events.sink() if stream_events.stream_on else None
    if sink is not None:
        # Announce before the chaos hook: a job that hangs right at
        # start must already be visible to the parent's stale check.
        sink.on_job_start(jid, spec.name,
                          seed if spec.accepts_seed else -1)
    capture = CaptureContext.arm_if_enabled()
    start = time.perf_counter()
    result: Optional[ExperimentResult] = None
    try:
        from repro import chaos

        if chaos.enabled():
            chaos.on_job_start(spec.name, seed)
        result = execute_job(name, params=params, seed=seed,
                             collect_metrics=collect_metrics,
                             collect_profile=collect_profile,
                             collect_physics=collect_physics)
        return result
    except (Exception, SystemExit) as exc:
        detail = str(exc)
        if isinstance(exc, SystemExit) and not detail:
            detail = repr(exc.code)
        result = ExperimentResult(
            name=spec.name,
            payload=None,
            seed=seed if spec.accepts_seed else None,
            params=dict(params or {}),
            duration_s=time.perf_counter() - start,
            peak_rss_kb=_peak_rss_kb(),
            version=repro.__version__,
            error=f"{type(exc).__name__}: {detail}",
            run_id=ids.current_run_id(),
            job_id=jid,
        )
        if capture is not None:
            try:
                capture.write_bundle(result, exc)
            except Exception:  # capture must never mask the job failure
                pass
        return result
    finally:
        if capture is not None:
            capture.restore()
        if sink is not None:
            sink.on_job_end(
                jid,
                result.outcome if result is not None else "error",
                result.duration_s if result is not None else None)


def _pool_worker(job: Tuple[str, Dict[str, Any], Optional[int], bool, bool, bool]
                 ) -> ExperimentResult:
    # Re-import inside the worker so spawn-based pools (macOS/Windows)
    # repopulate the registry; under fork this is a no-op.
    import repro.experiments  # noqa: F401

    name, params, seed, collect_metrics, collect_profile, collect_physics = job
    # The safe variant keeps one raising job from poisoning the pool
    # and aborting its completed siblings.
    return execute_job_safe(name, params=params, seed=seed,
                            collect_metrics=collect_metrics,
                            collect_profile=collect_profile,
                            collect_physics=collect_physics)


#: Temp files this much older than "now" are crash leftovers, not
#: concurrent writers, and are swept on cache init.
_TMP_MAX_AGE_S = 3600.0


class ResultCache:
    """On-disk JSON result cache keyed by ``(name, params, seed)``.

    Writes are crash- and contention-safe: each writer stages through a
    unique ``.tmp.<pid>.<nonce>`` file (two sweeps sharing one cache
    directory can never clobber each other's staging file), fsyncs, and
    atomically renames into place.  Reads quarantine corrupt entries —
    truncated JSON, an empty file, a wrong-schema record — by renaming
    them to ``*.corrupt`` and reporting a miss, so one torn write can
    never crash (or permanently wedge) a run.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.write_errors = 0
        self._write_warned = False
        self._sweep_stale_tmps()

    def _sweep_stale_tmps(self) -> None:
        """Remove staging files abandoned by crashed writers.

        Age-gated so a concurrent writer's live staging file survives.
        """
        if not self.root.is_dir():
            return
        cutoff = time.time() - _TMP_MAX_AGE_S
        for tmp in self.root.glob("*/*.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:  # raced with another sweeper: fine
                pass

    def key(self, name: str, params: Mapping[str, Any], seed: Optional[int]) -> str:
        # Shared with the sweep checkpoint: aliases resolve, params are
        # key-sorted, so insertion order never leaks into the key.
        return job_key(name, params, seed)

    def path(self, name: str, params: Mapping[str, Any], seed: Optional[int]) -> Path:
        return self.root / registry.resolve(name) / f"{self.key(name, params, seed)}.json"

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced removal
                pass

    def get(self, name: str, params: Mapping[str, Any],
            seed: Optional[int]) -> Optional[ExperimentResult]:
        path = self.path(name, params, seed)
        if not path.is_file():
            return None
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(text)
            if not isinstance(record, dict):
                raise ValueError("cache record is not a JSON object")
            return ExperimentResult.from_json_dict(record, cache_hit=True)
        except (ValueError, KeyError, TypeError):
            # Torn write or foreign schema: quarantine and miss.
            self._quarantine(path)
            return None

    def put(self, result: ExperimentResult) -> Optional[Path]:
        """Persist one result; returns its path, or ``None`` when the
        write failed (``ENOSPC``, ``EACCES``, ...) and execution should
        degrade to uncached — a full disk must fail the *cache*, never
        the job.  Failures tally in :attr:`write_errors` and warn once.
        """
        path = self.path(result.name, result.params, result.seed)
        record = result.to_json_dict()
        record["cache_hit"] = False
        text = json.dumps(record, indent=1, sort_keys=True)

        from repro import chaos

        tmp: Optional[Path] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if chaos.enabled() and chaos.tear_cache_write(result.name, result.seed):
                # Injected torn write: the final file holds truncated JSON,
                # as if this process died mid-write without the tmp dance.
                path.write_text(text[: max(1, len(text) // 2)])
                return path
            tmp = path.with_name(
                f"{path.name}.tmp.{os.getpid()}.{os.urandom(4).hex()}")
            with open(tmp, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            self._note_write_failure(path, exc)
            return None
        finally:
            if tmp is not None and tmp.exists():  # write or rename failed
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - raced removal
                    pass
        return path

    def _note_write_failure(self, path: Path, exc: OSError) -> None:
        self.write_errors += 1
        if telem.metrics_on:
            telem.counter("cache_write_errors_total").inc()
        if not self._write_warned:
            self._write_warned = True
            print(f"warning: result cache write failed ({path}: {exc}); "
                  f"continuing uncached", file=sys.stderr)


class _Pending:
    """One not-yet-finalized job in a batch."""

    __slots__ = ("index", "job", "job_id", "retries_used", "ready_at",
                 "started_at", "deadline")

    def __init__(self, index: int, job: Job, job_id: str = ""):
        self.index = index
        self.job = job
        self.job_id = job_id
        self.retries_used = 0
        self.ready_at = 0.0  # monotonic time before which not to start (backoff)
        self.started_at: Optional[float] = None
        self.deadline: Optional[float] = None


class ExperimentRunner:
    """Run experiment jobs with optional process fan-out and caching.

    ``max_workers=None`` or ``1`` runs jobs inline (no pool overhead —
    the right default for one fast experiment); ``max_workers=N`` fans
    misses out over ``N`` worker processes.  ``cache_dir=None`` disables
    the cache.

    ``collect_metrics=True`` runs every job with telemetry on: each
    result carries its own metrics snapshot, and :attr:`metrics` holds
    the parent-side merge across all jobs this runner executed (cache
    hits included — their stored snapshots are re-absorbed, so a fully
    cached re-run still reports what the hardware did).
    ``collect_profile=True`` does the same for span profiles into
    :attr:`profile`, and ``collect_physics=True`` for the domain
    observability layer (per-row heat maps, flip provenance, the
    mitigation audit trail) into :attr:`physics`.

    Batches are **fault tolerant**: a job that raises becomes an
    errored result (``error`` set, ``payload=None``) instead of
    aborting its completed siblings; errored results are never cached
    and are tallied in ``runner_jobs_total{outcome="error"}``.

    Hardening knobs:

    ``timeout_s``
        Default per-job wall-clock deadline (``Job.timeout_s``
        overrides per job).  A job past its deadline becomes a
        ``timeout``-outcome result; on the pool path the worker stuck
        on it is reclaimed by rebuilding the pool.
    ``retries`` / ``backoff_s``
        Retry budget for *transient* failures (see
        :data:`RETRYABLE_ERRORS`), with deterministic exponential
        backoff + jitter.  ``retries=0`` (the default) keeps runs
        strictly deterministic.  Retries tally in
        ``runner_retries_total`` and :attr:`retries_total`.
    ``max_pool_rebuilds``
        How many times a broken/hung pool is rebuilt (requeueing its
        in-flight jobs) before the runner degrades to serial in-process
        execution.  Rebuilds tally in ``runner_pool_rebuilds_total``
        and :attr:`pool_rebuilds`.
    ``checkpoint`` / ``resume``
        A :class:`~repro.experiments.checkpoint.SweepCheckpoint` (or a
        path to one).  Completed jobs are recorded as they finish; with
        ``resume=True`` (the default) previously checkpointed jobs are
        restored instead of re-executed — even when the cache is
        disabled or cold.

    Every finished job is also appended to the **run ledger** (see
    :mod:`repro.telemetry.ledger`) unless ``ledger=False`` or the
    ``REPRO_LEDGER=off`` environment switch disables it.

    **Live telemetry** (:mod:`repro.telemetry.events`): every batch
    runs under a run ID (``run_id``, auto-minted unless passed) and
    maintains a :class:`SweepProgress` view in :attr:`progress`.  With
    ``stream=True`` pool workers flush incremental metric deltas and
    heartbeats to the parent (``heartbeat_s`` between flushes), the
    merged live registry is available via :meth:`live_metrics` /
    :meth:`live_exposition` mid-run, and a running job whose heartbeat
    goes silent for ``stale_after_s`` is flagged (trace event
    ``heartbeat_stale``, counter ``runner_stale_heartbeats_total``,
    ``progress.stale_events``) *before* its timeout fires.
    ``on_progress`` — a ``callable(runner)`` — is invoked as jobs make
    progress (the ``--live`` renderer hooks in here).
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 max_workers: Optional[int] = None,
                 collect_metrics: bool = False,
                 collect_profile: bool = False,
                 collect_physics: bool = False,
                 ledger: Union[None, bool, RunLedger] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 0,
                 backoff_s: float = 0.1,
                 max_pool_rebuilds: int = 3,
                 checkpoint: Union[None, str, Path, SweepCheckpoint] = None,
                 resume: bool = True,
                 run_id: Optional[str] = None,
                 stream: Union[None, bool, EventStream] = None,
                 heartbeat_s: float = stream_events.DEFAULT_HEARTBEAT_S,
                 stale_after_s: Optional[float] = None,
                 on_progress: Optional[Any] = None,
                 ledger_command: str = "runner"):
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.run_id = run_id or ids.new_run_id()
        if stream is True:
            if stale_after_s is None:
                # Staleness must be able to fire before the deadline.
                stale_after_s = max(3 * heartbeat_s,
                                    stream_events.DEFAULT_STALE_AFTER_S * 0.75)
                if timeout_s:
                    stale_after_s = min(stale_after_s, timeout_s / 2.0)
            self.stream: Optional[EventStream] = EventStream(
                heartbeat_s=heartbeat_s, stale_after_s=stale_after_s)
        elif stream:
            self.stream = stream
        else:
            self.stream = None
        if self.stream is not None:
            collect_metrics = True  # deltas ride on the metric stream
        self.progress: Optional[SweepProgress] = None
        self.on_progress = on_progress
        self.collect_metrics = collect_metrics
        self.collect_profile = collect_profile
        self.collect_physics = collect_physics
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        if checkpoint is None or isinstance(checkpoint, SweepCheckpoint):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = SweepCheckpoint(checkpoint)
        self.resume = resume
        self.pool_rebuilds = 0
        self.retries_total = 0
        #: True once the rebuild budget was spent and the batch fell
        #: back to serial in-process execution (the service reports
        #: this as the ``degraded`` health state).
        self.degraded_to_serial = False
        self.ledger_command = ledger_command
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if collect_metrics else None
        )
        self.profile: Optional[SpanProfile] = (
            SpanProfile() if collect_profile else None
        )
        self.physics: Optional[PhysicsCollector] = (
            PhysicsCollector() if collect_physics else None
        )
        if ledger is None or ledger is True:
            self.ledger = default_ledger()
        elif ledger is False:
            self.ledger = None
        else:
            self.ledger = ledger

    # -- live telemetry --------------------------------------------------
    def live_metrics(self) -> MetricsRegistry:
        """A point-in-time registry copy: finalized job metrics plus the
        streamed deltas of every in-flight job.  Thread-safe; the
        ``--serve-metrics`` exporter calls this from its HTTP thread."""
        if self.stream is not None:
            return self.stream.consumer.live_registry(self.metrics)
        merged = MetricsRegistry()
        if self.metrics is not None:
            merged.merge(self.metrics.snapshot())
        return merged

    def live_exposition(self) -> str:
        """Prometheus exposition of :meth:`live_metrics` plus the sweep
        progress gauges — the ``/metrics`` endpoint body."""
        from repro.telemetry import export

        registry_copy = self.live_metrics()
        if self.progress is not None:
            registry_copy.merge(export.progress_registry(
                self.progress, workers=self.max_workers or 1).snapshot())
        return export.render_exposition(registry_copy)

    def _metrics_lock(self):
        """Streamed runs guard parent-side metric merges against the
        exporter thread reading through ``live_metrics``."""
        if self.stream is not None:
            return self.stream.consumer.lock
        import contextlib

        return contextlib.nullcontext()

    def _notify_progress(self) -> None:
        if self.on_progress is not None:
            try:
                self.on_progress(self)
            except Exception:  # a broken renderer must not kill the batch
                pass

    def _service_stream(self) -> None:
        """Parent-side streaming upkeep: drain queued worker events and
        flag newly stale heartbeats."""
        if self.stream is None:
            return
        self.stream.drain()
        for record in self.stream.check_stale():
            with self._metrics_lock():
                if self.metrics is not None:
                    self.metrics.counter("runner_stale_heartbeats_total").inc()
            if telem.trace_on:
                telem.trace("heartbeat_stale", job_id=record["job_id"],
                            pid=record["pid"], age_s=round(record["age_s"], 3),
                            run_id=self.run_id)

    def _absorb(self, result: ExperimentResult) -> None:
        """Account one finished job: merge its metric/span snapshots
        into the parent sinks and append it to the run ledger."""
        with self._metrics_lock():
            self._absorb_locked(result)

    def _absorb_locked(self, result: ExperimentResult) -> None:
        if self.metrics is not None:
            if result.metrics:
                self.metrics.merge(result.metrics)
            self.metrics.counter(
                "runner_jobs_total",
                cache_hit=str(result.cache_hit).lower(),
                outcome=result.outcome,
            ).inc()
            if result.outcome == "invariant":
                # Errored jobs carry no metrics snapshot (execute_job
                # raises before its snapshot can be returned), so the
                # violation is tallied here, parent-side.
                self.metrics.counter(
                    "sanitizer_violations_total",
                    subsystem=violation_subsystem(result.error),
                ).inc()
        if self.profile is not None and result.profile:
            self.profile.merge(result.profile)
        if self.physics is not None and result.physics:
            self.physics.merge(result.physics)
        if self.ledger is not None:
            self.ledger.record(result, command=self.ledger_command)

    def summary(self, results: Sequence[ExperimentResult]) -> Dict[str, Any]:
        """Aggregate view of one batch: counts by outcome plus the
        errored jobs' identities — what the CLI prints as the run
        summary so failures are surfaced, not silently dropped."""
        errored = [r for r in results if r.error]
        return {
            "run_id": self.run_id,
            "stale_heartbeats": (len(self.progress.stale_events)
                                 if self.progress is not None else 0),
            "jobs": len(results),
            "ok": len(results) - len(errored),
            "errors": len(errored),
            "timeouts": sum(r.outcome == "timeout" for r in errored),
            "invariants": sum(r.outcome == "invariant" for r in errored),
            "cache_hits": sum(r.cache_hit for r in results),
            "duration_s": sum(r.duration_s for r in results),
            "retries": self.retries_total,
            "pool_rebuilds": self.pool_rebuilds,
            "errored": [
                {"name": r.name, "seed": r.seed, "params": dict(r.params),
                 "error": r.error}
                for r in errored
            ],
        }

    def run_one(self, name: str, params: Optional[Mapping[str, Any]] = None,
                seed: Optional[int] = 0) -> ExperimentResult:
        """Run (or fetch from cache) a single experiment.

        Unlike the batch path, a raising experiment propagates here —
        one job means there are no siblings to protect.
        """
        params = dict(params or {})
        with ids.run_scope(self.run_id):
            if self.cache is not None:
                hit = self.cache.get(name, params, seed)
                if hit is not None:
                    self._absorb(hit)
                    return hit
            result = execute_job(name, params=params, seed=seed,
                                 collect_metrics=self.collect_metrics,
                                 collect_profile=self.collect_profile,
                                 collect_physics=self.collect_physics)
            if self.cache is not None and self.cache.put(result) is None:
                self._count_cache_write_error()
            self._absorb(result)
            return result

    # -- batch execution ------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[ExperimentResult]:
        """Run a batch of jobs, preserving input order in the output.

        Checkpointed completions and cache hits resolve up front; only
        true misses execute.  A raising job yields an errored result in
        its slot, a job past its deadline a ``timeout`` one; completed
        siblings are kept, and nothing failed reaches the cache or the
        checkpoint.  Results are flushed (cache + checkpoint + ledger)
        as they finish, so an interrupt loses nothing already done.
        """
        with ids.run_scope(self.run_id):
            return self._run_batch(jobs)

    def _run_batch(self, jobs: Sequence[Job]) -> List[ExperimentResult]:
        results: List[Optional[ExperimentResult]] = [None] * len(jobs)
        restored: Dict[str, ExperimentResult] = {}
        if self.checkpoint is not None and self.resume:
            restored = self.checkpoint.results()
        self.progress = SweepProgress(run_id=self.run_id)
        if self.stream is not None:
            self.stream.attach(self.progress)
        pending: Deque[_Pending] = deque()
        for i, job in enumerate(jobs):
            registry.get(job.name)  # fail fast on unknown names
            key = job_key(job.name, job.params, job.seed)
            jid = ids.job_id_from_key(key)
            self.progress.add_job(jid, registry.resolve(job.name), job.seed)
            if restored:
                hit = restored.get(key)
                if hit is not None:
                    results[i] = hit
                    self.progress.mark_done(jid, hit.outcome, cache_hit=True,
                                            duration_s=hit.duration_s)
                    self._absorb(hit)
                    continue
            if self.cache is not None:
                hit = self.cache.get(job.name, job.params, job.seed)
                if hit is not None:
                    results[i] = hit
                    if self.checkpoint is not None:
                        self.checkpoint.record(hit)
                    self.progress.mark_done(jid, hit.outcome, cache_hit=True,
                                            duration_s=hit.duration_s)
                    self._absorb(hit)
                    continue
            pending.append(_Pending(i, job, jid))
        self._notify_progress()

        if pending:
            workers = self.max_workers or 1
            try:
                if workers > 1 and len(pending) > 1:
                    self._drain_pool(pending, results,
                                     min(workers, len(pending)))
                else:
                    self._drain_serial(pending, results)
            finally:
                if self.stream is not None:
                    self.stream.drain()  # late job_end events
                    stream_events.disarm()
        self._notify_progress()
        return [r for r in results if r is not None]

    def _count_cache_write_error(self) -> None:
        """Tally one degraded (failed) cache write in the batch metrics."""
        with self._metrics_lock():
            if self.metrics is not None:
                self.metrics.counter("cache_write_errors_total").inc()

    def _job_timeout(self, job: Job) -> Optional[float]:
        return job.timeout_s if job.timeout_s is not None else self.timeout_s

    def _timeout_result(self, job: Job, timeout_s: Optional[float],
                        elapsed: float) -> ExperimentResult:
        import repro

        spec = registry.get(job.name)
        limit = timeout_s if timeout_s is not None else 0.0
        return ExperimentResult(
            name=spec.name,
            payload=None,
            seed=job.seed if spec.accepts_seed else None,
            params=dict(job.params),
            duration_s=elapsed,
            peak_rss_kb=0,
            version=repro.__version__,
            error=f"JobTimeout: exceeded {limit:g}s wall-clock",
            run_id=self.run_id,
            job_id=ids.job_id_from_key(
                job_key(job.name, job.params, job.seed)),
        )

    def _finalize(self, p: _Pending, result: ExperimentResult,
                  results: List[Optional[ExperimentResult]]) -> None:
        """Commit one finished job: slot, cache, checkpoint, absorb."""
        results[p.index] = result
        if self.cache is not None and result.error is None:
            if self.cache.put(result) is None:
                self._count_cache_write_error()
        if self.checkpoint is not None:
            self.checkpoint.record(result)
        if self.progress is not None and p.job_id:
            self.progress.mark_done(p.job_id, result.outcome,
                                    duration_s=result.duration_s)
        self._absorb(result)
        self._notify_progress()

    def _handle_result(self, p: _Pending, result: ExperimentResult,
                       pending: Deque[_Pending],
                       results: List[Optional[ExperimentResult]]) -> None:
        """Finalize a result, or requeue it with backoff when a retry
        budget remains and the failure is classified transient."""
        if (result.error is not None
                and p.retries_used < self.retries
                and is_retryable(result.error)):
            p.retries_used += 1
            p.ready_at = time.monotonic() + retry_backoff_s(
                self.backoff_s, p.job, p.retries_used)
            self.retries_total += 1
            with self._metrics_lock():
                if self.metrics is not None:
                    self.metrics.counter(
                        "runner_retries_total",
                        error=error_class(result.error)).inc()
            if self.progress is not None and p.job_id:
                self.progress.retries += 1
                self.progress.mark_pending(p.job_id)
            pending.append(p)
            return
        self._finalize(p, result, results)

    def _drain_serial(self, pending: Deque[_Pending],
                      results: List[Optional[ExperimentResult]]) -> None:
        """In-process execution: the single-worker and degraded paths.

        Timeouts are enforced with ``SIGALRM`` when possible (main
        thread, POSIX); results are finalized as they complete, so an
        interrupt at any point keeps everything already finished.

        Heartbeat staleness cannot be observed here — the parent *is*
        the worker — so streaming only short-circuits events in-process
        for the progress view.
        """
        if self.stream is not None and not stream_events.stream_on:
            self.stream.arm_local()
        while pending:
            p = pending.popleft()
            delay = p.ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if self.progress is not None and p.job_id:
                self.progress.mark_running(p.job_id, os.getpid())
                self._notify_progress()
            timeout_s = self._job_timeout(p.job)
            start = time.monotonic()
            try:
                result = call_with_deadline(
                    lambda: execute_job_safe(
                        p.job.name, params=p.job.params, seed=p.job.seed,
                        collect_metrics=self.collect_metrics,
                        collect_profile=self.collect_profile,
                        collect_physics=self.collect_physics),
                    timeout_s)
            except JobTimeout:
                # The alarm fired outside the guarded job body.
                result = self._timeout_result(
                    p.job, timeout_s, time.monotonic() - start)
            self._handle_result(p, result, pending, results)

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        if self.stream is not None:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=self.stream.pool_initializer(),
                initargs=self.stream.pool_initargs())
        return ProcessPoolExecutor(max_workers=workers)

    def _submit(self, pool: ProcessPoolExecutor, p: _Pending):
        fut = pool.submit(_pool_worker, (p.job.name, dict(p.job.params),
                                         p.job.seed, self.collect_metrics,
                                         self.collect_profile,
                                         self.collect_physics))
        timeout_s = self._job_timeout(p.job)
        p.started_at = time.monotonic()
        p.deadline = (p.started_at + timeout_s) if timeout_s else None
        if self.progress is not None and p.job_id:
            self.progress.mark_running(p.job_id)
        return fut

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*, hung or broken workers included."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already-reaped worker
                pass

    def _rebuild_pool(self, pool: ProcessPoolExecutor,
                      inflight: Dict[Any, _Pending],
                      pending: Deque[_Pending],
                      workers: int) -> Optional[ProcessPoolExecutor]:
        """Requeue in-flight jobs and stand up a fresh executor.

        Returns ``None`` once the rebuild budget is spent — the caller
        degrades to serial execution.
        """
        for fut, p in list(inflight.items()):
            fut.cancel()
            p.started_at = None
            p.deadline = None
            if self.progress is not None and p.job_id:
                self.progress.mark_pending(p.job_id)
            pending.appendleft(p)
        inflight.clear()
        self._kill_pool(pool)
        if self.pool_rebuilds >= self.max_pool_rebuilds:
            return None
        self.pool_rebuilds += 1
        with self._metrics_lock():
            if self.metrics is not None:
                self.metrics.counter("runner_pool_rebuilds_total").inc()
        return self._make_pool(workers)

    def _drain_completed(self, inflight: Dict[Any, _Pending],
                         results: List[Optional[ExperimentResult]]) -> None:
        """Interrupt path: flush every future that already completed."""
        for fut, p in list(inflight.items()):
            if not fut.done() or fut.cancelled():
                continue
            try:
                result = fut.result(timeout=0)
            except BaseException:  # broken pool / cancelled: nothing to keep
                continue
            self._finalize(p, result, results)
        inflight.clear()

    def _drain_pool(self, pending: Deque[_Pending],
                    results: List[Optional[ExperimentResult]],
                    workers: int) -> None:
        """Process-pool execution with deadlines and crash recovery.

        At most ``workers`` jobs are in flight, so a submitted job
        starts (nearly) immediately and its submit-time deadline is a
        faithful run-time deadline.
        """
        pool: Optional[ProcessPoolExecutor] = self._make_pool(workers)
        inflight: Dict[Any, _Pending] = {}
        # Streaming needs the wait loop to wake regularly to drain the
        # event queue and age heartbeats, even with nothing completing.
        poll_s = (min(self.stream.heartbeat_s, 0.25)
                  if self.stream is not None else None)
        try:
            while pending or inflight:
                # Fill the submission window with ready jobs.
                need_rebuild = False
                now = time.monotonic()
                for _ in range(len(pending)):
                    if len(inflight) >= workers:
                        break
                    p = pending.popleft()
                    if p.ready_at > now:
                        pending.append(p)  # still backing off
                        continue
                    try:
                        inflight[self._submit(pool, p)] = p
                    except BrokenProcessPool:
                        pending.appendleft(p)
                        need_rebuild = True
                        break

                if not need_rebuild:
                    if not inflight:
                        # Everything left is backing off: sleep to the
                        # soonest ready time and try again.
                        wake = min(p.ready_at for p in pending)
                        time.sleep(max(0.0, wake - time.monotonic()))
                        continue

                    wake_points = [p.deadline for p in inflight.values()
                                   if p.deadline is not None]
                    wake_points += [p.ready_at for p in pending if p.ready_at > 0]
                    timeout = (max(0.0, min(wake_points) - time.monotonic())
                               if wake_points else None)
                    if poll_s is not None:
                        timeout = poll_s if timeout is None else min(timeout, poll_s)
                    done, _ = futures_wait(list(inflight), timeout=timeout,
                                           return_when=FIRST_COMPLETED)
                    self._service_stream()
                    for fut in done:
                        p = inflight.pop(fut)
                        try:
                            result = fut.result()
                        except BrokenProcessPool:
                            pending.appendleft(p)
                            need_rebuild = True
                        except CancelledError:  # pragma: no cover - defensive
                            pending.appendleft(p)
                        else:
                            self._handle_result(p, result, pending, results)

                if not need_rebuild:
                    # Enforce deadlines on whatever is still in flight.
                    now = time.monotonic()
                    for fut, p in list(inflight.items()):
                        if p.deadline is None or now < p.deadline:
                            continue
                        del inflight[fut]
                        if fut.cancel():
                            # Never started (backlogged): the deadline
                            # was premature, not exceeded.
                            p.started_at = None
                            p.deadline = None
                            if self.progress is not None and p.job_id:
                                self.progress.mark_pending(p.job_id)
                            pending.appendleft(p)
                            continue
                        elapsed = now - (p.started_at or now)
                        self._finalize(
                            p, self._timeout_result(
                                p.job, self._job_timeout(p.job), elapsed),
                            results)
                        # The worker is still grinding on the expired
                        # job; reclaim it by rebuilding the pool.
                        need_rebuild = True

                if need_rebuild:
                    pool = self._rebuild_pool(pool, inflight, pending, workers)
                    if pool is None:
                        # Budget spent: the pool keeps dying.  Finish
                        # the batch serially in-process.
                        self.degraded_to_serial = True
                        self._drain_serial(pending, results)
                        return
        except KeyboardInterrupt:
            # Ctrl-C: keep every job that already finished, then stop.
            self._drain_completed(inflight, results)
            if pool is not None:
                self._kill_pool(pool)
                pool = None
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    def sweep(self, name: str, seeds: int, base_seed: int = 0,
              params: Optional[Mapping[str, Any]] = None) -> List[ExperimentResult]:
        """Run ``seeds`` deterministic-seed replicas of one experiment."""
        spec = registry.get(name)
        if not spec.accepts_seed:
            raise ValueError(
                f"experiment {spec.name!r} takes no seed; a sweep would run "
                f"{seeds} identical jobs"
            )
        jobs = [Job(spec.name, dict(params or {}), derive_seed(base_seed, i))
                for i in range(seeds)]
        return self.run(jobs)
