"""Execute experiments: one-shot, fan-out, and seed sweeps.

The :class:`ExperimentRunner` turns ``(experiment, params, seed)`` jobs
into :class:`~repro.experiments.result.ExperimentResult` records:

* **parallel** — jobs fan out through a
  :class:`concurrent.futures.ProcessPoolExecutor` (experiments are
  CPU-bound numpy code, so processes, not threads);
* **deterministic** — sweep seeds derive from ``(base_seed, index)``
  via SHA-256, so the same sweep always runs the same jobs;
* **measured** — every job records wall-clock duration and the worker's
  peak RSS;
* **cached** — results persist to an on-disk JSON cache keyed by
  ``(name, params, seed)``; a re-run becomes a near-instant cache hit.

Seed handling is introspected from each experiment's registered
signature (:mod:`repro.experiments.registry`), so a ``TypeError``
raised *inside* an experiment propagates instead of being mistaken for
"takes no seed".
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments import registry
from repro.experiments.result import ExperimentResult, canonical_json, to_jsonable
from repro.telemetry import MetricsRegistry
from repro.telemetry import runtime as telem

try:  # not available on Windows; RSS reads as 0 there
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Job:
    """One unit of work: an experiment name, bound params, and a seed."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = 0


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-spread per-job seed for sweeps.

    SHA-256 of ``"base:index"`` truncated to 31 bits: stable across
    runs, machines, and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _peak_rss_kb() -> int:
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def execute_job(name: str, params: Optional[Mapping[str, Any]] = None,
                seed: Optional[int] = 0,
                collect_metrics: bool = False) -> ExperimentResult:
    """Run one experiment in-process and return its structured result.

    This is the single run-one-experiment path shared by the CLI's
    ``run``/``report``/``sweep`` and the pool workers.  The payload is
    normalized to JSON-safe types here so cached and fresh results are
    indistinguishable downstream.

    With ``collect_metrics`` the job runs against its own fresh
    telemetry registry; the snapshot is attached to the result (and the
    caller's registry is restored afterwards), so per-job metrics can be
    shipped across process boundaries and merged in the parent.
    """
    import repro

    spec = registry.get(name)
    kwargs = spec.bind(params=params, seed=seed)
    if collect_metrics:
        prev_registry = telem.swap_registry(MetricsRegistry())
        prev_on = telem.metrics_on
        telem.enable_metrics()
    if telem.trace_on:
        telem.trace("job_start", name=spec.name, seed=seed)
    snapshot: Optional[Dict[str, Any]] = None
    start = time.perf_counter()
    try:
        payload = spec.fn(**kwargs)
    finally:
        duration = time.perf_counter() - start
        if telem.trace_on:
            telem.trace("job_end", name=spec.name, seed=seed, duration_s=duration)
        if collect_metrics:
            snapshot = telem.get_registry().snapshot()
            telem.swap_registry(prev_registry)
            if not prev_on:
                telem.disable_metrics()
    return ExperimentResult(
        name=spec.name,
        payload=to_jsonable(payload),
        seed=seed if spec.accepts_seed else None,
        params=dict(params or {}),
        duration_s=duration,
        peak_rss_kb=_peak_rss_kb(),
        version=repro.__version__,
        metrics=snapshot,
    )


def _pool_worker(job: Tuple[str, Dict[str, Any], Optional[int], bool]) -> ExperimentResult:
    # Re-import inside the worker so spawn-based pools (macOS/Windows)
    # repopulate the registry; under fork this is a no-op.
    import repro.experiments  # noqa: F401

    name, params, seed, collect_metrics = job
    return execute_job(name, params=params, seed=seed, collect_metrics=collect_metrics)


class ResultCache:
    """On-disk JSON result cache keyed by ``(name, params, seed)``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def key(self, name: str, params: Mapping[str, Any], seed: Optional[int]) -> str:
        canonical = registry.resolve(name)
        # Insertion order must not leak into the key: two params dicts
        # holding the same bindings always hash identically.
        ordered = {k: params[k] for k in sorted(params)}
        blob = canonical_json({"name": canonical, "params": ordered, "seed": seed})
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def path(self, name: str, params: Mapping[str, Any], seed: Optional[int]) -> Path:
        return self.root / registry.resolve(name) / f"{self.key(name, params, seed)}.json"

    def get(self, name: str, params: Mapping[str, Any],
            seed: Optional[int]) -> Optional[ExperimentResult]:
        path = self.path(name, params, seed)
        if not path.is_file():
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):  # torn write → treat as miss
            return None
        return ExperimentResult.from_json_dict(record, cache_hit=True)

    def put(self, result: ExperimentResult) -> Path:
        path = self.path(result.name, result.params, result.seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = result.to_json_dict()
        record["cache_hit"] = False
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record, indent=1, sort_keys=True))
        os.replace(tmp, path)
        return path


class ExperimentRunner:
    """Run experiment jobs with optional process fan-out and caching.

    ``max_workers=None`` or ``1`` runs jobs inline (no pool overhead —
    the right default for one fast experiment); ``max_workers=N`` fans
    misses out over ``N`` worker processes.  ``cache_dir=None`` disables
    the cache.

    ``collect_metrics=True`` runs every job with telemetry on: each
    result carries its own metrics snapshot, and :attr:`metrics` holds
    the parent-side merge across all jobs this runner executed (cache
    hits included — their stored snapshots are re-absorbed, so a fully
    cached re-run still reports what the hardware did).
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 max_workers: Optional[int] = None,
                 collect_metrics: bool = False):
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.collect_metrics = collect_metrics
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if collect_metrics else None
        )

    def _absorb(self, result: ExperimentResult) -> None:
        """Merge one job's metric snapshot into the parent registry."""
        if self.metrics is None:
            return
        if result.metrics:
            self.metrics.merge(result.metrics)
        self.metrics.counter("runner_jobs_total",
                             cache_hit=str(result.cache_hit).lower()).inc()

    def run_one(self, name: str, params: Optional[Mapping[str, Any]] = None,
                seed: Optional[int] = 0) -> ExperimentResult:
        """Run (or fetch from cache) a single experiment."""
        params = dict(params or {})
        if self.cache is not None:
            hit = self.cache.get(name, params, seed)
            if hit is not None:
                self._absorb(hit)
                return hit
        result = execute_job(name, params=params, seed=seed,
                             collect_metrics=self.collect_metrics)
        if self.cache is not None:
            self.cache.put(result)
        self._absorb(result)
        return result

    def run(self, jobs: Sequence[Job]) -> List[ExperimentResult]:
        """Run a batch of jobs, preserving input order in the output.

        Cache hits resolve up front; only misses hit the process pool.
        """
        results: List[Optional[ExperimentResult]] = [None] * len(jobs)
        misses: List[Tuple[int, Job]] = []
        for i, job in enumerate(jobs):
            registry.get(job.name)  # fail fast on unknown names
            if self.cache is not None:
                hit = self.cache.get(job.name, job.params, job.seed)
                if hit is not None:
                    results[i] = hit
                    continue
            misses.append((i, job))

        if misses:
            workers = self.max_workers or 1
            if workers > 1 and len(misses) > 1:
                payloads = [(j.name, dict(j.params), j.seed, self.collect_metrics)
                            for _, j in misses]
                with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
                    fresh = list(pool.map(_pool_worker, payloads))
            else:
                fresh = [execute_job(j.name, params=j.params, seed=j.seed,
                                     collect_metrics=self.collect_metrics)
                         for _, j in misses]
            for (i, _job), result in zip(misses, fresh):
                results[i] = result
                if self.cache is not None:
                    self.cache.put(result)
        ordered = [r for r in results if r is not None]
        for result in ordered:
            self._absorb(result)
        return ordered

    def sweep(self, name: str, seeds: int, base_seed: int = 0,
              params: Optional[Mapping[str, Any]] = None) -> List[ExperimentResult]:
        """Run ``seeds`` deterministic-seed replicas of one experiment."""
        spec = registry.get(name)
        if not spec.accepts_seed:
            raise ValueError(
                f"experiment {spec.name!r} takes no seed; a sweep would run "
                f"{seeds} identical jobs"
            )
        jobs = [Job(spec.name, dict(params or {}), derive_seed(base_seed, i))
                for i in range(seeds)]
        return self.run(jobs)
