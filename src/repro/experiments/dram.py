"""§II–§III field-study and characterization experiments: Figure 1,
isolation violations, data-pattern dependence, fleet exposure, and the
system–memory co-design wins."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.attacks.invariants import check_read_isolation, check_write_isolation
from repro.core.scenarios import full_scale_scenario
from repro.dram.stream import CommandStream
from repro.experiments.registry import experiment
from repro.fieldstudy.campaign import run_campaign


def _double_sided_sweep(victims: int, pressure: int,
                        first_victim: int = 64, stride: int = 3) -> CommandStream:
    """The bracketed double-sided hammer pattern as one command stream."""
    stream = CommandStream()
    for i in range(victims):
        victim = first_victim + stride * i
        stream.act(victim - 1, pressure).act(victim + 1, pressure)
    return stream


# ----------------------------------------------------------------------
# Baseline: one bank, one double-sided hammer pass
# ----------------------------------------------------------------------
@experiment(
    "rowhammer_basic",
    claim="Baseline double-sided hammer on one bank: activations, refreshes, flips",
    section="II",
    tags=("dram", "rowhammer", "telemetry"),
    aliases=("basic",),
    params_schema={
        "victims": "number of victim rows bracketed by aggressor pairs",
        "pressure": "activations per aggressor side (default: half the window budget)",
    },
)
def rowhammer_basic(seed: int = 0, victims: int = 64, pressure: int = 0) -> Dict:
    """The smallest end-to-end RowHammer run, reported as raw rates.

    Brackets ``victims`` rows with aggressor pairs, hammers each side
    ``pressure`` times within one refresh window, then refreshes the
    disturbed rows.  The payload reports exactly the figures the bank
    telemetry counts (activations, refreshes, bit flips), making this
    the canonical cross-check for ``repro run --metrics`` /
    ``repro stats``.
    """
    scenario = full_scale_scenario("B", 2013.0)
    module = scenario.make_module(serial="rowhammer-basic", seed=seed)
    bank = module.bank(0)
    pressure = pressure or scenario.attack_budget // 2
    bank.execute(_double_sided_sweep(victims, pressure).ref_all())
    return {
        "activations": bank.stats.activations,
        "refreshes": bank.stats.refreshes,
        "bit_flips": bank.stats.flips_materialized,
        "victims": victims,
        "pressure_per_side": pressure,
        "flips_per_victim": bank.stats.flips_materialized / victims,
    }


# ----------------------------------------------------------------------
# F1 / C1: the Figure 1 campaign
# ----------------------------------------------------------------------
@experiment(
    "fig1_error_rates",
    claim="Figure 1: errors/10^9 cells vs manufacture date (129 modules, 110 vulnerable)",
    section="II",
    tags=("dram", "rowhammer", "fieldstudy"),
    aliases=("f1",),
)
def fig1_error_rates(seed: int = 0) -> Dict:
    """Regenerate Figure 1: errors/10^9 cells vs manufacture date."""
    summary = run_campaign(seed=seed)
    return {
        "modules_tested": summary.modules_tested,
        "modules_vulnerable": summary.modules_vulnerable,
        "earliest_vulnerable_date": summary.earliest_vulnerable_date,
        "all_2012_2013_vulnerable": summary.all_vulnerable_between(2012.0, 2014.0),
        "yearly_mean_rate": {m: summary.yearly_mean_rate(m) for m in ("A", "B", "C")},
        "peak_rate": {m: summary.peak_errors_per_billion(m) for m in ("A", "B", "C")},
        "results": summary.results,
    }


# ----------------------------------------------------------------------
# C2: memory-isolation invariant violations
# ----------------------------------------------------------------------
@experiment(
    "isolation_violations",
    claim="Read and write loops both corrupt other rows, never their own",
    section="II",
    tags=("dram", "rowhammer", "invariants"),
    aliases=("c2",),
    params_schema={"reads": "access-loop length for each isolation check"},
)
def isolation_violations(seed: int = 0, reads: int = 2_600_000) -> Dict:
    """Show reads and writes both corrupt *other* rows, never their own."""
    scenario = full_scale_scenario("B", 2013.0)
    module_r = scenario.make_module(serial="iso-read", seed=seed)
    module_w = scenario.make_module(serial="iso-write", seed=seed + 1)
    read_report = check_read_isolation(module_r, bank=0, accessed_row=500, read_count=reads)
    write_report = check_write_isolation(module_w, bank=0, accessed_row=500, write_count=reads)
    return {
        "read": read_report,
        "write": write_report,
        "read_violated": read_report.violated,
        "write_violated": write_report.violated,
        "read_self_clean": not read_report.accessed_row_changed,
        "write_self_clean": not write_report.accessed_row_changed,
    }


# ----------------------------------------------------------------------
# Extension: data-pattern dependence of disturbance errors (ISCA'14)
# ----------------------------------------------------------------------
@experiment(
    "pattern_dependence_study",
    claim="Stripe data patterns couple hardest; solid fills relieve victims (DPD)",
    section="II",
    tags=("dram", "rowhammer", "dpd"),
    aliases=("dpd",),
)
def pattern_dependence_study(
    victims: int = 200,
    seed: int = 0,
    patterns: Sequence[str] = ("rowstripe", "checkered", "random", "solid1", "colstripe"),
) -> List[Dict]:
    """Flips per data pattern — the original study's DPD observation.

    Stripe-family fills (aggressor opposing the victim) maximize
    coupling; solid fills relieve aggressor-sensitive cells; random
    data sits in between.  Same module, same pressure, only the fill
    changes.
    """
    scenario = full_scale_scenario("B", 2013.0)
    pressure = scenario.attack_budget // 2
    out = []
    for pattern in patterns:
        module = scenario.make_module(serial="dpd", seed=seed, default_pattern=pattern)
        bank = module.bank(0)
        bank.execute(_double_sided_sweep(victims, pressure).settle())
        flips = bank.stats.flips_materialized
        out.append({"pattern": pattern, "flips": flips})
    return out


# ----------------------------------------------------------------------
# Extension: fleet-scale exposure (§III field-study context)
# ----------------------------------------------------------------------
@experiment(
    "fleet_study",
    claim="Data-center exposure from the vintage mix, and the refresh-patch payoff",
    section="III",
    tags=("dram", "rowhammer", "fieldstudy", "fleet"),
    aliases=("fleet",),
)
def fleet_study(seed: int = 0, servers: int = 1500) -> Dict:
    """Data-center exposure from the vintage mix, and the patch payoff."""
    from repro.fieldstudy.fleet import fleet_exposure, patch_rollout_study

    exposure = fleet_exposure(servers=servers, seed=seed)
    rollout = patch_rollout_study(servers=servers, seed=seed)
    return {
        "vulnerable_fraction": exposure.vulnerable_fraction,
        "compromised_servers": exposure.compromised_servers,
        "by_year": exposure.by_year,
        "patch_rollout": rollout,
    }


# ----------------------------------------------------------------------
# Extension: intelligent-controller co-design wins (§II-C / §IV)
# ----------------------------------------------------------------------
@experiment(
    "codesign_study",
    claim="AL-DRAM latency headroom + online content-aware retention profiling",
    section="IV",
    tags=("dram", "codesign", "retention"),
    aliases=("codesign",),
)
def codesign_study(seed: int = 0) -> Dict:
    """The system-memory co-design argument, quantified twice over.

    1. **AL-DRAM**: per-module latency profiling recovers double-digit
       access-latency headroom the one-size-fits-all spec wastes.
    2. **Online (content-aware) retention profiling**: testing rows
       against their *resident* data catches DPD failures that a
       bounded static campaign misses — with zero escapes, because the
       test runs before a full retention interval elapses under the
       hazardous content.
    """
    from repro.dram.latency import aldram_study
    from repro.retention.online_profiling import simulate_online_profiling
    from repro.retention.params import RetentionParams
    from repro.retention.population import CellPopulation

    latency_rows = aldram_study(n_modules=12, seed=seed)
    mean_speedup = sum(r["speedup_fraction"] for r in latency_rows) / len(latency_rows)

    params = RetentionParams(
        tail_fraction=3e-3, vrt_fraction=0.0, dpd_fraction=0.7, dpd_min_factor=0.2
    )
    population = CellPopulation(512, 256, params, seed=seed)
    profiling = simulate_online_profiling(population, generations=12, seed=seed)
    return {
        "aldram_rows": latency_rows,
        "aldram_mean_speedup": mean_speedup,
        "online_discovered": len(set(profiling.discovered_online)),
        "static_discovered": len(profiling.discovered_static),
        "static_escapes": profiling.escapes_static,
        "online_escapes": profiling.escapes_online,
    }
