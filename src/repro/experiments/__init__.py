"""The experiment framework: declarative registry + parallel runner.

Importing this package registers every paper experiment (split by paper
section into :mod:`~repro.experiments.dram`, ``attacks``,
``mitigations``, ``retention``, ``flash``, ``emerging``) and re-exports
them by name, so ``from repro.experiments import fig1_error_rates``
keeps working exactly like the old monolithic
``repro.core.experiment`` module did.

Framework surface:

* :func:`~repro.experiments.registry.experiment` — the registration
  decorator (name, claim, section, tags, aliases, params_schema);
* :mod:`~repro.experiments.registry` — lookup by name or legacy alias,
  signature-introspected seed/param handling;
* :class:`~repro.experiments.runner.ExperimentRunner` — process-pool
  fan-out, deterministic sweep seeds, on-disk result cache;
* :class:`~repro.experiments.result.ExperimentResult` — payload +
  provenance (seed, params, duration, peak RSS, version).
"""

from repro.experiments import registry
from repro.experiments.registry import (
    DuplicateExperimentError,
    ExperimentSpec,
    ParamSpec,
    UnknownExperimentError,
    experiment,
)
from repro.experiments.result import ExperimentResult, canonical_json, to_jsonable

# Importing the section modules populates the registry.
from repro.experiments.attacks import (
    attack_gallery,
    multibank_study,
    sidedness_ablation,
    userlevel_attack_study,
)
from repro.experiments.dram import (
    codesign_study,
    fig1_error_rates,
    fleet_study,
    isolation_violations,
    pattern_dependence_study,
    rowhammer_basic,
)
from repro.experiments.emerging import emerging_memory_study, pcm_study
from repro.experiments.flash import (
    fcr_study,
    flash_error_sweep,
    recovery_study,
    twostep_lifetime_study,
    twostep_study,
    vref_tuning_study,
)
from repro.experiments.mitigations import (
    cra_tradeoff,
    ecc_study,
    mitigation_comparison,
    para_controller_check,
    para_reliability,
    refresh_multiplier_sweep,
    trr_bypass_study,
)
from repro.experiments.retention import raidr_rowhammer_interaction, retention_study

# Runner imports come last: repro.experiments.runner imports the
# registry from this package.
from repro.experiments.checkpoint import CHECKPOINT_SCHEMA, SweepCheckpoint, job_key
from repro.experiments.runner import (
    ExperimentRunner,
    Job,
    JobTimeout,
    NONRETRYABLE_ERRORS,
    RETRYABLE_ERRORS,
    ResultCache,
    call_with_deadline,
    derive_seed,
    error_class,
    execute_job,
    execute_job_safe,
    is_retryable,
    retry_backoff_s,
)

#: The single run-one-experiment entry point (CLI ``run``/``report``/
#: ``sweep`` and the pool workers all go through it).
run_experiment = execute_job

get = registry.get
names = registry.names
invocable_names = registry.invocable_names
all_specs = registry.all_specs

__all__ = [
    # framework
    "experiment",
    "registry",
    "ExperimentSpec",
    "ParamSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "ResultCache",
    "Job",
    "UnknownExperimentError",
    "DuplicateExperimentError",
    "derive_seed",
    "execute_job",
    "execute_job_safe",
    "run_experiment",
    "JobTimeout",
    "RETRYABLE_ERRORS",
    "NONRETRYABLE_ERRORS",
    "call_with_deadline",
    "error_class",
    "is_retryable",
    "retry_backoff_s",
    "SweepCheckpoint",
    "CHECKPOINT_SCHEMA",
    "job_key",
    "to_jsonable",
    "canonical_json",
    "get",
    "names",
    "invocable_names",
    "all_specs",
    # experiments, by paper section
    "rowhammer_basic",
    "fig1_error_rates",
    "isolation_violations",
    "pattern_dependence_study",
    "fleet_study",
    "codesign_study",
    "attack_gallery",
    "sidedness_ablation",
    "userlevel_attack_study",
    "multibank_study",
    "refresh_multiplier_sweep",
    "ecc_study",
    "para_reliability",
    "para_controller_check",
    "cra_tradeoff",
    "mitigation_comparison",
    "trr_bypass_study",
    "retention_study",
    "raidr_rowhammer_interaction",
    "flash_error_sweep",
    "fcr_study",
    "vref_tuning_study",
    "recovery_study",
    "twostep_study",
    "twostep_lifetime_study",
    "pcm_study",
    "emerging_memory_study",
]
