"""Structured experiment results.

An :class:`ExperimentResult` is the unit the runner, the cache, the CLI
and the report writer all exchange: the experiment's (JSON-safe)
payload plus full provenance — seed, bound parameters, wall-clock
duration, peak RSS, and the package version that produced it.  Bare
dicts no longer cross the experiment boundary.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def to_jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment payloads to JSON types.

    Dataclasses become dicts, numpy arrays/scalars become lists/numbers,
    generic objects fall back to their public ``__dict__``; anything
    else is ``repr``-ed.  The conversion is deterministic for a
    deterministic payload, which is what makes result caching and the
    same-seed ⇒ byte-identical-JSON guarantee possible.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: to_jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return to_jsonable(value.item())  # numpy scalar
        except Exception:  # pragma: no cover - exotic .item() objects
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return {k: to_jsonable(v) for k, v in vars(value).items() if not k.startswith("_")}
    return repr(value)


def canonical_json(value: Any) -> str:
    """The canonical (sorted-keys, compact) JSON encoding used for cache
    keys and determinism checks."""
    return json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment execution: payload + provenance.

    ``metrics`` — when the job ran with telemetry collection on — is
    the job's :meth:`~repro.telemetry.MetricsRegistry.snapshot`: the
    counters/gauges/histograms the simulated hardware emitted while
    this experiment executed.  It travels through the result cache, so
    a cached result still answers "what did the hardware do".

    ``profile`` is the analogous
    :meth:`~repro.telemetry.SpanProfiler.snapshot` of wall-clock spans
    when the job ran under the span profiler.

    ``physics`` is the analogous
    :meth:`~repro.telemetry.PhysicsCollector.snapshot` of the domain
    observability layer — per-row heat, flip provenance aggregates,
    and the mitigation audit trail — when the job ran with
    ``collect_physics``.

    ``error`` is ``None`` for a successful run; a fault-tolerant batch
    (:meth:`~repro.experiments.runner.ExperimentRunner.run`) captures a
    raising job as a result with ``payload=None`` and ``error`` set to
    ``"ExcType: message"`` — never cached, always surfaced.

    ``run_id``/``job_id`` are the correlation pair from
    :mod:`repro.telemetry.ids`: the sweep-level run and the
    deterministic per-job ID also stamped into trace events, ledger
    lines, checkpoint records, and failure-capture bundles.  Both may
    be ``None`` for results read from pre-correlation caches.
    """

    name: str
    payload: Any
    seed: Optional[int]
    params: Dict[str, Any] = field(default_factory=dict)
    duration_s: float = 0.0
    peak_rss_kb: int = 0
    version: str = ""
    cache_hit: bool = False
    metrics: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None
    physics: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    run_id: Optional[str] = None
    job_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def outcome(self) -> str:
        """Structured outcome class: ``"ok"``, ``"timeout"``,
        ``"invariant"``, or ``"error"``.

        Classification keys on the error class (the leading
        ``ClassName`` of the error string): ``JobTimeout`` is the
        runner's deadline enforcement, ``InvariantViolation`` is the
        sanitizer catching corrupted simulator state (see
        :mod:`repro.sanitizer`); everything else is a plain error.
        """
        if self.error is None:
            return "ok"
        cls = self.error.split(":", 1)[0].strip()
        if cls == "JobTimeout":
            return "timeout"
        if cls == "InvariantViolation":
            return "invariant"
        return "error"

    def payload_json(self) -> str:
        """Canonical JSON of the payload (byte-identical for equal seeds)."""
        return canonical_json(self.payload)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "params": to_jsonable(self.params),
            "duration_s": self.duration_s,
            "peak_rss_kb": self.peak_rss_kb,
            "version": self.version,
            "cache_hit": self.cache_hit,
            "metrics": self.metrics,
            "profile": self.profile,
            "physics": self.physics,
            "error": self.error,
            "run_id": self.run_id,
            "job_id": self.job_id,
            "payload": self.payload,
        }

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any], **overrides: Any) -> "ExperimentResult":
        fields = {
            "name": record["name"],
            "payload": record["payload"],
            "seed": record.get("seed"),
            "params": dict(record.get("params") or {}),
            "duration_s": float(record.get("duration_s", 0.0)),
            "peak_rss_kb": int(record.get("peak_rss_kb", 0)),
            "version": record.get("version", ""),
            "cache_hit": bool(record.get("cache_hit", False)),
            "metrics": record.get("metrics"),
            "profile": record.get("profile"),
            "physics": record.get("physics"),
            "error": record.get("error"),
            "run_id": record.get("run_id"),
            "job_id": record.get("job_id"),
        }
        fields.update(overrides)
        return cls(**fields)
