"""§III/§IV emerging-memory experiments: the PCM wear attack under
Start-Gap, and STT-MRAM/RRAM scaling trends."""

from __future__ import annotations

from typing import Dict

from repro.experiments.registry import experiment
from repro.pcm.startgap import lifetime_under_pinned_attack


# ----------------------------------------------------------------------
# C13: PCM wear attack
# ----------------------------------------------------------------------
@experiment(
    "pcm_study",
    claim="Pinned-write attack collapses PCM lifetime; Start-Gap restores it",
    section="III-C",
    tags=("pcm", "wear", "attacks"),
    aliases=("c13",),
)
def pcm_study(seed: int = 0) -> Dict:
    """Pinned-write attack lifetime without/with Start-Gap leveling."""
    bare = lifetime_under_pinned_attack(leveling=None, seed=seed)
    leveled = lifetime_under_pinned_attack(leveling="startgap", seed=seed)
    randomized = lifetime_under_pinned_attack(leveling="startgap-rand", seed=seed)
    return {
        "bare_lifetime_writes": bare,
        "startgap_lifetime_writes": leveled,
        "startgap_rand_lifetime_writes": randomized,
        "improvement_factor": leveled / bare,
    }


# ----------------------------------------------------------------------
# Extension: emerging memories (§III) — STT-MRAM and RRAM crossbars
# ----------------------------------------------------------------------
@experiment(
    "emerging_memory_study",
    claim="STT-MRAM disturb/retention rise as density grows; RRAM half-select is a RowHammer analogue",
    section="III-C",
    tags=("emerging", "sttmram", "rram"),
    aliases=("emerging",),
)
def emerging_memory_study(seed: int = 0) -> Dict:
    """§III's forward-looking claim, quantified for two technologies.

    STT-MRAM: read-disturb and retention error rates rise together as
    the thermal stability factor shrinks with density.  RRAM: a
    crossbar's half-select stress is a literal RowHammer analogue —
    hammering one address flips cells on the shared row/column lines.
    """
    from repro.emerging import crossbar_hammer_study, scaling_study

    stt = scaling_study(deltas=(70.0, 60.0, 50.0, 40.0), cells=1 << 18, seed=seed)
    rram = crossbar_hammer_study(accesses=(1e5, 1e6, 1e7), rows=128, cols=128, seed=seed)
    return {"stt_scaling": stt, "rram_hammer": rram}
