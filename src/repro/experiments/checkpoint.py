"""Crash-safe sweep/batch checkpointing.

A long characterization sweep must survive what the paper's Section II
field study survived: partial failure.  The checkpoint is an
append-only JSONL file with one record per *completed* job — keyed by
the same ``(name, params, seed)`` identity the result cache uses — so
an interrupted run resumes by skipping exactly the jobs that already
finished, **independently of the result cache** (which may be disabled,
cold, or on another machine).

Records carry the full :class:`~repro.experiments.result.ExperimentResult`
JSON, so a resume restores payloads too, not just "done" flags.
Appends are single ``O_APPEND`` writes followed by ``fsync``: a crash
can truncate at most the final line, and readers skip (and count)
corrupt lines instead of raising.  Only successful results are ever
recorded — errored and timed-out jobs re-run on resume.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from repro.experiments import registry
from repro.experiments.result import ExperimentResult, canonical_json, to_jsonable
from repro.utils.jsonl import append_record

__all__ = ["CHECKPOINT_SCHEMA", "SweepCheckpoint", "job_key"]

CHECKPOINT_SCHEMA = 1


def job_key(name: str, params: Any, seed: Optional[int]) -> str:
    """The canonical ``(name, params, seed)`` job identity digest.

    Shared with :class:`~repro.experiments.runner.ResultCache`:
    aliases resolve to the canonical experiment name and params are
    key-sorted, so the same job always produces the same key.
    """
    canonical = registry.resolve(name)
    ordered = {k: params[k] for k in sorted(params)}
    blob = canonical_json({"name": canonical, "params": ordered, "seed": seed})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class SweepCheckpoint:
    """Append-only JSONL manifest of completed jobs at one path.

    ``corrupt_lines`` holds the number of unparseable/foreign lines the
    most recent :meth:`load` skipped (a torn final line after a crash
    is expected, not an error).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path).expanduser()
        self.corrupt_lines = 0
        self._seen: Optional[Set[str]] = None

    def load(self) -> Dict[str, Dict[str, Any]]:
        """All parseable records keyed by job identity (last one wins)."""
        self.corrupt_lines = 0
        records: Dict[str, Dict[str, Any]] = {}
        if self.path.is_file():
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        self.corrupt_lines += 1
                        continue
                    if (not isinstance(record, dict)
                            or record.get("schema") != CHECKPOINT_SCHEMA
                            or "key" not in record or "result" not in record):
                        self.corrupt_lines += 1
                        continue
                    records[record["key"]] = record
        self._seen = set(records)
        return records

    def results(self) -> Dict[str, ExperimentResult]:
        """Completed results by job key, restored for direct reuse.

        Restored results are flagged ``cache_hit=True``: they were not
        re-executed, and job-count telemetry must say so.
        """
        out: Dict[str, ExperimentResult] = {}
        for key, record in self.load().items():
            try:
                out[key] = ExperimentResult.from_json_dict(
                    record["result"], cache_hit=True)
            except (KeyError, TypeError, ValueError):
                self.corrupt_lines += 1
        return out

    def record(self, result: ExperimentResult) -> bool:
        """Append one completed result; idempotent per job identity.

        Failed results are refused (they must re-run on resume), and
        I/O failures are reported as ``False`` rather than raised — a
        full disk must not take down the sweep that is trying to
        preserve its work.
        """
        if result.error is not None:
            return False
        key = job_key(result.name, result.params, result.seed)
        seen = self._seen
        if seen is None:
            self.load()
            seen = self._seen
            if seen is None:  # survives python -O, unlike assert
                raise RuntimeError("checkpoint load left no seen-set")
        if key in seen:
            return True
        from repro.telemetry import ids

        record = {
            "schema": CHECKPOINT_SCHEMA,
            "key": key,
            "ts": time.time(),
            "name": result.name,
            "seed": result.seed,
            "params": to_jsonable(result.params),
            "run_id": result.run_id or ids.current_run_id(),
            "job_id": ids.job_id_from_key(key),
            "result": result.to_json_dict(),
        }
        line = (json.dumps(record, sort_keys=True, default=repr) + "\n").encode("utf-8")
        if not append_record(self.path, line):
            return False
        self._seen.add(key)
        return True

    def keys(self) -> Set[str]:
        """Job keys of all completed records — a cheap progress probe
        (the service and the chaos harness poll this mid-sweep)."""
        return set(self.load())

    def __len__(self) -> int:
        return len(self.load())
