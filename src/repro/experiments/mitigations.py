"""§II-C mitigation experiments: refresh scaling, ECC sufficiency,
PARA, counter-based identification, the all-mitigations comparison, and
the TRR-sampler bypass."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.costmodel import MitigationReport
from repro.analysis.reliability import HARD_DISK_AFR_TYPICAL, compare_to_disk
from repro.core.scenarios import full_scale_scenario, scaled_scenario
from repro.core.system import MemorySystem
from repro.dram.timing import DDR3_1066
from repro.dram.vintage import profile_for
from repro.ecc.parity import ParityCode
from repro.ecc.hamming import SECDED_72_64
from repro.ecc.symbol import SYMBOL_72_64
from repro.experiments.registry import experiment
from repro.fieldstudy.campaign import whole_module_errors
from repro.fieldstudy.population import build_population, instantiate
from repro.mitigations.cra import CounterBasedMitigation, storage_overhead_table
from repro.mitigations.ecc_eval import (
    evaluate_ladder,
    flip_histogram_from_hammer,
    multi_flip_word_fraction,
)
from repro.mitigations.para import (
    log10_failures_per_year,
    performance_overhead_fraction,
    recommended_p,
)
from repro.mitigations.refresh_scaling import multiplier_to_eliminate, refresh_cost


# ----------------------------------------------------------------------
# C3: refresh-rate scaling
# ----------------------------------------------------------------------
@experiment(
    "refresh_multiplier_sweep",
    claim="Errors and cost vs refresh multiplier; the 7x elimination claim",
    section="II-C",
    tags=("mitigations", "refresh"),
    aliases=("c3",),
)
def refresh_multiplier_sweep(
    multipliers: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8),
    manufacturer: str = "B",
    date: float = 2013.0,
    seed: int = 0,
) -> Dict:
    """Errors and costs vs refresh multiplier; the 7x elimination claim."""
    timing = DDR3_1066
    profile = profile_for(manufacturer, date)
    spec_module = instantiate(build_population()[0], seed=seed)  # geometry template
    rows = []
    for k in multipliers:
        module = spec_module.__class__(
            geometry=spec_module.geometry,
            timing=timing,
            profile=profile,
            serial=f"sweep-{k}",
            manufacturer=manufacturer,
            manufacture_date=date,
            seed=seed,
        )
        result = whole_module_errors(module, refresh_multiplier=float(k))
        cost = refresh_cost(timing, float(k))
        rows.append(
            {
                "multiplier": float(k),
                "errors": result.errors,
                "errors_per_billion": result.errors_per_billion,
                "budget": cost.budget,
                "bandwidth_overhead": cost.bandwidth_overhead,
                "refresh_energy_factor": cost.refresh_energy_factor,
            }
        )
    k_exact = multiplier_to_eliminate(profile.hc_first_min, timing)
    return {"rows": rows, "exact_elimination_multiplier": k_exact}


# ----------------------------------------------------------------------
# C4: ECC sufficiency
# ----------------------------------------------------------------------
@experiment(
    "ecc_study",
    claim="Multi-flip words defeat SECDED; symbol ECC corrects byte-confined flips",
    section="II-C",
    tags=("mitigations", "ecc"),
    aliases=("c4",),
)
def ecc_study(victims: int = 400, seed: int = 0) -> Dict:
    """Flips-per-word histogram of hammer errors and the ECC ladder."""
    scenario = full_scale_scenario("B", 2013.2)
    module = scenario.make_module(serial="ecc", seed=seed)
    pressure = scenario.attack_budget
    histogram = flip_histogram_from_hammer(module, bank=0, victim_count=victims, pressure=pressure)
    ladder = evaluate_ladder(
        histogram,
        codes=(
            ("parity", ParityCode(64)),
            ("secded(72,64)", SECDED_72_64),
            ("symbol(80,64)", SYMBOL_72_64),
        ),
        seed=seed,
    )
    return {
        "histogram": histogram,
        "multi_flip_fraction": multi_flip_word_fraction(histogram),
        "ladder": ladder,
    }


# ----------------------------------------------------------------------
# C5: PARA
# ----------------------------------------------------------------------
@experiment(
    "para_reliability",
    claim="PARA closed-form failure rates sit decades below the hard-disk baseline",
    section="II-C",
    tags=("mitigations", "para", "analysis"),
    aliases=("c5",),
)
def para_reliability(
    p_values: Sequence[float] = (2e-4, 5e-4, 1e-3, 2e-3),
    n_th: float = 139_000.0,
) -> Dict:
    """Closed-form PARA failure rates vs the hard-disk baseline."""
    rows = []
    for p in p_values:
        log10_fail = log10_failures_per_year(p, n_th)
        comparison = compare_to_disk(log10_fail)
        rows.append(
            {
                "p": p,
                "log10_failures_per_year": log10_fail,
                "log10_margin_vs_disk": comparison.log10_margin_vs_disk,
                "perf_overhead": performance_overhead_fraction(p),
            }
        )
    return {
        "rows": rows,
        "disk_afr": HARD_DISK_AFR_TYPICAL,
        "recommended_p_1e-15": recommended_p(n_th, -15.0),
    }


@experiment(
    "para_controller_check",
    claim="PARA stops the flips a bare system suffers (scaled controller path)",
    section="II-C",
    tags=("mitigations", "para", "simulation"),
    aliases=("c5-sim",),
)
def para_controller_check(p: float = 0.02, iterations: Optional[int] = None, seed: int = 0) -> Dict:
    """Scaled controller-path check: PARA stops the flips a bare system
    suffers (p is scaled up with the scenario's time scale)."""
    scenario = scaled_scenario(scale=20.0)
    iters = iterations if iterations is not None else scenario.attack_budget // 2
    bare = MemorySystem(scenario.make_module(serial="bare", seed=seed))
    bare_flips = bare.hammer_double_sided(victim=1000, iterations=iters)
    protected = MemorySystem(
        scenario.make_module(serial="para", seed=seed),
        mitigation="para",
        mitigation_kwargs={"p": p, "seed": seed},
    )
    para_flips = protected.hammer_double_sided(victim=1000, iterations=iters)
    return {
        "bare_flips": bare_flips,
        "para_flips": para_flips,
        "para_overhead_time": protected.report().time_ns / max(bare.report().time_ns, 1.0) - 1.0,
        "mitigation_refreshes": protected.report().mitigation_refreshes,
    }


# ----------------------------------------------------------------------
# C6: CRA storage/effectiveness
# ----------------------------------------------------------------------
@experiment(
    "cra_tradeoff",
    claim="Counter-based mitigation protects but carries a dedicated-storage bill",
    section="II-C",
    tags=("mitigations", "cra"),
    aliases=("c6",),
)
def cra_tradeoff(seed: int = 0) -> Dict:
    """Counter-based mitigation: protection plus the storage bill."""
    scenario = scaled_scenario(scale=20.0)
    iters = scenario.attack_budget // 2
    threshold = max(64, int(scenario.profile.hc_first_min // 4))
    results = []
    for table in (None, 1024, 64):
        system = MemorySystem(
            scenario.make_module(serial=f"cra-{table}", seed=seed),
            mitigation="cra",
            mitigation_kwargs={"threshold": threshold, "table_entries": table,
                               "window_ns": scenario.timing.tREFW},
        )
        flips = system.hammer_double_sided(victim=1000, iterations=iters)
        mit = system.mitigation
        results.append(
            {
                "table_entries": table,
                "flips": flips,
                "detections": mit.detections,
                "storage_bits": mit.storage_bits(scenario.geometry.rows, scenario.geometry.banks),
            }
        )
    storage_full = storage_overhead_table(
        rows=32768, banks=8, thresholds=(32768,), table_sizes=(None, 4096, 256)
    )
    return {"runs": results, "full_scale_storage": storage_full}


# ----------------------------------------------------------------------
# C7: mitigation comparison
# ----------------------------------------------------------------------
@experiment(
    "mitigation_comparison",
    claim="All mitigations vs the same double-sided attack: residual/perf/energy/storage",
    section="II-C",
    tags=("mitigations", "comparison"),
    aliases=("c7",),
)
def mitigation_comparison(seed: int = 0) -> List[MitigationReport]:
    """All mitigations against the same double-sided attack (scaled)."""
    scenario = scaled_scenario(scale=20.0)
    iters = scenario.attack_budget // 2
    threshold = max(64, int(scenario.profile.hc_first_min // 4))
    configs = [
        ("none", "none", {}, 1.0),
        ("refresh x8", "none", {}, 8.0),
        ("para p=0.02", "para", {"p": 0.02, "seed": seed}, 1.0),
        ("cra full", "cra", {"threshold": threshold, "window_ns": scenario.timing.tREFW}, 1.0),
        ("anvil", "anvil", {"sample_interval_ns": scenario.timing.tREFW / 16, "rate_threshold": threshold // 2}, 1.0),
        ("trr k=4", "trr", {"tracker_entries": 4, "refresh_period_acts": 512}, 1.0),
    ]
    reports: List[MitigationReport] = []
    baseline_flips = None
    baseline_time = None
    baseline_energy = None
    for label, name, kwargs, multiplier in configs:
        system = MemorySystem(
            scenario.make_module(serial=f"cmp-{label}", seed=seed),
            mitigation=name,
            mitigation_kwargs=kwargs,
            refresh_multiplier=multiplier,
        )
        flips = system.hammer_double_sided(victim=1000, iterations=iters)
        rep = system.report()
        if baseline_flips is None:
            baseline_flips, baseline_time, baseline_energy = flips, rep.time_ns, rep.dynamic_energy_nj
        reports.append(
            MitigationReport(
                name=label,
                residual_flips=flips,
                baseline_flips=baseline_flips,
                perf_overhead=max(0.0, rep.time_ns / baseline_time - 1.0),
                energy_overhead=max(0.0, rep.dynamic_energy_nj / baseline_energy - 1.0),
                storage_bits=_storage_of(system.mitigation, scenario),
            )
        )
    return reports


def _storage_of(mitigation, scenario) -> int:
    if isinstance(mitigation, CounterBasedMitigation):
        return mitigation.storage_bits(scenario.geometry.rows, scenario.geometry.banks)
    return 0


# ----------------------------------------------------------------------
# Extension: many-sided hammering vs the TRR sampler (TRRespass-style)
# ----------------------------------------------------------------------
@experiment(
    "trr_bypass_study",
    claim="Bounded in-DRAM samplers fail against many simultaneous aggressor pairs",
    section="II-B",
    tags=("mitigations", "trr", "attacks"),
    aliases=("trr-bypass",),
)
def trr_bypass_study(
    n_pairs_list: Sequence[int] = (1, 2, 4, 8),
    tracker_entries: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Bounded in-DRAM samplers fail against many simultaneous aggressors.

    §II-B notes that "even state-of-the-art DDR4 DRAM chips are
    vulnerable" — the later TRRespass work showed why: TRR-class
    mitigations track only a few aggressors.  We model a future scaled
    node (very low thresholds, so diluted per-pair pressure still
    flips cells) and sweep the number of simultaneous aggressor pairs
    against a small-sampler TRR.
    """
    from dataclasses import replace

    from repro.mitigations.trr import TrrMitigation

    base = scaled_scenario(scale=20.0)
    # Future node: thresholds ~5x lower still, denser weak cells.
    profile = replace(
        base.profile,
        hc_first_min=base.profile.hc_first_min / 5.0,
        hc_first_median=base.profile.hc_first_median / 5.0,
        weak_cell_density=min(1.0, base.profile.weak_cell_density * 2),
    )
    scenario = replace(base, profile=profile)
    window_acts = scenario.attack_budget
    out = []
    for n_pairs in n_pairs_list:
        module = scenario.make_module(serial=f"trrespass-{n_pairs}", seed=seed)
        system = MemorySystem(
            module,
            mitigation="trr",
            mitigation_kwargs={"tracker_entries": tracker_entries, "refresh_period_acts": 512},
        )
        # n_pairs double-sided pairs, victims spaced well apart; total
        # activations fixed at one window, split evenly.
        aggressors = []
        for i in range(n_pairs):
            victim = 500 + 40 * i
            aggressors.extend([victim - 1, victim + 1])
        iterations = max(1, window_acts // len(aggressors))
        before = module.total_flips()
        system.controller.run_activation_pattern(0, aggressors, iterations)
        system.controller.finish()
        out.append(
            {
                "n_pairs": n_pairs,
                "flips": module.total_flips() - before,
                "targeted_refreshes": system.mitigation.targeted_refreshes,
                "per_victim_pressure": 2 * iterations,
            }
        )
    return out
