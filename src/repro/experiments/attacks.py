"""§II-A/§II-B attack experiments: the exploitation gallery, sidedness
ablation, user-level strategies through a real cache, and multi-bank
scaling under tRRD/tFAW."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.attacks.hammer import double_sided_device, single_sided_device
from repro.attacks.privilege import (
    drammer_success_probability,
    flip_feng_shui_templates,
    javascript_success_probability,
    pte_spray_success_probability,
    scan_templates,
)
from repro.core.scenarios import full_scale_scenario, scaled_scenario
from repro.experiments.registry import experiment


# ----------------------------------------------------------------------
# C14: the attack gallery
# ----------------------------------------------------------------------
@experiment(
    "attack_gallery",
    claim="Success probability of each §II-B exploitation model vs module vintage",
    section="II-B",
    tags=("attacks", "rowhammer"),
    aliases=("c14",),
)
def attack_gallery(
    dates: Sequence[float] = (2011.0, 2012.5, 2013.2),
    rows_scanned: int = 3000,
    seed: int = 0,
) -> List[Dict]:
    """Success probability of each §II-B attack vs module vintage."""
    out = []
    for date in dates:
        scenario = full_scale_scenario("B", date)
        module = scenario.make_module(serial=f"gallery-{date}", seed=seed)
        pressure = scenario.attack_budget
        templates = scan_templates(module, 0, range(64, 64 + rows_scanned), pressure)
        out.append(
            {
                "date": date,
                "templates": len(templates),
                "pte_spray": pte_spray_success_probability(templates, spray_fraction=0.35, seed=seed),
                "flip_feng_shui": len(flip_feng_shui_templates(templates)) > 0,
                "ffs_usable_templates": len(flip_feng_shui_templates(templates)),
                # The scanned region stands in for the attacker-reachable
                # memory (scanning the full module is possible but slow).
                "drammer": drammer_success_probability(
                    templates, total_rows=rows_scanned, chunk_rows=256, seed=seed
                ),
                "javascript": javascript_success_probability(
                    templates, total_rows=rows_scanned, aggressor_attempts=200, seed=seed
                ),
            }
        )
    return out


# ----------------------------------------------------------------------
# Extension: single- vs double-sided ablation
# ----------------------------------------------------------------------
@experiment(
    "sidedness_ablation",
    claim="Double-sided hammering beats single-sided at equal activation rate",
    section="II-A",
    tags=("attacks", "rowhammer", "ablation"),
    aliases=("sidedness",),
)
def sidedness_ablation(seed: int = 0) -> Dict:
    """Double-sided hammering beats single-sided at equal activation rate.

    Both attackers issue ``budget`` activations within the window.  The
    single-sided attacker must alternate its aggressor with a *dummy*
    far row (to defeat the row buffer), so its victim accumulates only
    half the pressure; the double-sided attacker spends everything on
    the shared victim's two neighbors.
    """
    scenario = full_scale_scenario("B", 2013.0)
    budget = scenario.attack_budget
    module_s = scenario.make_module(serial="single", seed=seed)
    # Aggressor gets budget/2 activations; the other half goes to a dummy
    # row far away (its disturbance is accounted too, but irrelevant here).
    single = single_sided_device(module_s, 0, aggressor=1000, count=budget // 2)
    single_sided_device(module_s, 0, aggressor=8000, count=budget // 2)
    module_d = scenario.make_module(serial="double", seed=seed)
    double = double_sided_device(module_d, 0, victim=1000, count=budget // 2)
    # Per-victim comparison: the single-sided attacker's best neighbor
    # vs the double-sided attacker's bracketed victim.
    single_victim_flips = max(
        sum(1 for row, _ in single.flips if row == 999),
        sum(1 for row, _ in single.flips if row == 1001),
    )
    double_victim_flips = sum(1 for row, _ in double.flips if row == 1000)
    return {
        "single_flips": single_victim_flips,
        "double_flips": double_victim_flips,
        "total_activations_each": budget,
    }


# ----------------------------------------------------------------------
# Extension: user-level attack strategies through a real cache
# ----------------------------------------------------------------------
@experiment(
    "userlevel_attack_study",
    claim="Plain loads vs CLFLUSH vs eviction sets behind a set-associative cache",
    section="II-A",
    tags=("attacks", "rowhammer", "cpu"),
    aliases=("userlevel",),
)
def userlevel_attack_study(seed: int = 0) -> Dict:
    """§II-A end to end: plain loads vs CLFLUSH vs eviction sets.

    Each strategy gets exactly one refresh window of wall-clock time on
    the same module behind a set-associative cache.  A second, weaker
    module shows the eviction strategy flipping once thresholds drop
    (the JavaScript attack's dependence on more vulnerable parts).
    """
    from dataclasses import replace

    from repro.cpu import CpuMemorySystem, SetAssociativeCache

    scenario = scaled_scenario(scale=20.0)
    window = scenario.timing.tREFW

    def run(strategy: str, profile_scale: float = 1.0) -> Dict:
        profile = scenario.profile
        if profile_scale != 1.0:
            profile = replace(
                profile,
                hc_first_min=profile.hc_first_min / profile_scale,
                hc_first_median=profile.hc_first_median / profile_scale,
            )
        module = replace(scenario, profile=profile).make_module(
            serial=f"cpu-{strategy}-{profile_scale}", seed=seed
        )
        system = CpuMemorySystem(module, cache=SetAssociativeCache(size_bytes=1 << 20, ways=8))
        stats = getattr(system, f"{strategy}_hammer")(
            0, [999, 1001], 10**9, time_budget_ns=window
        )
        return {
            "strategy": strategy,
            "loads": stats.loads,
            "target_activations": stats.target_activations,
            "flips": stats.flips,
            "efficiency": stats.activation_efficiency,
            "acts_per_window": stats.activations_per_window(window),
        }

    rows = [run(s) for s in ("naive", "flush", "eviction")]
    eviction_on_weak_module = run("eviction", profile_scale=4.0)
    return {"rows": rows, "eviction_on_weak_module": eviction_on_weak_module}


# ----------------------------------------------------------------------
# Extension: multi-bank attack scaling under tRRD/tFAW
# ----------------------------------------------------------------------
@experiment(
    "multibank_study",
    claim="Attack throughput vs parallel banks until the rank tFAW limit bites",
    section="II-A",
    tags=("attacks", "rowhammer", "timing"),
    aliases=("multibank",),
)
def multibank_study(seed: int = 0, bank_counts: Sequence[int] = (1, 2, 4, 6, 8)) -> List[Dict]:
    """Attack throughput vs simultaneously hammered banks.

    A single-bank hammer is tRC-bound; parallel banks multiply total
    victim flips until the rank's tFAW activation-rate limit saturates
    and per-bank pressure starts falling.
    """
    from repro.attacks.hammer import multibank_attack_scaling

    scenario = full_scale_scenario("B", 2013.0)
    return multibank_attack_scaling(
        lambda: scenario.make_module(serial="multibank", seed=seed),
        bank_counts=bank_counts,
    )
