"""Sanitizer runtime: levels, hot-path guard, and the checker registry.

Every quantitative claim this repository makes rests on the simulators
being internally consistent — a bit flip must come from the modeled
disturbance mechanism, never from a bookkeeping bug.  The sanitizer is
the runtime half of that argument: instrumented model code calls
invariant checkers behind the same near-zero-cost disabled-by-default
guard pattern as :mod:`repro.telemetry.runtime`::

    from repro.sanitizer import runtime as sanit

    if sanit.sanitize_on:
        sanit.check("flash.ftl", self)

When the sanitizer is disabled (the default) each site costs exactly
one module-attribute read and a falsy branch — the same "near-zero
when off" contract the telemetry overhead benchmark enforces, and the
same ≤5% bound :mod:`benchmarks.test_bench_sanitizer` checks.

Levels (``REPRO_SANITIZE`` environment variable or ``--sanitize``):

``off``
    No checks, no shadow state (default).
``cheap``
    O(1) structural checks at every instrumented site: index bounds,
    sign constraints, scheduler-cursor ranges.
``full``
    Everything ``cheap`` does, plus the expensive whole-structure
    invariants: DRAM stored-data shadow digests, FTL logical→physical
    bijectivity scans, start-gap permutation validity, and ECC codec
    round-trip spot checks.  Scans are amortized over
    :data:`~repro.sanitizer.checks.FULL_SCAN_INTERVAL` calls on hot
    paths and forced at structural boundaries (GC, refresh passes) and
    immediately after a chaos state-corruption injection.

A failed invariant raises :class:`InvariantViolation`, a structured,
deliberately **non-retryable** failure carrying the subsystem, the
invariant name, and a deterministic detail string.  Violations tally
in ``sanitizer_violations_total{subsystem=...}`` when telemetry is on.

This module is a leaf: it imports only :mod:`repro.telemetry.runtime`,
so any simulator layer can depend on it without cycles.  Checkers
register themselves from :mod:`repro.sanitizer.checks` (imported by the
package ``__init__``), and the chaos state-corruption hook is resolved
lazily so ``repro.chaos`` stays optional at import time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.telemetry import runtime as telem

__all__ = [
    "ENV_SANITIZE",
    "LEVELS",
    "InvariantViolation",
    "CheckerEntry",
    "sanitize_on",
    "full_on",
    "level",
    "set_level",
    "current_level",
    "sync_from_env",
    "register",
    "registered",
    "check",
    "note",
    "violation",
]

ENV_SANITIZE = "REPRO_SANITIZE"

#: Recognized sanitizer levels, weakest to strongest.
LEVELS = ("off", "cheap", "full")

#: Hot-path guards.  Read directly (``sanit.sanitize_on``) by
#: instrument sites; mutate only through :func:`set_level`.
sanitize_on: bool = False
full_on: bool = False
level: str = "off"


class InvariantViolation(RuntimeError):
    """A simulator invariant failed: internal state is corrupt.

    Stringifies as ``"[subsystem] invariant: detail"`` so the runner's
    error-class protocol sees ``InvariantViolation`` and classifies the
    job outcome as ``"invariant"`` — structured, surfaced, and never
    retried (a corrupted simulation re-fails identically, or worse,
    silently skews results).
    """

    def __init__(self, subsystem: str, invariant: str, detail: str = ""):
        self.subsystem = subsystem
        self.invariant = invariant
        self.detail = detail
        message = f"[{subsystem}] {invariant}"
        if detail:
            message += f": {detail}"
        super().__init__(message)

    def to_json_dict(self) -> Dict[str, str]:
        return {
            "subsystem": self.subsystem,
            "invariant": self.invariant,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CheckerEntry:
    """One registered invariant class.

    Attributes:
        subsystem: stable key (``"dram.bank"``, ``"flash.ftl"``, …) —
            also the pairing key for the chaos state-corruption
            injector that proves this checker detects real corruption.
        check: ``check(obj, full, ctx)`` — raise
            :class:`InvariantViolation` on a failed invariant.
        note: optional ``note(obj, ctx)`` shadow-state maintenance hook
            called (at ``full`` level only) from legitimate mutation
            points, e.g. recomputing a row's stored-data digest after a
            modeled write.
        description: one line for docs and ``registered()`` listings.
    """

    subsystem: str
    check: Callable[[Any, bool, Dict[str, Any]], None]
    note: Optional[Callable[[Any, Dict[str, Any]], None]] = None
    description: str = ""


_REGISTRY: Dict[str, CheckerEntry] = {}


def register(entry: CheckerEntry) -> CheckerEntry:
    """Register (or replace) the checker for ``entry.subsystem``."""
    _REGISTRY[entry.subsystem] = entry
    return entry


def registered() -> Dict[str, CheckerEntry]:
    """The registered invariant classes, keyed by subsystem."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Level switches
# ----------------------------------------------------------------------
def set_level(new_level: str) -> str:
    """Install a sanitizer level; returns the previous one."""
    global sanitize_on, full_on, level
    if new_level not in LEVELS:
        raise ValueError(
            f"unknown sanitize level {new_level!r}; expected one of "
            f"{', '.join(LEVELS)}"
        )
    previous = level
    level = new_level
    sanitize_on = new_level != "off"
    full_on = new_level == "full"
    return previous


def current_level() -> str:
    return level


def sync_from_env(default: Optional[str] = None) -> str:
    """Adopt ``REPRO_SANITIZE`` when set (so pool workers and
    ``REPRO_SANITIZE=full`` test runs pick the level up for free).

    An unset variable leaves the programmatic level alone unless
    ``default`` forces one; an unrecognized value reads as ``off``
    rather than crashing arbitrary importers.
    """
    raw = os.environ.get(ENV_SANITIZE, "").strip().lower()
    if raw:
        set_level(raw if raw in LEVELS else "off")
    elif default is not None:
        set_level(default)
    return level


# ----------------------------------------------------------------------
# Check dispatch (call only behind the ``sanitize_on`` guard)
# ----------------------------------------------------------------------
def violation(subsystem: str, invariant: str, detail: str = "") -> None:
    """Record and raise one invariant violation."""
    if telem.metrics_on:
        telem.counter("sanitizer_violations_total", subsystem=subsystem).inc()
    if telem.trace_on:
        telem.trace("invariant_violation", sub=subsystem,
                    invariant=invariant, detail=detail)
    raise InvariantViolation(subsystem, invariant, detail)


def check(subsystem: str, obj: Any, **ctx: Any) -> None:
    """Run the registered checker for ``subsystem`` against ``obj``.

    This is also the chaos state-corruption injection point: an armed
    ``REPRO_CHAOS`` ``corrupt:sub=<subsystem>`` entry mutates ``obj``
    *before* the checker runs (and forces the full-depth check on that
    call), which is how the negative-test suite proves each invariant
    class detects its paired corruption.
    """
    if os.environ.get("REPRO_CHAOS"):
        from repro.chaos import maybe_corrupt_state

        if maybe_corrupt_state(subsystem, obj):
            ctx["force"] = True
    entry = _REGISTRY.get(subsystem)
    if entry is None:
        return
    entry.check(obj, full_on or bool(ctx.get("force")), ctx)


def note(subsystem: str, obj: Any, **ctx: Any) -> None:
    """Shadow-state maintenance hook for legitimate mutations.

    Only does work at ``full`` level (shadow state exists to make
    ``full`` checks possible); a ``cheap``-level call returns after one
    flag read.
    """
    if not full_on:
        return
    entry = _REGISTRY.get(subsystem)
    if entry is not None and entry.note is not None:
        entry.note(obj, ctx)


# Adopt the environment at import time so pool workers (which inherit
# REPRO_SANITIZE) come up at the right level without any plumbing.
sync_from_env()
