"""Failure-capture bundles and deterministic replay.

When a job errors — an invariant trips, the experiment raises, a
deadline fires — the runner writes a minimal, self-contained **failure
bundle** next to the run: the experiment name, bound params, seed, the
error string and its digest, the sanitizer verdict, the active chaos
schedule, the :mod:`repro.utils.rng` derivation labels consumed so far,
and the most recent trace-ring events.  ``repro replay <bundle>``
re-executes the job under the same knobs and asserts the same failure
digest, turning "a sweep died overnight" into a one-command local
repro.

Capture is armed whenever the sanitizer is on, or explicitly via the
``REPRO_CAPTURE`` environment variable / ``--capture-dir`` CLI flag
(a directory path arms it; the literal ``off`` disarms it even with
the sanitizer on).  Bundles default to ``.repro-failures/``.

The **failure digest** is the SHA-256 (truncated to 16 hex chars) of
the canonical JSON of ``{name, params, seed, error}`` — the full
identity of a deterministic failure.  A replay reproduces the bundle
iff it fails with byte-identical error identity.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.result import ExperimentResult, canonical_json
from repro.telemetry import runtime as telem
from repro.telemetry.trace import TraceRecorder
from repro.utils import rng as rng_utils

from repro.sanitizer import runtime as sanit

__all__ = [
    "BUNDLE_SCHEMA",
    "BUNDLE_KIND",
    "DEFAULT_CAPTURE_DIR",
    "ENV_CAPTURE",
    "TRACE_CAPACITY",
    "BundleError",
    "CaptureContext",
    "ReplayReport",
    "capture_dir",
    "failure_digest",
    "load_bundle",
    "replay_bundle",
]

BUNDLE_SCHEMA = 1
BUNDLE_KIND = "repro-failure-bundle"
ENV_CAPTURE = "REPRO_CAPTURE"
DEFAULT_CAPTURE_DIR = ".repro-failures"

#: Events kept in the bundle's recent-trace ring.
TRACE_CAPACITY = 256


class BundleError(ValueError):
    """The file is not a readable failure bundle (missing, truncated,
    wrong schema, or missing required fields)."""


def capture_dir() -> Optional[Path]:
    """Where to write failure bundles, or ``None`` when capture is off.

    ``REPRO_CAPTURE=off`` always disarms; any other non-empty value is
    the target directory; unset falls back to ``.repro-failures`` when
    the sanitizer is enabled (a tripped invariant must leave evidence).
    """
    raw = os.environ.get(ENV_CAPTURE, "").strip()
    if raw.lower() == "off":
        return None
    if raw:
        return Path(raw)
    if sanit.sanitize_on:
        return Path(DEFAULT_CAPTURE_DIR)
    return None


def failure_digest(name: str, params: Dict[str, Any], seed: Optional[int],
                   error: Optional[str]) -> str:
    """The 16-hex-char identity of one failure (or success: error=None)."""
    blob = canonical_json(
        {"name": name, "params": params, "seed": seed, "error": error}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class CaptureContext:
    """Per-job capture state: rng derivation labels + a recent trace ring.

    Armed by :func:`~repro.experiments.runner.execute_job_safe` before
    the job body (so chaos- and sanitizer-induced failures are both
    covered); ``restore()`` must run afterwards whatever happened.
    When tracing is already on, the caller's recorder is left alone and
    the bundle takes its most recent events instead.
    """

    def __init__(self, directory: Path):
        self.directory = directory
        self._private: Optional[TraceRecorder] = None
        self._prev_tracer: Optional[TraceRecorder] = None
        rng_utils.start_label_capture()
        if not telem.trace_on:
            self._private = TraceRecorder(capacity=TRACE_CAPACITY)
            self._prev_tracer = telem.swap_tracer(self._private)
            telem.enable_tracing()

    @staticmethod
    def arm_if_enabled() -> Optional["CaptureContext"]:
        directory = capture_dir()
        return CaptureContext(directory) if directory is not None else None

    def restore(self) -> None:
        rng_utils.stop_label_capture()
        if self._private is not None:
            telem.swap_tracer(self._prev_tracer)
            telem.disable_tracing()
            self._private = None
            self._prev_tracer = None

    # -- bundle assembly -----------------------------------------------
    def _recent_trace(self) -> List[Dict[str, Any]]:
        tracer = self._private if self._private is not None else telem.get_tracer()
        events = tracer.events()[-TRACE_CAPACITY:]
        return [event.to_json_dict() for event in events]

    def write_bundle(self, result: ExperimentResult,
                     exc: Optional[BaseException] = None) -> Path:
        """Persist one failed job as a bundle; returns the bundle path."""
        import repro
        from repro.experiments.checkpoint import job_key
        from repro.telemetry import ids

        violation = None
        if isinstance(exc, sanit.InvariantViolation):
            violation = exc.to_json_dict()
        digest = failure_digest(result.name, dict(result.params),
                                result.seed, result.error)
        key = job_key(result.name, result.params, result.seed)
        record = {
            "schema": BUNDLE_SCHEMA,
            "kind": BUNDLE_KIND,
            "name": result.name,
            "params": dict(result.params),
            "seed": result.seed,
            "error": result.error,
            "outcome": result.outcome,
            "digest": digest,
            "sanitize_level": sanit.current_level(),
            "violation": violation,
            "chaos": os.environ.get("REPRO_CHAOS", "").strip() or None,
            "rng_labels": list(rng_utils._capture_labels or []),
            "trace": self._recent_trace(),
            "job_key": key,
            "run_id": getattr(result, "run_id", None) or ids.current_run_id(),
            "job_id": getattr(result, "job_id", None) or ids.job_id_from_key(key),
            "repro_version": repro.__version__,
            "captured_at": time.time(),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{result.name}-{result.seed}-{digest}.json"
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, indent=1, sort_keys=True,
                                  default=repr))
        os.replace(tmp, path)
        if telem.metrics_on:
            telem.counter("failure_bundles_written_total",
                          outcome=result.outcome).inc()
        return path


def load_bundle(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a failure bundle; raises :class:`BundleError`."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except OSError as exc:
        raise BundleError(f"cannot read bundle {path}: {exc}") from exc
    except ValueError as exc:
        raise BundleError(f"bundle {path} is not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise BundleError(f"bundle {path} is not a JSON object")
    if record.get("kind") != BUNDLE_KIND:
        raise BundleError(
            f"bundle {path} has kind {record.get('kind')!r}, "
            f"expected {BUNDLE_KIND!r}"
        )
    if record.get("schema") != BUNDLE_SCHEMA:
        raise BundleError(
            f"bundle {path} has schema {record.get('schema')!r}, "
            f"this version reads schema {BUNDLE_SCHEMA}"
        )
    for key, kinds in (("name", str), ("params", dict), ("digest", str)):
        if not isinstance(record.get(key), kinds):
            raise BundleError(f"bundle {path} is missing a valid {key!r} field")
    seed = record.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise BundleError(f"bundle {path} has a non-integer seed {seed!r}")
    return record


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of re-executing a captured failure."""

    reproduced: bool
    expected_digest: str
    digest: str
    result: ExperimentResult

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "reproduced": self.reproduced,
            "expected_digest": self.expected_digest,
            "digest": self.digest,
            "outcome": self.result.outcome,
            "error": self.result.error,
        }


def replay_bundle(bundle: Dict[str, Any],
                  timeout_s: Optional[float] = None) -> ReplayReport:
    """Deterministically re-execute a captured failure.

    The job reruns under the bundle's knobs: the recorded chaos
    schedule (with once-claims reset so injected faults fire again),
    the recorded sanitizer level, and capture disarmed (a replay must
    not write bundles of itself).  The caller's environment and
    sanitizer level are restored afterwards.

    ``reproduced`` means the rerun *failed* with the identical failure
    digest — a clean rerun never reproduces, even though a success
    digest exists.
    """
    from repro import chaos
    from repro.experiments.runner import call_with_deadline, execute_job_safe

    saved = {
        key: os.environ.get(key)
        for key in (chaos.ENV_CHAOS, chaos.ENV_CHAOS_STATE,
                    sanit.ENV_SANITIZE, ENV_CAPTURE)
    }
    prev_level = sanit.current_level()
    try:
        if bundle.get("chaos"):
            os.environ[chaos.ENV_CHAOS] = bundle["chaos"]
        else:
            os.environ.pop(chaos.ENV_CHAOS, None)
        os.environ.pop(chaos.ENV_CHAOS_STATE, None)
        os.environ[sanit.ENV_SANITIZE] = bundle.get("sanitize_level") or "off"
        os.environ[ENV_CAPTURE] = "off"
        chaos.reset()
        sanit.sync_from_env()
        result = call_with_deadline(
            lambda: execute_job_safe(bundle["name"],
                                     params=dict(bundle["params"]),
                                     seed=bundle.get("seed")),
            timeout_s,
        )
        digest = failure_digest(result.name, dict(result.params),
                                result.seed, result.error)
        return ReplayReport(
            reproduced=result.error is not None and digest == bundle["digest"],
            expected_digest=bundle["digest"],
            digest=digest,
            result=result,
        )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        chaos.reset()
        if saved[sanit.ENV_SANITIZE] is None:
            sanit.set_level(prev_level)
        else:
            sanit.sync_from_env()
