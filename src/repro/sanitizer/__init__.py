"""Runtime invariant checking for the simulator state itself.

``repro.sanitizer`` is the model-layer counterpart of the execution
hardening in :mod:`repro.experiments.runner` and :mod:`repro.chaos`:
per-subsystem invariant checkers (:mod:`repro.sanitizer.checks`) run
behind a near-zero-cost disabled-by-default guard
(:mod:`repro.sanitizer.runtime`), and failures capture to replayable
bundles (:mod:`repro.sanitizer.bundle`).

Note: :mod:`repro.sanitizer.bundle` is intentionally *not* imported
here — it pulls in the experiment layer, and this package must stay
importable from model code (DRAM banks, FTLs) without cycles.
"""

from repro.sanitizer import checks  # noqa: F401  (registers the checkers)
from repro.sanitizer.runtime import (
    ENV_SANITIZE,
    LEVELS,
    CheckerEntry,
    InvariantViolation,
    check,
    current_level,
    note,
    register,
    registered,
    set_level,
    sync_from_env,
    violation,
)

__all__ = [
    "ENV_SANITIZE",
    "LEVELS",
    "CheckerEntry",
    "InvariantViolation",
    "check",
    "current_level",
    "note",
    "register",
    "registered",
    "set_level",
    "sync_from_env",
    "violation",
]
