"""The registered invariant classes.

Each checker guards one simulator subsystem and is duck-typed against
that subsystem's internal state — this module imports no model code, so
the sanitizer package stays import-light and cycle-free.  Every
subsystem key registered here has a paired state-corruption injector in
:mod:`repro.chaos.state`; the negative-test suite asserts the pairing
is complete and that each injected corruption is detected at ``full``
level with the right attribution.

Checker contract (see :class:`repro.sanitizer.runtime.CheckerEntry`):

* ``check(obj, full, ctx)`` — cheap O(1) structural checks always;
  expensive whole-structure scans only when ``full`` is true.  Hot-path
  scans (FTL bijectivity) amortize over :data:`FULL_SCAN_INTERVAL`
  calls unless the call is forced (``ctx["force"]``, set after a chaos
  injection) or sits at a structural boundary (``ctx["boundary"]``,
  e.g. after garbage collection).
* ``note(obj, ctx)`` — shadow-state maintenance from legitimate
  mutation points; only invoked at ``full`` level.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict

import numpy as np

from repro.sanitizer.runtime import CheckerEntry, register, violation

#: Hot-path full scans run once every this many checks (plus at forced
#: and boundary calls), bounding the amortized cost of ``full``.
FULL_SCAN_INTERVAL = 64

#: Fixed root seed for the ECC round-trip spot checks, so the checker
#: never consumes experiment randomness and is deterministic per code.
_ECC_CHECK_SEED = 0x5A17


def _row_digest(bits: np.ndarray) -> int:
    """crc32 of a row's packed bit array (the stored-data shadow digest)."""
    return zlib.crc32(np.packbits(bits).tobytes())


# ----------------------------------------------------------------------
# dram.bank — row-buffer/charge coherence + stored-data shadow digests
# ----------------------------------------------------------------------
def _check_dram_bank(bank: Any, full: bool, ctx: Dict[str, Any]) -> None:
    rows = bank.geometry.rows
    open_row = bank.open_row
    if open_row is not None and not 0 <= open_row < rows:
        violation("dram.bank", "open-row out of range",
                  f"open_row={open_row}, rows={rows}")
    row = ctx.get("row")
    if row is not None:
        pressure = bank._pressure.get(row, 0.0)
        peak = bank._peak.get(row, 0.0)
        if not pressure >= 0.0 or not peak >= 0.0:
            violation("dram.bank", "negative disturbance charge",
                      f"row={row}, pressure={pressure}, peak={peak}")
    state = getattr(bank, "_cs", None)  # columnar engine only
    if state is not None:
        if row is not None and row in state.store and row in state.flips:
            violation(
                "dram.bank", "columnar storage incoherent",
                f"row={row} holds both explicit data and pending flips")
        if full and ctx.get("force"):
            _scan_columnar_state(state)
    if not full:
        return
    digests = bank.__dict__.get("_sanit_digest")
    if not digests:
        return
    if ctx.get("force"):
        stale = [r for r in sorted(digests) if r in bank._data]
    elif row in digests and row in bank._data:
        stale = [row]
    else:
        return
    for r in stale:
        expected = digests[r]
        actual = _row_digest(bank._data[r])
        if actual != expected:
            violation(
                "dram.bank", "stored-data digest mismatch",
                f"row={r}: data changed outside a modeled write/flip "
                f"(digest {actual:#010x} != shadow {expected:#010x})",
            )


def _scan_columnar_state(state: Any) -> None:
    """Whole-structure scan of the columnar engine's sparse storage
    (forced full checks only — O(touched rows))."""
    overlap = state.store.keys() & state.flips.keys()
    if overlap:
        violation("dram.bank", "columnar storage incoherent",
                  f"rows {sorted(overlap)[:8]} hold both explicit data "
                  f"and pending flips")
    mask = state._instantiated
    for label, keys in (("store", state.store), ("flips", state.flips)):
        for r in keys:
            if not 0 <= r < state.rows:
                violation("dram.bank", "columnar storage incoherent",
                          f"{label} key {r} outside [0, {state.rows})")
            elif mask is None or not mask[r]:
                violation(
                    "dram.bank", "columnar storage incoherent",
                    f"{label} row {r} not marked instantiated")
    touched = state._touched
    n_touched = 0 if touched is None else int(touched.sum())
    if n_touched != len(state.touch_order):
        violation(
            "dram.bank", "columnar touch accounting incoherent",
            f"{n_touched} touched rows vs {len(state.touch_order)} "
            f"touch-order entries")
    for flips in state.flips.values():
        if len(flips) and (np.any(flips[1:] <= flips[:-1])
                           or flips[0] < 0):
            violation("dram.bank", "columnar flip set corrupt",
                      "pending-flip bits not sorted unique non-negative")
            break


def _note_dram_bank(bank: Any, ctx: Dict[str, Any]) -> None:
    row = ctx.get("row")
    if row is None:
        return
    bits = bank._data.get(row)
    if bits is not None:
        bank.__dict__.setdefault("_sanit_digest", {})[row] = _row_digest(bits)


register(CheckerEntry(
    subsystem="dram.bank",
    check=_check_dram_bank,
    note=_note_dram_bank,
    description=("row-buffer pointer and disturbance-charge coherence; "
                 "at full, crc32 shadow digests of stored row data"),
))


# ----------------------------------------------------------------------
# dram.refresh — refresh-deadline and round-robin cursor accounting
# ----------------------------------------------------------------------
def _check_dram_refresh(engine: Any, full: bool, ctx: Dict[str, Any]) -> None:
    rows = engine.module.geometry.rows
    if not engine.interval_ns > 0 or not np.isfinite(engine.interval_ns):
        violation("dram.refresh", "non-positive refresh interval",
                  f"interval_ns={engine.interval_ns}")
    if not 0 <= engine._cursor < rows:
        violation("dram.refresh", "refresh cursor out of range",
                  f"cursor={engine._cursor}, rows={rows}")
    if engine.rows_per_ref < 1:
        violation("dram.refresh", "rows_per_ref below 1",
                  f"rows_per_ref={engine.rows_per_ref}")
    if not np.isfinite(engine.next_ref_ns) or engine.next_ref_ns <= 0:
        violation("dram.refresh", "refresh deadline lost",
                  f"next_ref_ns={engine.next_ref_ns}")
    if engine._pass_index < 0:
        violation("dram.refresh", "negative pass index",
                  f"pass_index={engine._pass_index}")
    if not full:
        return
    stats = engine.stats
    banks = engine.module.geometry.banks
    ceiling = stats.ref_commands * engine.rows_per_ref * banks
    if stats.rows_refreshed > ceiling:
        violation(
            "dram.refresh", "refresh accounting incoherent",
            f"rows_refreshed={stats.rows_refreshed} exceeds "
            f"{stats.ref_commands} REFs x {engine.rows_per_ref} rows x "
            f"{banks} banks = {ceiling}",
        )


register(CheckerEntry(
    subsystem="dram.refresh",
    check=_check_dram_refresh,
    description=("refresh-deadline, cursor, and pass-index bounds; at "
                 "full, REF-command vs rows-refreshed coherence"),
))


# ----------------------------------------------------------------------
# ecc.codec — encode/decode round-trip spot checks
# ----------------------------------------------------------------------
def _ecc_check_rng(code: Any) -> np.random.Generator:
    # Local import keeps this module's import graph to numpy + runtime.
    from repro.utils.rng import derive_seed

    return np.random.default_rng(
        derive_seed(_ECC_CHECK_SEED, "sanitizer-ecc",
                    type(code).__name__, code.data_bits)
    )


def _check_ecc_codec(code: Any, full: bool, ctx: Dict[str, Any]) -> None:
    rng = _ecc_check_rng(code)
    data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
    try:
        codeword = code.encode(data)
        clean = code.decode(codeword)
    except Exception as exc:  # codec blew up on its own output
        violation("ecc.codec", "round trip raised",
                  f"{type(code).__name__}: {type(exc).__name__}: {exc}")
        return
    if clean.status.value != "clean" or not np.array_equal(clean.data, data):
        violation(
            "ecc.codec", "clean round trip corrupted data",
            f"{type(code).__name__}: status={clean.status.value}, "
            f"data mismatch={not np.array_equal(clean.data, data)}",
        )
    if not full:
        return
    # One injected single-bit error must be corrected or detected —
    # never returned CLEAN with wrong data.
    position = int(rng.integers(0, code.code_bits))
    corrupted = codeword.copy()
    corrupted[position] ^= 1
    try:
        result = code.decode(corrupted)
    except Exception as exc:
        violation("ecc.codec", "single-error decode raised",
                  f"{type(code).__name__}: {type(exc).__name__}: {exc}")
        return
    if result.status.value == "clean" and not np.array_equal(result.data, data):
        violation(
            "ecc.codec", "single-bit error passed as clean",
            f"{type(code).__name__}: flipped codeword bit {position}",
        )


register(CheckerEntry(
    subsystem="ecc.codec",
    check=_check_ecc_codec,
    description=("deterministic encode->decode round-trip spot check; "
                 "at full, a single-bit error must not decode CLEAN"),
))


# ----------------------------------------------------------------------
# flash.ftl — logical -> physical mapping bijectivity
# ----------------------------------------------------------------------
def _check_flash_ftl(ftl: Any, full: bool, ctx: Dict[str, Any]) -> None:
    if not 0 <= ftl._active < ftl.n_blocks:
        violation("flash.ftl", "active block out of range",
                  f"active={ftl._active}, n_blocks={ftl.n_blocks}")
    ptr = ftl._write_ptr[ftl._active]
    if not 0 <= ptr <= ftl.pages_per_block:
        violation("flash.ftl", "write pointer out of range",
                  f"block={ftl._active}, ptr={ptr}, "
                  f"pages_per_block={ftl.pages_per_block}")
    if not full:
        return
    tick = ftl.__dict__.get("_sanit_tick", 0) + 1
    ftl.__dict__["_sanit_tick"] = tick
    if not (ctx.get("force") or ctx.get("boundary")
            or tick % FULL_SCAN_INTERVAL == 0):
        return
    if ftl._active in ftl._free_blocks:
        violation("flash.ftl", "active block marked free",
                  f"block={ftl._active}")
    if len(set(ftl._free_blocks)) != len(ftl._free_blocks):
        violation("flash.ftl", "duplicate free block", str(ftl._free_blocks))
    seen: Dict[tuple, int] = {}
    mapped = 0
    for lpn, location in enumerate(ftl._map):
        if location is None:
            continue
        mapped += 1
        block, page = location
        if not (0 <= block < ftl.n_blocks and 0 <= page < ftl.pages_per_block):
            violation("flash.ftl", "mapping points off-device",
                      f"lpn={lpn} -> ({block}, {page})")
        if location in seen:
            violation(
                "flash.ftl", "mapping lost bijectivity",
                f"lpns {seen[location]} and {lpn} share physical page "
                f"({block}, {page})",
            )
        seen[location] = lpn
        if not ftl._valid[block][page]:
            violation("flash.ftl", "mapped page marked invalid",
                      f"lpn={lpn} -> ({block}, {page})")
        owner = int(ftl._owner[block][page])
        if owner != lpn:
            violation(
                "flash.ftl", "mapping lost bijectivity",
                f"lpn={lpn} -> ({block}, {page}) but page owner is {owner}",
            )
    valid_total = int(sum(v.sum() for v in ftl._valid))
    if valid_total != mapped:
        violation(
            "flash.ftl", "valid-page accounting incoherent",
            f"{valid_total} valid pages vs {mapped} mapped lpns",
        )


register(CheckerEntry(
    subsystem="flash.ftl",
    check=_check_flash_ftl,
    description=("active-block/write-pointer bounds; at full, complete "
                 "logical->physical bijectivity and valid-page scan "
                 "(amortized on the write path)"),
))


# ----------------------------------------------------------------------
# pcm.startgap — start-gap permutation validity
# ----------------------------------------------------------------------
def _check_pcm_startgap(sg: Any, full: bool, ctx: Dict[str, Any]) -> None:
    if not 0 <= sg._gap <= sg.n_logical:
        violation("pcm.startgap", "gap slot out of range",
                  f"gap={sg._gap}, slots={sg.n_logical + 1}")
    if not 0 <= sg._writes_since_move <= sg.gap_period:
        violation("pcm.startgap", "gap schedule counter out of range",
                  f"writes_since_move={sg._writes_since_move}, "
                  f"gap_period={sg.gap_period}")
    if not full:
        return
    mapping = sg._mapping
    if mapping.min() < 0 or mapping.max() > sg.n_logical:
        violation("pcm.startgap", "mapping points off-device",
                  f"range [{mapping.min()}, {mapping.max()}], "
                  f"slots={sg.n_logical + 1}")
    if len(np.unique(mapping)) != sg.n_logical:
        violation(
            "pcm.startgap", "mapping lost bijectivity",
            f"{sg.n_logical} logical lines occupy "
            f"{len(np.unique(mapping))} distinct slots",
        )
    if (mapping == sg._gap).any():
        holder = int(np.nonzero(mapping == sg._gap)[0][0])
        violation("pcm.startgap", "gap slot occupied",
                  f"logical line {holder} mapped into gap slot {sg._gap}")


register(CheckerEntry(
    subsystem="pcm.startgap",
    check=_check_pcm_startgap,
    description=("gap-slot and schedule-counter bounds; at full, the "
                 "logical->physical permutation must stay injective "
                 "with the gap unoccupied"),
))
