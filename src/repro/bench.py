"""The bench-regression harness: is the simulator getting slower?

A *bench* is one experiment invocation pinned to fixed parameters and a
fixed seed, run with the span profiler and metrics on, and reported as
wall time plus a domain throughput (activations/s, ECC words/s, PCM
writes/s, ...).  :data:`SUITE` covers each simulated technology — DRAM
hammering, flash two-step programming, ECC evaluation, retention
profiling, PCM endurance — so a slowdown in any subsystem moves at
least one bench.

``repro bench`` runs the suite and writes a schema-versioned
``BENCH_<timestamp>.json``; ``repro bench --compare BASELINE.json``
diffs a fresh (or ``--input``-loaded) run against a saved baseline and
exits nonzero when any bench slowed beyond the threshold — CI runs it
in ``--warn-only`` mode against ``benchmarks/baseline.json``.

Wall times are machine-dependent: comparisons are only meaningful
between runs on comparable hardware, which is why the committed
baseline is advisory (CI warns, the local gate fails).
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.runner import JobTimeout, call_with_deadline, execute_job
from repro.telemetry.ids import environment_fingerprint
from repro.telemetry.ledger import git_sha

__all__ = [
    "BENCH_SCHEMA",
    "BenchSpec",
    "SUITE",
    "bench_names",
    "compare_reports",
    "fingerprint_mismatches",
    "load_report",
    "run_bench",
    "run_suite",
    "write_report",
]

BENCH_SCHEMA = 1

#: Default regression threshold (percent wall-time increase) for
#: ``repro bench --compare``.
DEFAULT_REGRESS_PCT = 10.0


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark: an experiment pinned to params, seed, and a unit.

    Attributes:
        name: stable bench identifier (comparison key across reports).
        experiment: registry name of the experiment to run.
        params: full-size parameter bindings.
        quick_params: smaller bindings for ``--quick`` / CI runs.
        seed: fixed seed (throughput must not vary with the draw).
        unit_metric: telemetry counter whose total is the work done, or
            ``None`` when the bench has no natural unit (wall time only).
        unit: human name of one unit of work.
    """

    name: str
    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    quick_params: Optional[Mapping[str, Any]] = None
    seed: int = 0
    unit_metric: Optional[str] = None
    unit: str = "ops"

    def bindings(self, quick: bool = False) -> Dict[str, Any]:
        if quick and self.quick_params is not None:
            return dict(self.quick_params)
        return dict(self.params)


#: One bench per simulated technology (§II DRAM, §III flash/PCM, plus
#: the ECC and retention analysis machinery).
SUITE: List[BenchSpec] = [
    BenchSpec(
        name="dram_hammer",
        experiment="rowhammer_basic",
        params={"victims": 64},
        quick_params={"victims": 8},
        unit_metric="dram_activations_total",
        unit="activations",
    ),
    BenchSpec(
        name="flash_twostep",
        experiment="twostep_study",
        params={"pe_cycles": 8000},
        quick_params={"pe_cycles": 2000},
        unit_metric="flash_page_reads_total",
        unit="page reads",
    ),
    BenchSpec(
        name="ecc_ladder",
        experiment="ecc_study",
        params={"victims": 400},
        quick_params={"victims": 60},
        unit_metric="ecc_words_total",
        unit="words",
    ),
    BenchSpec(
        name="retention_profiling",
        experiment="retention_study",
        params={"rows": 2048, "cells_per_row": 512},
        quick_params={"rows": 256, "cells_per_row": 128},
    ),
    BenchSpec(
        name="flash_fcr",
        experiment="fcr_study",
        unit_metric="flash_page_reads_total",
        unit="page reads",
    ),
    BenchSpec(
        name="pcm_endurance",
        experiment="pcm_study",
        unit_metric="pcm_writes_total",
        unit="writes",
    ),
]


def bench_names() -> List[str]:
    return [spec.name for spec in SUITE]


def _counter_total(metrics: Optional[Mapping[str, Any]], name: str) -> float:
    if not metrics:
        return 0.0
    return float(sum(
        entry["value"] for entry in metrics.get("counters", ())
        if entry["name"] == name
    ))


def run_bench(spec: BenchSpec, quick: bool = False,
              timeout_s: Optional[float] = None) -> Dict[str, Any]:
    """Execute one bench; returns its JSON-safe report entry.

    The job runs through :func:`execute_job` with metrics *and* the
    span profiler on, so the entry carries a per-phase breakdown along
    with the headline wall time.  With ``timeout_s`` the bench runs
    under a wall-clock deadline: a bench that exceeds it yields an
    entry with ``error`` set (``"JobTimeout: ..."``) instead of hanging
    the suite.
    """
    start = time.perf_counter()
    try:
        result = call_with_deadline(
            lambda: execute_job(
                spec.experiment,
                params=spec.bindings(quick),
                seed=spec.seed,
                collect_metrics=True,
                collect_profile=True,
            ),
            timeout_s,
        )
    except JobTimeout as exc:
        return {
            "name": spec.name,
            "experiment": spec.experiment,
            "params": spec.bindings(quick),
            "seed": spec.seed,
            "quick": quick,
            "wall_s": time.perf_counter() - start,
            "unit": spec.unit,
            "units": 0.0,
            "throughput": None,
            "peak_rss_kb": 0,
            "spans": [],
            "error": f"JobTimeout: {exc}",
        }
    units = _counter_total(result.metrics, spec.unit_metric) if spec.unit_metric else 0.0
    wall = result.duration_s
    entry: Dict[str, Any] = {
        "name": spec.name,
        "experiment": spec.experiment,
        "params": spec.bindings(quick),
        "seed": spec.seed,
        "quick": quick,
        "wall_s": wall,
        "unit": spec.unit,
        "units": units,
        "throughput": (units / wall) if (units and wall > 0) else None,
        "peak_rss_kb": result.peak_rss_kb,
        "spans": (result.profile or {}).get("spans", []),
    }
    return entry


def run_suite(names: Optional[Sequence[str]] = None,
              quick: bool = False,
              timeout_s: Optional[float] = None) -> Dict[str, Any]:
    """Run the (possibly filtered) suite; returns the full report."""
    selected = SUITE if not names else [s for s in SUITE if s.name in set(names)]
    if names:
        unknown = set(names) - {s.name for s in SUITE}
        if unknown:
            raise ValueError(
                f"unknown bench(es): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(bench_names())}"
            )
    import repro

    return {
        "schema": BENCH_SCHEMA,
        "ts": time.time(),
        "time": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "host": socket.gethostname(),
        "repro_version": repro.__version__,
        "git_sha": git_sha(),
        "fingerprint": environment_fingerprint(),
        "quick": quick,
        "benches": [run_bench(spec, quick=quick, timeout_s=timeout_s)
                    for spec in selected],
    }


def write_report(report: Mapping[str, Any],
                 path: Union[str, Path, None] = None) -> Path:
    """Write a report; default filename is ``BENCH_<timestamp>.json``."""
    if path is None:
        stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(report.get("ts", time.time())))
        path = Path(f"BENCH_{stamp}.json")
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and minimally validate a bench report."""
    with open(path) as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "benches" not in report:
        raise ValueError(f"{path}: not a bench report (no 'benches' key)")
    schema = report.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: bench schema {schema!r} not supported (want {BENCH_SCHEMA})"
        )
    return report


def fingerprint_mismatches(current: Mapping[str, Any],
                           baseline: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Environment-fingerprint fields that differ between two reports.

    Wall-time deltas across different hosts, interpreters, or DRAM
    engines measure the environment, not the code — the comparison
    must say so instead of silently gating on them.  Fields missing
    from one side (pre-fingerprint baselines) are never mismatches.
    """
    fp_cur = current.get("fingerprint") or {}
    fp_base = baseline.get("fingerprint") or {}
    out: List[Dict[str, Any]] = []
    for key in sorted(set(fp_cur) | set(fp_base)):
        a, b = fp_base.get(key), fp_cur.get(key)
        if a is not None and b is not None and a != b:
            out.append({"field": key, "baseline": a, "current": b})
    return out


def compare_reports(current: Mapping[str, Any], baseline: Mapping[str, Any],
                    threshold_pct: float = DEFAULT_REGRESS_PCT) -> Dict[str, Any]:
    """Diff two reports bench-by-bench on wall time.

    A bench *regresses* when its wall time grew more than
    ``threshold_pct`` percent over the baseline.  Benches present on
    only one side are reported but never counted as regressions.
    ``fingerprint_mismatches`` lists environment differences (host,
    python/numpy, DRAM engine) that make the wall-time comparison
    apples-to-oranges; callers should surface them as warnings.
    """
    base_by_name = {b["name"]: b for b in baseline.get("benches", ())}
    cur_by_name = {b["name"]: b for b in current.get("benches", ())}
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for name, bench in cur_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            rows.append({"name": name, "wall_s": bench["wall_s"],
                         "base_wall_s": None, "delta_pct": None,
                         "regressed": False, "note": "new"})
            continue
        base_wall = base["wall_s"]
        delta_pct = (100.0 * (bench["wall_s"] - base_wall) / base_wall
                     if base_wall > 0 else 0.0)
        regressed = delta_pct > threshold_pct
        if regressed:
            regressions.append(name)
        rows.append({"name": name, "wall_s": bench["wall_s"],
                     "base_wall_s": base_wall, "delta_pct": delta_pct,
                     "regressed": regressed, "note": ""})
    missing = sorted(set(base_by_name) - set(cur_by_name))
    for name in missing:
        rows.append({"name": name, "wall_s": None,
                     "base_wall_s": base_by_name[name]["wall_s"],
                     "delta_pct": None, "regressed": False, "note": "missing"})
    return {
        "threshold_pct": threshold_pct,
        "rows": rows,
        "regressions": regressions,
        "fingerprint_mismatches": fingerprint_mismatches(current, baseline),
        "ok": not regressions,
    }
