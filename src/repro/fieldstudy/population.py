"""The 129-module test population of the original study.

The ISCA 2014 paper tested 129 DDR3 modules from three anonymized
major manufacturers, dated 2008-2014.  We rebuild an equivalent
population: per-manufacturer module counts and a manufacture-date
spread matching Figure 1's x-axis — a few pre-2010 (invulnerable)
parts, rising volume through 2012-2013, a handful of 2014 parts.
Exact serials/dates of the original modules are not public; the
bucket counts below are chosen so the headline aggregate claims
(110/129 vulnerable, earliest vulnerable part from 2010, all
2012-2013 parts vulnerable) emerge from the vintage calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dram.geometry import DDR3_2GB, DramGeometry
from repro.dram.module import DramModule
from repro.dram.timing import DDR3_1066, TimingParams

#: Modules per (manufacturer, year) bucket; totals: A=43, B=54, C=32 -> 129.
POPULATION_BUCKETS: Dict[str, Dict[int, int]] = {
    "A": {2008: 2, 2009: 4, 2010: 6, 2011: 8, 2012: 9, 2013: 9, 2014: 5},
    "B": {2008: 2, 2009: 4, 2010: 6, 2011: 10, 2012: 13, 2013: 13, 2014: 6},
    "C": {2008: 1, 2009: 3, 2010: 4, 2011: 6, 2012: 8, 2013: 7, 2014: 3},
}


@dataclass(frozen=True)
class ModuleSpec:
    """Identity of one module in the population."""

    serial: str
    manufacturer: str
    date: float

    @property
    def year(self) -> int:
        return int(self.date)


def build_population() -> List[ModuleSpec]:
    """Construct the 129-module population, dates spread within years."""
    specs: List[ModuleSpec] = []
    for manufacturer, buckets in POPULATION_BUCKETS.items():
        index = 0
        for year in sorted(buckets):
            count = buckets[year]
            for i in range(count):
                date = year + (i + 0.5) / count
                specs.append(
                    ModuleSpec(
                        serial=f"{manufacturer}{index:02d}",
                        manufacturer=manufacturer,
                        date=round(date, 3),
                    )
                )
                index += 1
    return specs


def population_size() -> int:
    """Total modules in the population (129)."""
    return sum(sum(buckets.values()) for buckets in POPULATION_BUCKETS.values())


def instantiate(
    spec: ModuleSpec,
    geometry: DramGeometry = DDR3_2GB,
    timing: TimingParams = DDR3_1066,
    seed: int = 0,
) -> DramModule:
    """Build the simulated module for a population entry."""
    return DramModule.from_vintage(
        manufacturer=spec.manufacturer,
        manufacture_date=spec.date,
        serial=spec.serial,
        seed=seed,
        geometry=geometry,
        timing=timing,
    )
