"""Synthetic field study: the 129-module campaign behind Figure 1."""

from repro.fieldstudy.campaign import (
    CampaignSummary,
    ModuleTestResult,
    run_campaign,
    scan_module_rows,
    victim_pressure,
    whole_module_errors,
)
from repro.fieldstudy.fleet import FleetExposure, fleet_exposure, patch_rollout_study
from repro.fieldstudy.population import (
    POPULATION_BUCKETS,
    ModuleSpec,
    build_population,
    instantiate,
    population_size,
)

__all__ = [
    "CampaignSummary",
    "ModuleTestResult",
    "run_campaign",
    "scan_module_rows",
    "victim_pressure",
    "whole_module_errors",
    "FleetExposure",
    "fleet_exposure",
    "patch_rollout_study",
    "POPULATION_BUCKETS",
    "ModuleSpec",
    "build_population",
    "instantiate",
    "population_size",
]
