"""The RowHammer test campaign that regenerates Figure 1.

The original methodology (ISCA 2014): for every row of every module,
alternately activate the two rows sandwiching it as fast as timing
allows for one full refresh window, with an adversarial data pattern,
then count flipped cells.  The victim therefore accumulates
``tREFW / tRC`` adjacent activations (both aggressors couple into it).

Two scan paths, statistically identical under the fault model:

* :func:`scan_module_rows` — device-level double-sided hammering of a
  row range through the exact bank accounting (used by tests to verify
  the fast path);
* :func:`whole_module_errors` — one vectorized draw of the *entire*
  module's weak-cell population (count ~ Binomial(cells, density),
  thresholds lognormal, polarity Bernoulli) evaluated against the test
  budget and pattern.  This is the same stochastic model sampled at
  module granularity, which makes testing 129 x 2 GiB modules feasible
  in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.stream import CommandStream
from repro.fieldstudy.population import ModuleSpec, build_population, instantiate
from repro.utils.rng import derive_rng
from repro.utils.units import GIGA


@dataclass
class ModuleTestResult:
    """Outcome of testing one module.

    Attributes:
        serial, manufacturer, date: module identity.
        errors: flipped cells observed.
        cells: cells tested (whole module for the vectorized path).
        budget: adjacent-activation pressure applied per victim.
    """

    serial: str
    manufacturer: str
    date: float
    errors: int
    cells: int
    budget: int

    @property
    def errors_per_billion(self) -> float:
        """Errors normalized per 10^9 cells (Figure 1's y-axis)."""
        return self.errors * GIGA / self.cells

    @property
    def year(self) -> int:
        """Manufacture year (Figure 1's x-axis bucket)."""
        return int(self.date)

    @property
    def vulnerable(self) -> bool:
        return self.errors > 0


def victim_pressure(module: DramModule, refresh_multiplier: float = 1.0) -> int:
    """Adjacent-activation pressure a double-sided sweep applies to each
    victim within one (scaled) refresh window."""
    timing = module.timing
    return int(timing.tREFW / refresh_multiplier / timing.tRC)


def whole_module_errors(
    module: DramModule,
    budget: Optional[int] = None,
    pattern: str = "rowstripe",
    refresh_multiplier: float = 1.0,
) -> ModuleTestResult:
    """Vectorized whole-module scan (see module docstring).

    Pattern semantics: the campaign (like the original study) runs each
    fill **and its inverse**, so every weak cell is exercised in its
    charged state in one of the two passes — hence every weak cell
    within budget counts.  ``rowstripe`` opposes aggressor and victim
    values so aggressor-sensitive cells get full coupling, whereas
    ``solid1`` leaves them relieved by ``dpd_relief``.
    """
    if pattern not in ("rowstripe", "solid1"):
        raise ValueError(f"unsupported campaign pattern {pattern!r}")
    profile = module.profile
    geometry = module.geometry
    if budget is None:
        budget = victim_pressure(module, refresh_multiplier)
    cells = geometry.total_cells
    if not profile.vulnerable:
        return _result(module, 0, cells, budget)
    rng = derive_rng(module.seed, "fullscan")
    n_weak = rng.binomial(cells, profile.weak_cell_density)
    if n_weak == 0:
        return _result(module, 0, cells, budget)
    # Exact binomial thinning of the per-cell model: a weak cell flips
    # iff its clipped-lognormal threshold (x dpd_relief for aggressor-
    # sensitive cells under a non-opposing pattern) is within budget.
    # The victim stores every cell charged under both campaign patterns
    # (true cells read 1, anti cells 0 in the per-row fill), so polarity
    # affects flip direction, not flip count.
    p_plain = _threshold_cdf(budget, profile)
    if pattern == "solid1":
        p_sensitive = _threshold_cdf(budget / profile.dpd_relief, profile)
        fs = profile.aggressor_sensitive_fraction
        p_flip = (1.0 - fs) * p_plain + fs * p_sensitive
    else:
        p_flip = p_plain
    errors = int(rng.binomial(n_weak, p_flip)) if p_flip > 0 else 0
    return _result(module, errors, cells, budget)


def _threshold_cdf(budget: float, profile) -> float:
    """P[threshold <= budget] for a clipped-lognormal hc_first cell."""
    if budget < profile.hc_first_min:
        return 0.0
    from scipy.stats import norm

    z = (np.log(budget) - np.log(profile.hc_first_median)) / profile.hc_first_sigma
    return float(norm.cdf(z))


def _result(module: DramModule, errors: int, cells: int, budget: int) -> ModuleTestResult:
    return ModuleTestResult(
        serial=module.serial,
        manufacturer=module.manufacturer,
        date=module.manufacture_date,
        errors=errors,
        cells=cells,
        budget=budget,
    )


def scan_module_rows(
    module: DramModule,
    bank: int,
    victims: Sequence[int],
    budget: Optional[int] = None,
) -> ModuleTestResult:
    """Device-level double-sided sweep over explicit victim rows.

    Exercises the exact bank accounting; each victim receives
    ``budget`` pressure (both neighbors hammered ``budget / 2`` times).
    Each victim runs as its own command stream because attribution
    needs per-victim flip-log boundaries — a single stream would let a
    later victim's aggressors disturb an earlier victim's neighborhood
    after its count was taken.
    """
    if budget is None:
        budget = victim_pressure(module)
    per_aggressor = budget // 2
    rows = module.geometry.rows
    dev = module.bank(bank)
    errors = 0
    for victim in victims:
        module.geometry.check_row(victim)
        stream = CommandStream()
        for aggressor in (victim - 1, victim + 1):
            if 0 <= aggressor < rows:
                stream.act(aggressor, per_aggressor)
        stream.settle()
        before = len(dev.stats.flip_log)
        dev.execute(stream)
        errors += sum(1 for row, *_rest in dev.stats.flip_log[before:]
                      if row == victim)
    cells = len(victims) * module.geometry.row_bits
    return _result(module, errors, cells, budget)


@dataclass
class CampaignSummary:
    """Aggregates over a full campaign (the Figure 1 dataset)."""

    results: List[ModuleTestResult]

    @property
    def modules_tested(self) -> int:
        return len(self.results)

    @property
    def modules_vulnerable(self) -> int:
        return sum(1 for r in self.results if r.vulnerable)

    @property
    def earliest_vulnerable_date(self) -> Optional[float]:
        dates = [r.date for r in self.results if r.vulnerable]
        return min(dates) if dates else None

    def all_vulnerable_between(self, start: float, end: float) -> bool:
        """Whether every module dated in [start, end) is vulnerable."""
        in_window = [r for r in self.results if start <= r.date < end]
        return bool(in_window) and all(r.vulnerable for r in in_window)

    def by_manufacturer(self) -> Dict[str, List[ModuleTestResult]]:
        out: Dict[str, List[ModuleTestResult]] = {}
        for r in self.results:
            out.setdefault(r.manufacturer, []).append(r)
        return out

    def peak_errors_per_billion(self, manufacturer: Optional[str] = None) -> float:
        pool = [r for r in self.results if manufacturer is None or r.manufacturer == manufacturer]
        return max((r.errors_per_billion for r in pool), default=0.0)

    def yearly_mean_rate(self, manufacturer: str) -> Dict[int, float]:
        """Mean errors/10^9 cells per manufacture year (Figure 1 series)."""
        buckets: Dict[int, List[float]] = {}
        for r in self.results:
            if r.manufacturer == manufacturer:
                buckets.setdefault(r.year, []).append(r.errors_per_billion)
        return {year: float(np.mean(vals)) for year, vals in sorted(buckets.items())}


def run_campaign(
    specs: Optional[Sequence[ModuleSpec]] = None,
    geometry: Optional[DramGeometry] = None,
    seed: int = 0,
    pattern: str = "rowstripe",
    refresh_multiplier: float = 1.0,
) -> CampaignSummary:
    """Test every module in the population; return the Figure 1 dataset."""
    from repro.dram.geometry import DDR3_2GB

    if specs is None:
        specs = build_population()
    if geometry is None:
        geometry = DDR3_2GB
    results = []
    for spec in specs:
        module = instantiate(spec, geometry=geometry, seed=seed)
        results.append(
            whole_module_errors(module, pattern=pattern, refresh_multiplier=refresh_multiplier)
        )
    return CampaignSummary(results=results)
