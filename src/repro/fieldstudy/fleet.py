"""Fleet-scale exposure: what the module mix means for a data center.

§III opens with the large-scale field studies ([76, 75]) showing
memory reliability degrading in production fleets.  This model turns
the per-module campaign into fleet-level security exposure: given a
fleet whose modules are drawn from a vintage mix, what fraction of
servers is RowHammer-compromisable, and how does replacing old stock
(or deploying a refresh-multiplier patch) move that number?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.fieldstudy.campaign import run_campaign
from repro.fieldstudy.population import build_population
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class FleetExposure:
    """Fleet vulnerability summary.

    Attributes:
        servers: fleet size.
        vulnerable_servers: servers whose module shows RowHammer errors.
        compromised_servers: vulnerable servers that an attacker with
            the given prevalence actually reached.
        by_year: vulnerable-server count per module vintage year.
    """

    servers: int
    vulnerable_servers: int
    compromised_servers: int
    by_year: Dict[int, int]

    @property
    def vulnerable_fraction(self) -> float:
        return self.vulnerable_servers / self.servers if self.servers else 0.0


def fleet_exposure(
    servers: int = 2000,
    vintage_weights: Optional[Dict[int, float]] = None,
    attack_prevalence: float = 0.05,
    refresh_multiplier: float = 1.0,
    seed: int = 0,
) -> FleetExposure:
    """Draw a fleet from the vintage mix and compute its exposure.

    Args:
        servers: number of servers (one module each).
        vintage_weights: {year: weight} module-age mix; default is a
            2014-era fleet skewed toward recent (vulnerable) stock.
        attack_prevalence: probability a given server runs attacker-
            controllable code (multi-tenant exposure).
        refresh_multiplier: deployed mitigation patch, if any.
        seed: fleet draw.
    """
    check_positive("servers", servers)
    check_probability("attack_prevalence", attack_prevalence)
    if vintage_weights is None:
        vintage_weights = {2009: 0.05, 2010: 0.1, 2011: 0.15, 2012: 0.3, 2013: 0.3, 2014: 0.1}
    rng = derive_rng(seed, "fleet")

    # One campaign gives the per-(vintage, manufacturer) verdicts; fleet
    # modules sample from the matching campaign entries.
    summary = run_campaign(seed=seed, refresh_multiplier=refresh_multiplier)
    by_year_pool: Dict[int, list] = {}
    for result in summary.results:
        by_year_pool.setdefault(result.year, []).append(result)

    years = sorted(vintage_weights)
    weights = np.array([vintage_weights[y] for y in years], dtype=float)
    weights /= weights.sum()
    picks = rng.choice(len(years), size=servers, p=weights)

    vulnerable = 0
    compromised = 0
    by_year: Dict[int, int] = {}
    for pick in picks:
        year = years[int(pick)]
        pool = by_year_pool.get(year)
        if not pool:
            continue
        module_result = pool[int(rng.integers(0, len(pool)))]
        if module_result.vulnerable:
            vulnerable += 1
            by_year[year] = by_year.get(year, 0) + 1
            if rng.random() < attack_prevalence:
                compromised += 1
    return FleetExposure(
        servers=servers,
        vulnerable_servers=vulnerable,
        compromised_servers=compromised,
        by_year=dict(sorted(by_year.items())),
    )


def patch_rollout_study(
    multipliers: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    servers: int = 2000,
    seed: int = 0,
) -> list:
    """Fleet exposure vs deployed refresh multiplier (the vendor patch)."""
    out = []
    for k in multipliers:
        exposure = fleet_exposure(servers=servers, refresh_multiplier=k, seed=seed)
        out.append(
            {
                "multiplier": k,
                "vulnerable_fraction": exposure.vulnerable_fraction,
                "compromised_servers": exposure.compromised_servers,
            }
        )
    return out
