"""Phase-Change Memory endurance model.

PCM cells wear out after a bounded number of writes (~10^7-10^8); §III
lists PCM among the emerging technologies whose reliability limits can
become *security* problems — a malicious workload that pins writes to
one line kills it quickly unless wear leveling intervenes (the
start-gap line of work [82] the paper cites).

Endurance is per-*line* (the write granularity), lognormally spread
around the process mean.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry import runtime as telem
from repro.utils.rng import derive_rng
from repro.utils.validation import check_int, check_nonnegative, check_positive

#: Per-line wear histogram edges (writes), log-spaced to endurance scale.
_PCM_WEAR_BUCKETS = (1e3, 1e4, 1e5, 1e6, 3e6, 1e7, 3e7, 1e8)


class PcmArray:
    """A PCM array of write lines with per-line endurance.

    Args:
        lines: number of physical lines.
        endurance_mean: median writes-to-failure per line.
        endurance_sigma: lognormal spread of endurance.
        seed: deterministic endurance draw.
    """

    def __init__(
        self,
        lines: int,
        endurance_mean: float = 1e7,
        endurance_sigma: float = 0.15,
        seed: int = 0,
    ) -> None:
        check_int("lines", lines)
        check_positive("lines", lines)
        check_positive("endurance_mean", endurance_mean)
        check_nonnegative("endurance_sigma", endurance_sigma)
        rng = derive_rng(seed, "pcm-endurance")
        self.lines = lines
        self.endurance = np.exp(
            rng.normal(np.log(endurance_mean), endurance_sigma, size=lines)
        )
        self.writes = np.zeros(lines, dtype=np.float64)

    def write(self, line: int, count: int = 1) -> None:
        """Apply ``count`` writes to a physical line."""
        if not 0 <= line < self.lines:
            raise IndexError(f"line {line} out of range")
        if count < 0:
            raise ValueError("count must be >= 0")
        if telem.spans_on:
            # The body is a couple of array ops; only enter the span
            # machinery when profiling is actually recording.
            with telem.span("pcm.write"):
                return self._write_body(line, count)
        self._write_body(line, count)

    def _write_body(self, line: int, count: int) -> None:
        self.writes[line] += count
        if telem.metrics_on:
            telem.counter("pcm_writes_total").inc(count)
            telem.histogram("pcm_line_writes", edges=_PCM_WEAR_BUCKETS).observe(
                self.writes[line])

    def failed_lines(self) -> np.ndarray:
        """Indices of lines past their endurance."""
        failed = np.nonzero(self.writes > self.endurance)[0]
        if telem.metrics_on:
            telem.gauge("pcm_failed_lines").set_max(len(failed))
        return failed

    @property
    def any_failed(self) -> bool:
        return bool(np.any(self.writes > self.endurance))

    @property
    def total_writes(self) -> float:
        return float(self.writes.sum())

    def headroom(self) -> float:
        """Smallest remaining write budget across lines."""
        return float((self.endurance - self.writes).min())
