"""Phase-Change Memory: endurance, Start-Gap wear leveling, wear attacks."""

from repro.pcm.array import PcmArray
from repro.pcm.attacks import attacker_guess_logical, lifetime_under_mapping_aware_attack
from repro.pcm.startgap import StartGap, lifetime_under_pinned_attack

__all__ = [
    "PcmArray",
    "StartGap",
    "attacker_guess_logical",
    "lifetime_under_mapping_aware_attack",
    "lifetime_under_pinned_attack",
]
