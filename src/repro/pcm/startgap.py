"""Start-Gap wear leveling (Qureshi+, MICRO 2009).

``N`` logical lines live in ``N + 1`` physical slots; one slot is a
*gap*.  Every ``gap_period`` writes the line physically preceding the
gap is copied into it and the gap moves down by one — after ``N + 1``
moves the whole address space has rotated by one slot.  The mapping is
algebraic in the original paper; here it is kept as an explicit
permutation validated by property tests (bijective at every step, one
relocation per move).

An optional *static randomization* layer (a Feistel-style bijection on
line addresses) models the paper's full design, which defends against
spatially clustered adversarial writes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pcm.array import PcmArray
from repro.sanitizer import runtime as sanit
from repro.utils.rng import derive_rng
from repro.utils.validation import check_int, check_positive


class StartGap:
    """Start-Gap remapper bound to a :class:`PcmArray`.

    Args:
        array: physical array with ``N + 1`` lines.
        gap_period: writes between gap movements (the psi parameter).
        randomize: install the static address-randomization layer.
        seed: randomization seed.
    """

    def __init__(
        self,
        array: PcmArray,
        gap_period: int = 16,
        randomize: bool = False,
        seed: int = 0,
    ) -> None:
        check_int("gap_period", gap_period)
        check_positive("gap_period", gap_period)
        if array.lines < 2:
            raise ValueError("array needs at least 2 lines (1 logical + gap)")
        self.array = array
        self.n_logical = array.lines - 1
        self.gap_period = gap_period
        self._mapping = np.arange(self.n_logical, dtype=np.int64)
        self._gap = self.n_logical  # last physical slot starts empty
        self._writes_since_move = 0
        self.gap_moves = 0
        if randomize:
            rng = derive_rng(seed, "startgap-rand")
            self._shuffle = rng.permutation(self.n_logical)
        else:
            self._shuffle = None

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def physical_of(self, logical: int) -> int:
        """Current physical slot of a logical line."""
        if not 0 <= logical < self.n_logical:
            raise IndexError(f"logical line {logical} out of range")
        if self._shuffle is not None:
            logical = int(self._shuffle[logical])
        return int(self._mapping[logical])

    def _gap_move(self) -> None:
        """Relocate the line above the gap into the gap (one write)."""
        victim_physical = self._gap - 1 if self._gap > 0 else self.n_logical
        # Find which logical line sits there and move it into the gap.
        holders = np.nonzero(self._mapping == victim_physical)[0]
        if len(holders) != 1:
            raise RuntimeError("start-gap mapping lost bijectivity")
        self._mapping[holders[0]] = self._gap
        self.array.write(self._gap, 1)  # the relocation copy wears the gap slot
        self._gap = victim_physical
        self.gap_moves += 1
        if sanit.sanitize_on:
            # Each gap move permutes the mapping: verify it stayed a
            # bijection at this structural boundary.
            sanit.check("pcm.startgap", self, boundary=True)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(self, logical: int, count: int = 1) -> None:
        """Apply ``count`` logical writes, moving the gap as scheduled."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if sanit.sanitize_on:
            sanit.check("pcm.startgap", self)
        remaining = count
        while remaining > 0:
            until_move = self.gap_period - self._writes_since_move
            chunk = min(remaining, until_move)
            self.array.write(self.physical_of(logical), chunk)
            self._writes_since_move += chunk
            remaining -= chunk
            if self._writes_since_move >= self.gap_period:
                self._gap_move()
                self._writes_since_move = 0

    def mapping_snapshot(self) -> np.ndarray:
        """Copy of the current logical -> physical mapping."""
        return self._mapping.copy()


def lifetime_under_pinned_attack(
    n_logical: int = 64,
    endurance_mean: float = 20_000.0,
    gap_period: int = 8,
    leveling: Optional[str] = "startgap",
    seed: int = 0,
    write_chunk: int = 64,
    max_writes: float = 1e9,
) -> float:
    """Writes survived under a repeated-write attack on one line.

    Args:
        leveling: ``None`` (raw array), ``"startgap"``, or
            ``"startgap-rand"``.

    Returns total attacker writes issued before the first line failure.
    """
    array = PcmArray(
        lines=n_logical + 1, endurance_mean=endurance_mean, seed=seed
    )
    remapper = None
    if leveling is not None:
        remapper = StartGap(
            array,
            gap_period=gap_period,
            randomize=(leveling == "startgap-rand"),
            seed=seed,
        )
    issued = 0.0
    while not array.any_failed and issued < max_writes:
        if remapper is None:
            array.write(0, write_chunk)
        else:
            remapper.write(0, write_chunk)
        issued += write_chunk
    return issued
