"""Adversarial wear attacks on Start-Gap (why randomization matters).

Plain Start-Gap moves deterministically: an attacker who knows the
algorithm can invert the current mapping and *chase a single physical
line* — re-deriving, before each write burst, the logical address that
currently maps to the targeted slot.  All writes then land on one
physical line and the device dies after roughly one line's endurance,
exactly as if there were no leveling.

The full Start-Gap design therefore adds a *static randomization*
layer (a secret address bijection).  The attacker still knows the gap
algebra but not the secret shuffle, so the chase inverts the wrong
mapping and the writes spread out.
"""

from __future__ import annotations

import numpy as np

from repro.pcm.array import PcmArray
from repro.pcm.startgap import StartGap


def attacker_guess_logical(remapper: StartGap, target_physical: int) -> int:
    """The mapping-aware attacker's guess for the logical line currently
    occupying ``target_physical``.

    The attacker can reconstruct the gap/rotation state (it is
    deterministic in the write count) — modeled as reading the internal
    permutation — but does **not** know the secret randomization layer,
    so the guess skips the inverse shuffle.
    """
    holders = np.nonzero(remapper.mapping_snapshot() == target_physical)[0]
    if len(holders) == 0:
        # Target is the gap right now; aim at its upcoming occupant.
        return attacker_guess_logical(remapper, (target_physical + 1) % (remapper.n_logical + 1))
    internal = int(holders[0])
    # Without the secret key the attacker must assume shuffle == identity.
    return internal


def lifetime_under_mapping_aware_attack(
    n_logical: int = 64,
    endurance_mean: float = 20_000.0,
    gap_period: int = 8,
    randomize: bool = False,
    seed: int = 0,
    write_chunk: int = 8,
    max_writes: float = 1e9,
) -> float:
    """Writes survived when the attacker chases one physical line.

    With ``randomize=False`` the chase succeeds and lifetime collapses
    to ~line endurance; with ``randomize=True`` the secret shuffle
    defeats the inversion and Start-Gap's leveling is preserved.
    """
    array = PcmArray(lines=n_logical + 1, endurance_mean=endurance_mean, seed=seed)
    remapper = StartGap(array, gap_period=gap_period, randomize=randomize, seed=seed)
    target_physical = 0
    issued = 0.0
    while not array.any_failed and issued < max_writes:
        logical = attacker_guess_logical(remapper, target_physical)
        logical = min(logical, remapper.n_logical - 1)
        remapper.write(logical, write_chunk)
        issued += write_chunk
    return issued
