"""Self-contained experiment report artifacts.

``repro report`` caps the observability stack: it runs (or fetches
from cache) a set of experiments with the full telemetry suite on —
metrics, span profile, and the physics layer — and renders one
artifact a reviewer can read without the repo checked out:

* environment fingerprint (:func:`repro.telemetry.ids.environment_fingerprint`)
  so apples-vs-oranges comparisons are visible at a glance;
* a results table with per-job provenance and payload summaries;
* the **per-row disturbance heat map** (hottest rows first);
* the **flip provenance** table — flips by (bank, victim, dominant
  aggressor, data pattern) with hammer peaks and refresh-epoch windows;
* the **mitigation decision audit** — decision counts plus the most
  recent typed events;
* the span tree (where wall-clock went) and the merged metric table.

Both output formats are self-contained single files: markdown uses
only pipe tables and fenced blocks; HTML inlines its own CSS and uses
no external assets, so the file can be archived as a CI artifact and
opened anywhere.

:func:`check_report` is the integrity gate CI runs before uploading:
the physics layer's flip totals must agree with themselves (heat map
vs. provenance aggregates) and with the hardware metric
``dram_bit_flips_total`` — three independently accumulated paths to
the same number.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.result import ExperimentResult, to_jsonable
from repro.telemetry import MetricsRegistry, PhysicsCollector, SpanProfile
from repro.telemetry.ids import environment_fingerprint

__all__ = [
    "render_report",
    "check_report",
    "DEFAULT_ROW_LIMIT",
    "DEFAULT_EVENT_LIMIT",
]

#: How many heat-map / provenance rows the artifact shows (totals
#: always cover everything; the limit only bounds the tables).
DEFAULT_ROW_LIMIT = 25

#: How many typed audit events the artifact shows (counts are complete).
DEFAULT_EVENT_LIMIT = 25


# ----------------------------------------------------------------------
# Intermediate document model: sections of simple blocks, rendered to
# either markdown or HTML.  Blocks are ("para", text), ("pre", text),
# ("kv", [(key, value)...]), or ("table", headers, rows).
# ----------------------------------------------------------------------
_Block = Tuple[Any, ...]
_Section = Tuple[str, List[_Block]]


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _payload_summary(payload: Any, limit: int = 6) -> str:
    """One-line scalar digest of a payload for the results table."""
    jsonable = to_jsonable(payload)
    if not isinstance(jsonable, dict):
        text = str(jsonable)
        return text if len(text) <= 60 else text[:57] + "..."
    parts = []
    for key, value in jsonable.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            parts.append(f"{key}={_fmt_cell(value)}")
        if len(parts) >= limit:
            break
    return " ".join(parts) if parts else f"{len(jsonable)} keys"


def _build_sections(results: Sequence[ExperimentResult],
                    physics: Optional[PhysicsCollector],
                    metrics: Optional[MetricsRegistry],
                    profile: Optional[SpanProfile],
                    fingerprint: Optional[Mapping[str, Any]],
                    row_limit: int,
                    event_limit: int) -> List[_Section]:
    sections: List[_Section] = []

    fp = dict(fingerprint) if fingerprint is not None else environment_fingerprint()
    run_ids = sorted({r.run_id for r in results if r.run_id})
    if run_ids:
        fp["run_id"] = ", ".join(run_ids)
    sections.append(("Environment", [("kv", sorted(fp.items()))]))

    rows = [[r.name,
             "-" if r.seed is None else r.seed,
             r.outcome,
             f"{r.duration_s:.3f}",
             "yes" if r.cache_hit else "no",
             r.error if r.error else _payload_summary(r.payload)]
            for r in results]
    sections.append(("Results", [
        ("para", f"{len(results)} job(s); "
                 f"{sum(1 for r in results if r.error)} errored; "
                 f"{sum(1 for r in results if r.cache_hit)} cache hit(s)."),
        ("table",
         ["experiment", "seed", "outcome", "duration (s)", "cached", "payload"],
         rows),
    ]))

    if physics is not None and physics:
        heat = physics.heat_rows()
        disturbed = sum(1 for row in heat if row[4])
        blocks: List[_Block] = [
            ("para",
             f"{physics.total_flips()} flips over {disturbed} disturbed "
             f"row(s); {physics.total_activations()} activations over "
             f"{len(heat)} touched row(s). Showing the "
             f"{min(row_limit, len(heat))} hottest of {len(heat)}."),
            ("table",
             ["bank", "row", "activations", "peak pressure", "flips"],
             [list(row) for row in heat[:row_limit]]),
        ]
        sections.append(("Row heat map", blocks))

        prov = physics.provenance_rows()
        blocks = [
            ("para",
             f"{physics.total_provenance_flips()} flips across "
             f"{len(prov)} (bank, victim, aggressor, pattern) group(s). "
             f"Aggressor -1 means no dominant aggressor was tracked. "
             f"Showing the heaviest {min(row_limit, len(prov))}."),
            ("table",
             ["bank", "victim", "aggressor", "pattern", "flips",
              "max hammer", "epochs"],
             [[bank, victim, agg, pattern or "-", flips, f"{hammer:g}",
               f"{first}" if first == last else f"{first}..{last}"]
              for bank, victim, agg, pattern, flips, hammer, first, last
              in prov[:row_limit]]),
        ]
        sections.append(("Flip provenance", blocks))

        counts = physics.audit_counts()
        events = physics.audit_events()
        blocks = []
        if counts:
            blocks.append(("para",
                           f"{sum(counts.values())} decision(s) across "
                           f"{len(counts)} (mitigation, decision) class(es)."))
            blocks.append(("table",
                           ["mitigation", "decision", "count"],
                           [[mit, dec, n]
                            for (mit, dec), n in sorted(counts.items())]))
        else:
            blocks.append(("para", "No mitigation decisions were recorded "
                                   "(no mitigation in the loop)."))
        if events:
            shown = events[-event_limit:]
            lines = []
            for event in shown:
                at = "" if event.time_ns is None else f" @ t={event.time_ns:g}ns"
                detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
                lines.append(f"{event.mitigation}.{event.decision}{at}"
                             + (f"  {detail}" if detail else ""))
            blocks.append(("para",
                           f"Last {len(shown)} of {len(events)} typed event(s)"
                           + (f" ({physics.audit_dropped} dropped past the cap)"
                              if physics.audit_dropped else "") + ":"))
            blocks.append(("pre", "\n".join(lines)))
        sections.append(("Mitigation audit", blocks))

    if profile is not None and len(profile):
        sections.append(("Span tree", [("pre", profile.render_tree())]))

    if metrics is not None and len(metrics):
        sections.append(("Metrics", [("pre", metrics.render_table())]))

    return sections


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def _render_markdown(title: str, sections: List[_Section]) -> str:
    lines: List[str] = [f"# {title}", ""]
    for heading, blocks in sections:
        lines.append(f"## {heading}")
        lines.append("")
        for block in blocks:
            kind = block[0]
            if kind == "para":
                lines.append(block[1])
                lines.append("")
            elif kind == "pre":
                lines.append("```")
                lines.append(block[1])
                lines.append("```")
                lines.append("")
            elif kind == "kv":
                for key, value in block[1]:
                    lines.append(f"- **{key}**: {_fmt_cell(value)}")
                lines.append("")
            elif kind == "table":
                headers, rows = block[1], block[2]
                lines.append("| " + " | ".join(headers) + " |")
                lines.append("|" + "|".join(" --- " for _ in headers) + "|")
                for row in rows:
                    lines.append("| " + " | ".join(_fmt_cell(c) for c in row) + " |")
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_HTML_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1a1a2e; line-height: 1.45; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2rem; border-bottom: 1px solid #ccc; padding-bottom: .2rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: left;
         font-variant-numeric: tabular-nums; }
th { background: #eef; }
pre { background: #f6f6f8; border: 1px solid #ddd; padding: .6rem;
      overflow-x: auto; }
dl { display: grid; grid-template-columns: max-content auto; gap: .2rem 1rem; }
dt { font-weight: 600; }
dd { margin: 0; }
""".strip()


def _render_html(title: str, sections: List[_Section]) -> str:
    esc = _html.escape
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_CSS}</style>",
        "</head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    for heading, blocks in sections:
        parts.append(f"<h2>{esc(heading)}</h2>")
        for block in blocks:
            kind = block[0]
            if kind == "para":
                parts.append(f"<p>{esc(block[1])}</p>")
            elif kind == "pre":
                parts.append(f"<pre>{esc(block[1])}</pre>")
            elif kind == "kv":
                parts.append("<dl>")
                for key, value in block[1]:
                    parts.append(f"<dt>{esc(str(key))}</dt>"
                                 f"<dd>{esc(_fmt_cell(value))}</dd>")
                parts.append("</dl>")
            elif kind == "table":
                headers, rows = block[1], block[2]
                parts.append("<table><thead><tr>"
                             + "".join(f"<th>{esc(h)}</th>" for h in headers)
                             + "</tr></thead><tbody>")
                for row in rows:
                    parts.append("<tr>" + "".join(
                        f"<td>{esc(_fmt_cell(c))}</td>" for c in row) + "</tr>")
                parts.append("</tbody></table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_report(results: Sequence[ExperimentResult],
                  physics: Optional[PhysicsCollector] = None,
                  metrics: Optional[MetricsRegistry] = None,
                  profile: Optional[SpanProfile] = None,
                  title: str = "repro experiment report",
                  fmt: str = "markdown",
                  fingerprint: Optional[Mapping[str, Any]] = None,
                  row_limit: int = DEFAULT_ROW_LIMIT,
                  event_limit: int = DEFAULT_EVENT_LIMIT) -> str:
    """Render one self-contained report artifact.

    ``fmt`` is ``"markdown"`` or ``"html"``.  ``fingerprint`` defaults
    to the live :func:`environment_fingerprint` — tests pass a fixed
    one for deterministic artifacts.
    """
    if fmt not in ("markdown", "html"):
        raise ValueError(f"unknown report format {fmt!r}")
    sections = _build_sections(results, physics, metrics, profile,
                               fingerprint, row_limit, event_limit)
    if fmt == "html":
        return _render_html(title, sections)
    return _render_markdown(title, sections)


# ----------------------------------------------------------------------
# Integrity check (the CI gate)
# ----------------------------------------------------------------------
def _metric_flip_total(metrics: MetricsRegistry) -> Optional[int]:
    """Sum of ``dram_bit_flips_total`` across label sets, or ``None``
    when the family was never emitted."""
    total = 0
    seen = False
    for metric in metrics:
        if metric.name == "dram_bit_flips_total":
            seen = True
            total += int(metric.value)
    return total if seen else None


def check_report(results: Sequence[ExperimentResult],
                 physics: Optional[PhysicsCollector],
                 metrics: Optional[MetricsRegistry] = None) -> List[str]:
    """Cross-check the artifact's numbers; return problems (empty = ok).

    Three independently accumulated flip totals must agree: the heat
    map's per-row sums, the provenance aggregates' sums, and the
    hardware counter ``dram_bit_flips_total``.  An empty physics layer
    for a run that should have produced one is also a failure — an
    artifact silently missing its core sections must not ship.
    """
    problems: List[str] = []
    if not results:
        problems.append("no results: the report would be empty")
        return problems
    errored = [r for r in results if r.error]
    if errored:
        problems.append(
            f"{len(errored)} job(s) errored: "
            + ", ".join(f"{r.name}(seed {r.seed})" for r in errored[:5]))
    if physics is None or not physics:
        problems.append("physics layer is empty: no heat map, provenance, "
                        "or audit data was collected")
        return problems
    heat_total = physics.total_flips()
    prov_total = physics.total_provenance_flips()
    if heat_total != prov_total:
        problems.append(f"flip totals disagree inside the physics layer: "
                        f"heat map {heat_total} vs provenance {prov_total}")
    if metrics is not None:
        metric_total = _metric_flip_total(metrics)
        if metric_total is not None and metric_total != heat_total:
            problems.append(
                f"physics flip total {heat_total} disagrees with the "
                f"hardware counter dram_bit_flips_total {metric_total}")
    return problems
